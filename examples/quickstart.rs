//! Quickstart: symbolic co-analysis of firmware + simulated RTL with
//! hardware snapshotting.
//!
//! Builds the 4-peripheral SoC from its Verilog sources, loads a small
//! branching firmware, and runs the HardSnap engine: every symbolic path
//! gets a private hardware snapshot, so all 2^k paths see consistent
//! peripheral state.
//!
//! Run with: `cargo run --release --example quickstart`

use hardsnap::{Engine, EngineConfig};
use hardsnap_sim::SimTarget;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Hardware: parse + elaborate the SoC (UART, TIMER, SHA-256,
    //    AES-128 behind an AXI4-Lite interconnect) and put it on the
    //    cycle-accurate simulator target.
    let soc = hardsnap_periph::soc()?;
    let stats = hardsnap_rtl::ModuleStats::of(&soc);
    println!("SoC: {stats}");
    let target = Box::new(SimTarget::new(soc)?);

    // 2. Firmware: 3 symbolic branches -> 8 paths, each programming the
    //    timer with a path-specific value and asserting the readback.
    let asm = hardsnap::firmware::branching_firmware(3);
    let program = hardsnap_isa::assemble(&asm)?;
    println!(
        "firmware: {} bytes, entry {:#x}",
        program.image.len(),
        program.entry
    );

    // 3. Analyze.
    let mut engine = Engine::new(target, EngineConfig::default());
    engine.load_firmware(&program);
    let result = engine.run();

    println!();
    println!("paths completed : {}", result.metrics.paths_completed);
    println!("bugs found      : {}", result.bugs.len());
    println!("context switches: {}", result.metrics.context_switches);
    println!("snapshots saved : {}", result.metrics.snapshots_saved);
    println!(
        "hw virtual time : {} ms",
        result.hw_virtual_time_ns / 1_000_000
    );
    println!("solver queries  : {}", engine.executor.solver.stats.queries);
    assert_eq!(result.metrics.paths_completed, 8);
    assert!(result.bugs.is_empty());
    println!();
    println!("all 8 paths saw consistent private hardware — no false alarms.");
    Ok(())
}
