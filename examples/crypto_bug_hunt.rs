//! Bug hunt: find planted firmware vulnerabilities by symbolic execution
//! with hardware in the loop, and use hardware snapshots to diagnose.
//!
//! Run with: `cargo run --release --example crypto_bug_hunt`

use hardsnap::firmware::{vulnerable_firmware, PlantedBug};
use hardsnap::{Engine, EngineConfig, Searcher};
use hardsnap_sim::SimTarget;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for bug in PlantedBug::all() {
        println!("=== hunting: {} ===", bug.name());
        let program = hardsnap_isa::assemble(&vulnerable_firmware(bug))?;
        let target = Box::new(SimTarget::new(hardsnap_periph::soc()?)?);
        let mut engine = Engine::new(
            target,
            EngineConfig {
                searcher: Searcher::Dfs,
                ..Default::default()
            },
        );
        engine.load_firmware(&program);
        let result = engine.run();

        for found in &result.bugs {
            println!("  bug: {:?} at pc {:#010x}", found.kind, found.pc);
            println!("  why: {}", found.description);
            if let Some(tc) = &found.testcase {
                for (name, value) in tc.iter() {
                    println!("  reproducing input: {name} = {value:#x}");
                }
            }
        }
        // Root-cause support: the snapshot store holds the hardware
        // state of every still-active path; for terminated buggy paths
        // the bug report pins the faulting pc and inputs. For
        // hardware-related bugs, inspect the device state:
        if bug == PlantedBug::MagicCommand {
            let snap = engine.target_mut().save_snapshot()?;
            println!(
                "  hardware at end of analysis: timer value = {:?}, ctrl = {:?}",
                snap.reg("u_timer.value"),
                snap.reg("u_timer.ctrl"),
            );
        }
        assert!(!result.bugs.is_empty(), "bug must be found");
        println!();
    }
    println!("3/3 planted bugs found with reproducing inputs.");
    Ok(())
}
