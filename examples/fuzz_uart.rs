//! Snapshot-based fuzzing of a UART command parser, reproducing the
//! paper's motivation: replacing the per-input device reboot with a
//! hardware-snapshot restore multiplies fuzzing throughput.
//!
//! Run with: `cargo run --release --example fuzz_uart`

use hardsnap_fuzz::{FuzzConfig, Fuzzer, ResetStrategy};
use hardsnap_sim::SimTarget;

fn campaign(reset: ResetStrategy) -> Result<hardsnap_fuzz::FuzzReport, Box<dyn std::error::Error>> {
    let program = hardsnap_isa::assemble(&hardsnap::firmware::uart_parser_firmware())?;
    let target = Box::new(SimTarget::new(hardsnap_periph::soc()?)?);
    let mut fuzzer = Fuzzer::new(
        target,
        &program,
        FuzzConfig {
            max_inputs: 3000,
            reset,
            seed: 42,
            tape_len: 2,
            ..Default::default()
        },
    )?;
    Ok(fuzzer.run()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (name, reset) in [
        ("snapshot", ResetStrategy::Snapshot),
        ("reboot", ResetStrategy::Reboot),
    ] {
        let r = campaign(reset)?;
        println!("--- {name} reset ---");
        println!("executions      : {}", r.execs);
        println!("coverage (PCs)  : {}", r.coverage);
        println!(
            "virtual hw time : {:.2} s",
            r.hw_virtual_time_ns as f64 / 1e9
        );
        println!("virtual execs/s : {:.1}", r.virtual_execs_per_sec);
        for crash in &r.crashes {
            println!(
                "crash: {} with input {:02x?}",
                crash.fault,
                crash
                    .input
                    .iter()
                    .map(|w| (w & 0xff) as u8)
                    .collect::<Vec<_>>()
            );
        }
        println!();
    }
    println!("same coverage and crashes, but snapshot reset spends a fraction");
    println!("of the device time — the speedup the paper's motivation predicts.");
    Ok(())
}
