//! Multi-target orchestration: run fast on the FPGA, transfer the live
//! hardware state to the simulator, and pull a full signal trace — the
//! "best of both worlds" workflow of the paper (§III-B).
//!
//! Run with: `cargo run --release --example multi_target`

use hardsnap::transfer_state;
use hardsnap_bus::{map::soc, HwTarget};
use hardsnap_fpga::{FpgaOptions, FpgaTarget};
use hardsnap_periph::{golden, regs};
use hardsnap_sim::SimTarget;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Phase 1: FPGA — near-silicon speed, no visibility.
    let mut fpga = FpgaTarget::new(hardsnap_periph::soc()?, &FpgaOptions::default())?;
    fpga.reset();
    println!(
        "fpga: {} chain bits, {} collar words",
        fpga.chain_map().chain_bits(),
        fpga.chain_map().mem_words()
    );

    // Run a long warm-up fast (this is where the FPGA shines)...
    fpga.step(1_000_000);
    // ...then start an AES encryption and stop mid-pipeline.
    let key = *b"super secret key";
    let pt = *b"interesting text";
    let kw = golden::words_from_bytes(&key);
    let pw = golden::words_from_bytes(&pt);
    for i in 0..4u32 {
        fpga.bus_write(soc::AES_BASE + regs::aes128::KEY0 + 4 * i, kw[i as usize])?;
        fpga.bus_write(soc::AES_BASE + regs::aes128::BLOCK0 + 4 * i, pw[i as usize])?;
    }
    fpga.bus_write(soc::AES_BASE + regs::aes128::CTRL, regs::aes128::CTRL_START)?;
    fpga.step(4); // mid-encryption
    println!(
        "fpga: 1M cycles + AES start took {} ms of fabric time",
        fpga.virtual_time_ns() / 1_000_000
    );

    // Phase 2: transfer to the simulator for full traces.
    let mut sim = SimTarget::new(hardsnap_periph::soc()?)?;
    sim.reset();
    sim.enable_trace();
    let snap = transfer_state(&mut fpga, &mut sim)?;
    println!(
        "transferred {} state bits mid-encryption",
        snap.state_bits()
    );

    // Finish the encryption under the microscope.
    sim.step(20);
    let mut cw = [0u32; 4];
    for (i, c) in cw.iter_mut().enumerate() {
        *c = sim.bus_read(soc::AES_BASE + regs::aes128::RESULT0 + 4 * i as u32)?;
    }
    let ct = golden::bytes_from_words(&cw);
    assert_eq!(
        ct,
        golden::aes128_encrypt(&key, &pt),
        "bit-exact continuation"
    );
    println!("ciphertext (finished on the simulator) is bit-exact.");

    // The simulator recorded every internal signal since the transfer.
    let vcd = sim.take_trace().expect("trace enabled");
    let signal_count = vcd.lines().filter(|l| l.starts_with("$var")).count();
    println!(
        "full VCD trace captured: {} signals, {} bytes (viewable in GTKWave)",
        signal_count,
        vcd.len()
    );
    // Peek an internal that the FPGA could never show us live:
    let round = sim.simulator().peek("u_aes.round")?;
    println!(
        "internal u_aes.round register (invisible on the fpga): {}",
        round.bits()
    );
    Ok(())
}
