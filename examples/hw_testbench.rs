//! Software-driven hardware testbench: using the symbolic engine to
//! generate test vectors for the *hardware* (paper §III: "Using its
//! symbolic execution engine, HardSnap can be used to generate software
//! test vectors to test hardware" + the assertion interface for
//! "detection of peripherals misuse").
//!
//! The firmware writes a symbolic (masked) configuration word into the
//! timer; the exhaustive concretization policy forks one path per
//! feasible configuration, so each completed path IS a generated test
//! vector. A hardware assertion over the snapshots flags the misuse
//! combination (one-shot + IRQ disabled: the firmware would lose the
//! expiry event).
//!
//! Run with: `cargo run --release --example hw_testbench`

use hardsnap::{Concretization, Engine, EngineConfig, Searcher};
use hardsnap_sim::SimTarget;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let asm = format!(
        "
        .equ TIMER_BASE, {:#x}
        .org 0x100
        entry:
            li r3, TIMER_BASE
            movi r4, #50
            stw r4, [r3, #0x04]    ; LOAD
            sym r1, #0
            andi r1, r1, #0x7      ; symbolic CTRL in 0..=7
            stw r1, [r3, #0x00]    ; configure the timer symbolically
            movi r5, #0
        spin:
            addi r5, r5, #1
            movi r6, #40
            bne r5, r6, spin
            halt
        ",
        hardsnap_bus::map::soc::TIMER_BASE
    );
    let program = hardsnap_isa::assemble(&asm)?;
    let target = Box::new(SimTarget::new(hardsnap_periph::soc()?)?);
    let mut engine = Engine::new(
        target,
        EngineConfig {
            policy: Concretization::Exhaustive(16),
            searcher: Searcher::RoundRobin,
            quantum: 16,
            ..Default::default()
        },
    );
    // Peripherals-misuse property: a one-shot timer that expired with
    // its IRQ masked has silently dropped the event (one-shots stop
    // counting, so polling later cannot recover the timing either).
    engine.add_hw_assertion("oneshot-needs-irq", |snap| {
        let ctrl = snap.reg("u_timer.ctrl").unwrap_or(0);
        let expired = snap.reg("u_timer.expired").unwrap_or(0) != 0;
        let irq_en = ctrl & 2 != 0;
        let oneshot = ctrl & 4 != 0;
        !(expired && oneshot && !irq_en)
    });
    engine.load_firmware(&program);
    let result = engine.run();

    println!("generated hardware test vectors (one per completed path):");
    for (i, s) in result.completed.iter().enumerate() {
        // Each completed path's constraints pin one configuration; solve
        // them to materialize the test vector.
        if let Some(vector) = solve_vector(&mut engine, s) {
            println!("  vector {i}: CTRL = {vector:#x}");
        }
    }
    println!();
    println!(
        "paths (vectors) completed: {}",
        result.metrics.paths_completed
    );
    println!("hardware property violations observed:");
    for (name, state) in &engine.hw_violations {
        println!("  {name} violated by state {state:?}");
    }
    assert_eq!(
        result.metrics.paths_completed, 8,
        "one vector per CTRL value"
    );
    assert!(
        engine
            .hw_violations
            .iter()
            .any(|(n, _)| n == "oneshot-needs-irq"),
        "the misuse configuration must be flagged"
    );
    println!();
    println!("8/8 timer configurations exercised; the misuse case (enable+oneshot");
    println!("with IRQ masked) was detected by a snapshot-level hardware assertion.");
    Ok(())
}

/// Solves a completed path's constraints for its symbolic input.
fn solve_vector(engine: &mut Engine, s: &hardsnap_symex::SymState) -> Option<u64> {
    let model = engine.executor.testcase(s)?;
    let v = model.iter().next().map(|(_, v)| v & 0x7);
    v
}
