//! Property test of the Verilog frontend: random (valid-by-construction)
//! RTL modules are printed to Verilog, re-parsed, and co-simulated
//! against the original under random stimulus. Print ∘ parse must be
//! semantics-preserving — the property the instrumentation toolchain
//! (instrument → emit → FPGA flow) depends on. Ported to the seeded
//! hardsnap-util harness: the generator is a plain recursive function
//! over the deterministic [`Rng`] stream, so any failure reproduces
//! from the printed case seed.

use hardsnap_rtl::{
    BinaryOp, EdgeKind, Expr, LValue, Module, NetId, NetKind, PortDir, Process, ProcessKind, Stmt,
    UnaryOp, Value,
};
use hardsnap_sim::Simulator;
use hardsnap_util::prop::from_fn;
use hardsnap_util::{prop_check, Rng};

#[derive(Clone, Debug)]
enum ExprSpec {
    Const(u64),
    Net(usize),
    Unary(UnaryOp, Box<ExprSpec>),
    Binary(BinaryOp, Box<ExprSpec>, Box<ExprSpec>),
    Cond(Box<ExprSpec>, Box<ExprSpec>, Box<ExprSpec>),
    SliceLow(usize),
}

const UNOPS: [UnaryOp; 6] = [
    UnaryOp::Not,
    UnaryOp::Neg,
    UnaryOp::RedAnd,
    UnaryOp::RedOr,
    UnaryOp::RedXor,
    UnaryOp::LogicNot,
];

const BINOPS: [BinaryOp; 12] = [
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::And,
    BinaryOp::Or,
    BinaryOp::Xor,
    BinaryOp::Shl,
    BinaryOp::Shr,
    BinaryOp::Eq,
    BinaryOp::Ne,
    BinaryOp::Lt,
    BinaryOp::Ge,
];

fn arb_expr(rng: &mut Rng, depth: u32) -> ExprSpec {
    // Leaves at depth 0; otherwise a mix biased toward compound nodes,
    // mirroring the old proptest `prop_recursive(depth, …)` shape.
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..3) {
            0 => ExprSpec::Const(rng.gen()),
            1 => ExprSpec::Net(rng.gen_range(0..64)),
            _ => ExprSpec::SliceLow(rng.gen_range(0..64)),
        };
    }
    match rng.gen_range(0..3) {
        0 => ExprSpec::Unary(
            *rng.choose(&UNOPS).unwrap(),
            Box::new(arb_expr(rng, depth - 1)),
        ),
        1 => ExprSpec::Binary(
            *rng.choose(&BINOPS).unwrap(),
            Box::new(arb_expr(rng, depth - 1)),
            Box::new(arb_expr(rng, depth - 1)),
        ),
        _ => ExprSpec::Cond(
            Box::new(arb_expr(rng, depth - 1)),
            Box::new(arb_expr(rng, depth - 1)),
            Box::new(arb_expr(rng, depth - 1)),
        ),
    }
}

/// Materializes a spec into an IR expression reading only `avail` nets,
/// zero-extended to at least `want` bits (assignment truncates wider
/// results, matching Verilog).
fn build_expr(m: &Module, avail: &[NetId], spec: &ExprSpec, want: u32) -> Expr {
    match spec {
        ExprSpec::Const(v) => Expr::Const(Value::new(*v, want)),
        ExprSpec::Net(i) => {
            let n = avail[i % avail.len()];
            fit(m, Expr::Net(n), want)
        }
        ExprSpec::SliceLow(i) => {
            let n = avail[i % avail.len()];
            let w = m.net(n).width;
            let hi = (w - 1).min(want.saturating_sub(1)).max(0);
            fit(m, Expr::Slice { base: n, hi, lo: 0 }, want)
        }
        ExprSpec::Unary(op, a) => {
            let inner = build_expr(m, avail, a, want);
            let e = Expr::Unary {
                op: *op,
                arg: Box::new(inner),
            };
            fit(m, e, want)
        }
        ExprSpec::Binary(op, a, b) => {
            let (aw, bw) = if matches!(op, BinaryOp::Shl | BinaryOp::Shr) {
                (want, 6.min(want))
            } else {
                (want, want)
            };
            let ea = build_expr(m, avail, a, aw);
            let eb = build_expr(m, avail, b, bw);
            let e = Expr::Binary {
                op: *op,
                lhs: Box::new(ea),
                rhs: Box::new(eb),
            };
            fit(m, e, want)
        }
        ExprSpec::Cond(c, t, e) => {
            let ec = build_expr(m, avail, c, 1);
            let et = build_expr(m, avail, t, want);
            let ee = build_expr(m, avail, e, want);
            let e = Expr::Cond {
                cond: Box::new(ec),
                then_e: Box::new(et),
                else_e: Box::new(ee),
            };
            fit(m, e, want)
        }
    }
}

/// Zero-extends `e` to at least `want` bits with `+ 0` (wider results
/// are left alone: assignment truncates, matching Verilog semantics).
fn fit(m: &Module, e: Expr, want: u32) -> Expr {
    let w = e.width(m).unwrap();
    if w >= want {
        e
    } else {
        Expr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(e),
            rhs: Box::new(Expr::Const(Value::zero(want))),
        }
    }
}

#[derive(Clone, Debug)]
struct ModuleSpec {
    input_widths: Vec<u32>,
    wires: Vec<(u32, ExprSpec)>,
    regs: Vec<(u32, ExprSpec)>,
}

fn arb_module(rng: &mut Rng) -> ModuleSpec {
    let input_widths = (0..rng.gen_range(1usize..4))
        .map(|_| rng.gen_range(1u32..=32))
        .collect();
    let wires = (0..rng.gen_range(0usize..4))
        .map(|_| (rng.gen_range(1u32..=32), arb_expr(rng, 3)))
        .collect();
    let regs = (0..rng.gen_range(1usize..4))
        .map(|_| (rng.gen_range(1u32..=32), arb_expr(rng, 3)))
        .collect();
    ModuleSpec {
        input_widths,
        wires,
        regs,
    }
}

fn materialize(spec: &ModuleSpec) -> Module {
    let mut m = Module::new("prop_dut");
    let clk = m
        .add_net("clk", 1, NetKind::Wire, Some(PortDir::Input))
        .unwrap();
    let mut avail = Vec::new();
    for (i, w) in spec.input_widths.iter().enumerate() {
        avail.push(
            m.add_net(format!("in{i}"), *w, NetKind::Wire, Some(PortDir::Input))
                .unwrap(),
        );
    }
    // Wires: each reads only earlier nets (no comb loops by construction).
    for (i, (w, e)) in spec.wires.iter().enumerate() {
        let expr = build_expr(&m, &avail, e, *w);
        let id = m
            .add_net(format!("w{i}"), *w, NetKind::Wire, Some(PortDir::Output))
            .unwrap();
        m.assigns.push(hardsnap_rtl::ContAssign {
            lv: LValue::Net(id),
            rhs: expr,
        });
        avail.push(id);
    }
    // Registers: can read everything (cycles through regs are fine).
    let mut body = Vec::new();
    let mut reg_ids = Vec::new();
    for (i, (w, _)) in spec.regs.iter().enumerate() {
        reg_ids.push(
            m.add_net(format!("r{i}"), *w, NetKind::Reg, Some(PortDir::Output))
                .unwrap(),
        );
    }
    let all: Vec<NetId> = avail
        .iter()
        .copied()
        .chain(reg_ids.iter().copied())
        .collect();
    for (i, (w, e)) in spec.regs.iter().enumerate() {
        let expr = build_expr(&m, &all, e, *w);
        body.push(Stmt::Assign {
            lv: LValue::Net(reg_ids[i]),
            rhs: expr,
            blocking: false,
        });
    }
    m.processes.push(Process {
        kind: ProcessKind::Clocked {
            clock: clk,
            edge: EdgeKind::Pos,
        },
        body,
    });
    m
}

#[test]
fn print_parse_roundtrip_is_semantics_preserving() {
    prop_check!(
        cases = 48,
        seed = 0xF207_7E57,
        (
            spec in from_fn(arb_module),
            stimulus in from_fn(|rng: &mut Rng| -> Vec<Vec<u64>> {
                (0..rng.gen_range(1usize..12))
                    .map(|_| (0..rng.gen_range(1usize..4)).map(|_| rng.gen()).collect())
                    .collect()
            }),
        ) => {
            let original = materialize(&spec);
            hardsnap_rtl::check_module(&original).unwrap();
            let printed = hardsnap_verilog::print_module(&original);
            let reparsed_design = hardsnap_verilog::parse_design(&printed)
                .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
            let reparsed = reparsed_design.iter().next().unwrap().clone();

            let mut a = Simulator::new(original.clone()).unwrap();
            let mut b = Simulator::new(reparsed).unwrap();
            for step in &stimulus {
                for (i, v) in step.iter().enumerate().take(spec.input_widths.len()) {
                    a.poke(&format!("in{i}"), *v).unwrap();
                    b.poke(&format!("in{i}"), *v).unwrap();
                }
                a.step(1);
                b.step(1);
                // Compare every output net.
                for (_, net) in original.iter_nets() {
                    if net.port == Some(PortDir::Output) {
                        let va = a.peek(&net.name).unwrap();
                        let vb = b.peek(&net.name).unwrap();
                        assert_eq!(
                            va, vb,
                            "net {} diverged after print/parse\n{}",
                            net.name, printed
                        );
                    }
                }
            }
        }
    );
}
