//! Property test of the Verilog frontend: random (valid-by-construction)
//! RTL modules are printed to Verilog, re-parsed, and co-simulated
//! against the original under random stimulus. Print ∘ parse must be
//! semantics-preserving — the property the instrumentation toolchain
//! (instrument → emit → FPGA flow) depends on.

use hardsnap_rtl::{
    BinaryOp, EdgeKind, Expr, LValue, Module, NetId, NetKind, PortDir, Process, ProcessKind,
    Stmt, UnaryOp, Value,
};
use hardsnap_sim::Simulator;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum ExprSpec {
    Const(u64),
    Net(usize),
    Unary(UnaryOp, Box<ExprSpec>),
    Binary(BinaryOp, Box<ExprSpec>, Box<ExprSpec>),
    Cond(Box<ExprSpec>, Box<ExprSpec>, Box<ExprSpec>),
    SliceLow(usize),
}

fn arb_expr(depth: u32) -> BoxedStrategy<ExprSpec> {
    let leaf = prop_oneof![
        any::<u64>().prop_map(ExprSpec::Const),
        (0usize..64).prop_map(ExprSpec::Net),
        (0usize..64).prop_map(ExprSpec::SliceLow),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        let unops = prop_oneof![
            Just(UnaryOp::Not),
            Just(UnaryOp::Neg),
            Just(UnaryOp::RedAnd),
            Just(UnaryOp::RedOr),
            Just(UnaryOp::RedXor),
            Just(UnaryOp::LogicNot),
        ];
        let binops = prop_oneof![
            Just(BinaryOp::Add),
            Just(BinaryOp::Sub),
            Just(BinaryOp::Mul),
            Just(BinaryOp::And),
            Just(BinaryOp::Or),
            Just(BinaryOp::Xor),
            Just(BinaryOp::Shl),
            Just(BinaryOp::Shr),
            Just(BinaryOp::Eq),
            Just(BinaryOp::Ne),
            Just(BinaryOp::Lt),
            Just(BinaryOp::Ge),
        ];
        prop_oneof![
            (unops, inner.clone()).prop_map(|(op, a)| ExprSpec::Unary(op, Box::new(a))),
            (binops, inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| ExprSpec::Binary(op, Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, e)| ExprSpec::Cond(Box::new(c), Box::new(t), Box::new(e))),
        ]
    })
    .boxed()
}

/// Materializes a spec into an IR expression reading only `avail` nets,
/// zero-extended to at least `want` bits (assignment truncates wider
/// results, matching Verilog).
fn build_expr(m: &Module, avail: &[NetId], spec: &ExprSpec, want: u32) -> Expr {
    match spec {
        ExprSpec::Const(v) => Expr::Const(Value::new(*v, want)),
        ExprSpec::Net(i) => {
            let n = avail[i % avail.len()];
            fit(m, Expr::Net(n), want)
        }
        ExprSpec::SliceLow(i) => {
            let n = avail[i % avail.len()];
            let w = m.net(n).width;
            let hi = (w - 1).min(want.saturating_sub(1)).max(0);
            fit(m, Expr::Slice { base: n, hi, lo: 0 }, want)
        }
        ExprSpec::Unary(op, a) => {
            let inner = build_expr(m, avail, a, want);
            let e = Expr::Unary { op: *op, arg: Box::new(inner) };
            fit(m, e, want)
        }
        ExprSpec::Binary(op, a, b) => {
            let (aw, bw) = if matches!(op, BinaryOp::Shl | BinaryOp::Shr) {
                (want, 6.min(want))
            } else {
                (want, want)
            };
            let ea = build_expr(m, avail, a, aw);
            let eb = build_expr(m, avail, b, bw);
            let e = Expr::Binary { op: *op, lhs: Box::new(ea), rhs: Box::new(eb) };
            fit(m, e, want)
        }
        ExprSpec::Cond(c, t, e) => {
            let ec = build_expr(m, avail, c, 1);
            let et = build_expr(m, avail, t, want);
            let ee = build_expr(m, avail, e, want);
            let e = Expr::Cond { cond: Box::new(ec), then_e: Box::new(et), else_e: Box::new(ee) };
            fit(m, e, want)
        }
    }
}

/// Zero-extends `e` to at least `want` bits with `+ 0` (wider results
/// are left alone: assignment truncates, matching Verilog semantics).
fn fit(m: &Module, e: Expr, want: u32) -> Expr {
    let w = e.width(m).unwrap();
    if w >= want {
        e
    } else {
        Expr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(e),
            rhs: Box::new(Expr::Const(Value::zero(want))),
        }
    }
}

#[derive(Clone, Debug)]
struct ModuleSpec {
    input_widths: Vec<u32>,
    wires: Vec<(u32, ExprSpec)>,
    regs: Vec<(u32, ExprSpec)>,
}

fn arb_module() -> impl Strategy<Value = ModuleSpec> {
    (
        proptest::collection::vec(1u32..=32, 1..4),
        proptest::collection::vec((1u32..=32, arb_expr(3)), 0..4),
        proptest::collection::vec((1u32..=32, arb_expr(3)), 1..4),
    )
        .prop_map(|(input_widths, wires, regs)| ModuleSpec { input_widths, wires, regs })
}

fn materialize(spec: &ModuleSpec) -> Module {
    let mut m = Module::new("prop_dut");
    let clk = m.add_net("clk", 1, NetKind::Wire, Some(PortDir::Input)).unwrap();
    let mut avail = Vec::new();
    for (i, w) in spec.input_widths.iter().enumerate() {
        avail.push(m.add_net(format!("in{i}"), *w, NetKind::Wire, Some(PortDir::Input)).unwrap());
    }
    // Wires: each reads only earlier nets (no comb loops by construction).
    for (i, (w, e)) in spec.wires.iter().enumerate() {
        let expr = build_expr(&m, &avail, e, *w);
        let id = m.add_net(format!("w{i}"), *w, NetKind::Wire, Some(PortDir::Output)).unwrap();
        m.assigns.push(hardsnap_rtl::ContAssign { lv: LValue::Net(id), rhs: expr });
        avail.push(id);
    }
    // Registers: can read everything (cycles through regs are fine).
    let mut body = Vec::new();
    let mut reg_ids = Vec::new();
    for (i, (w, _)) in spec.regs.iter().enumerate() {
        reg_ids.push(m.add_net(format!("r{i}"), *w, NetKind::Reg, Some(PortDir::Output)).unwrap());
    }
    let all: Vec<NetId> = avail.iter().copied().chain(reg_ids.iter().copied()).collect();
    for (i, (w, e)) in spec.regs.iter().enumerate() {
        let expr = build_expr(&m, &all, e, *w);
        body.push(Stmt::Assign { lv: LValue::Net(reg_ids[i]), rhs: expr, blocking: false });
    }
    m.processes.push(Process {
        kind: ProcessKind::Clocked { clock: clk, edge: EdgeKind::Pos },
        body,
    });
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn print_parse_roundtrip_is_semantics_preserving(
        spec in arb_module(),
        stimulus in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..4), 1..12),
    ) {
        let original = materialize(&spec);
        hardsnap_rtl::check_module(&original).unwrap();
        let printed = hardsnap_verilog::print_module(&original);
        let reparsed_design = hardsnap_verilog::parse_design(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        let reparsed = reparsed_design.iter().next().unwrap().clone();

        let mut a = Simulator::new(original.clone()).unwrap();
        let mut b = Simulator::new(reparsed).unwrap();
        for step in &stimulus {
            for (i, v) in step.iter().enumerate().take(spec.input_widths.len()) {
                a.poke(&format!("in{i}"), *v).unwrap();
                b.poke(&format!("in{i}"), *v).unwrap();
            }
            a.step(1);
            b.step(1);
            // Compare every output net.
            for (_, net) in original.iter_nets() {
                if net.port == Some(PortDir::Output) {
                    let va = a.peek(&net.name).unwrap();
                    let vb = b.peek(&net.name).unwrap();
                    prop_assert_eq!(
                        va, vb,
                        "net {} diverged after print/parse\n{}",
                        net.name, printed
                    );
                }
            }
        }
    }
}
