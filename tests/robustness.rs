//! Robustness and guard-rail tests across the stack: wedged hardware,
//! fork bombs, budget cut-offs, and malformed inputs.

use hardsnap::firmware;
use hardsnap::{Engine, EngineConfig, Searcher};
use hardsnap_bus::{BusError, HwTarget};
use hardsnap_sim::{SimTarget, Simulator};

/// A slave that never raises awready/arready wedges the bus; the driver
/// must time out instead of hanging.
#[test]
fn wedged_axi_slave_times_out() {
    let src = r#"
    module wedged (
        input wire clk, input wire rst,
        input wire s_axi_awvalid, input wire [31:0] s_axi_awaddr,
        output wire s_axi_awready,
        input wire s_axi_wvalid, input wire [31:0] s_axi_wdata,
        output wire s_axi_wready,
        output wire s_axi_bvalid, output wire [1:0] s_axi_bresp,
        input wire s_axi_bready,
        input wire s_axi_arvalid, input wire [31:0] s_axi_araddr,
        output wire s_axi_arready,
        output wire s_axi_rvalid, output wire [31:0] s_axi_rdata,
        output wire [1:0] s_axi_rresp,
        input wire s_axi_rready
    );
        assign s_axi_awready = 1'b0;
        assign s_axi_wready = 1'b0;
        assign s_axi_bvalid = 1'b0;
        assign s_axi_bresp = 2'd0;
        assign s_axi_arready = 1'b0;
        assign s_axi_rvalid = 1'b0;
        assign s_axi_rdata = 32'd0;
        assign s_axi_rresp = 2'd0;
    endmodule
    "#;
    let d = hardsnap_verilog::parse_design(src).unwrap();
    let flat = hardsnap_rtl::elaborate(&d, "wedged").unwrap();
    let mut t = SimTarget::new(flat).unwrap();
    t.reset();
    assert!(matches!(t.bus_read(0), Err(BusError::Timeout { .. })));
    assert!(matches!(t.bus_write(0, 1), Err(BusError::Timeout { .. })));
}

/// The fork-bomb guard must cap live states and record the drops.
#[test]
fn engine_fork_bomb_guard() {
    // 10 symbolic branches = 1024 paths; cap at 8 live states.
    let prog = hardsnap_isa::assemble(&firmware::branching_firmware(10)).unwrap();
    let config = EngineConfig {
        max_states: 8,
        quantum: 4,
        max_instructions: 100_000,
        ..Default::default()
    };
    let mut engine = Engine::new(
        Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap()),
        config,
    );
    engine.load_firmware(&prog);
    let result = engine.run();
    assert!(result.metrics.states_dropped > 0, "guard must have fired");
    assert!(engine.active_states() <= 8);
}

/// The instruction budget must stop a runaway analysis.
#[test]
fn engine_instruction_budget() {
    let prog =
        hardsnap_isa::assemble(".org 0x100\nentry:\nspin:\n  addi r1, r1, #1\n  j spin\n").unwrap();
    let config = EngineConfig {
        max_instructions: 500,
        ..Default::default()
    };
    let mut engine = Engine::new(
        Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap()),
        config,
    );
    engine.load_firmware(&prog);
    let result = engine.run();
    assert!(result.instructions <= 501);
    assert_eq!(result.metrics.paths_completed, 0);
}

/// Coverage accounting: straight-line code covers exactly its PCs.
#[test]
fn engine_reports_pc_coverage() {
    let prog = hardsnap_isa::assemble(
        ".org 0x100\nentry:\n  movi r1, #1\n  movi r2, #2\n  add r3, r1, r2\n  halt\n",
    )
    .unwrap();
    let mut engine = Engine::new(
        Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap()),
        EngineConfig::default(),
    );
    engine.load_firmware(&prog);
    let result = engine.run();
    assert_eq!(result.covered_pcs, 4);
}

/// negedge processes are rejected by the simulator with a clear message.
#[test]
fn negedge_is_rejected() {
    let d = hardsnap_verilog::parse_design(
        "module n (input wire clk, output reg q);\n always @(negedge clk) q <= ~q;\nendmodule",
    )
    .unwrap();
    let flat = hardsnap_rtl::elaborate(&d, "n").unwrap();
    match Simulator::new(flat) {
        Err(hardsnap_sim::SimError::Unsupported(m)) => assert!(m.contains("negedge")),
        other => panic!("{other:?}"),
    }
}

/// Restoring a snapshot with a missing register fails cleanly on both
/// targets.
#[test]
fn corrupt_snapshot_rejected_cleanly() {
    use hardsnap_fpga::{FpgaOptions, FpgaTarget};
    let mut sim = SimTarget::new(hardsnap_periph::timer().unwrap()).unwrap();
    sim.reset();
    let mut snap = sim.save_snapshot().unwrap();
    snap.regs[0].name = "nonexistent_register".into();
    assert!(matches!(
        sim.restore_snapshot(&snap),
        Err(hardsnap_bus::TargetError::CorruptSnapshot(_))
    ));
    let mut fpga =
        FpgaTarget::new(hardsnap_periph::timer().unwrap(), &FpgaOptions::default()).unwrap();
    fpga.reset();
    let mut snap = fpga.save_snapshot().unwrap();
    snap.regs.remove(0);
    assert!(matches!(
        fpga.restore_snapshot(&snap),
        Err(hardsnap_bus::TargetError::CorruptSnapshot(_))
    ));
}

/// A quantum of 1 (context switch every instruction) still yields a
/// correct analysis under all searchers — the stress case for the
/// snapshot machinery.
#[test]
fn quantum_one_stress() {
    for searcher in [
        Searcher::Dfs,
        Searcher::Bfs,
        Searcher::RoundRobin,
        Searcher::Random(3),
    ] {
        let prog = hardsnap_isa::assemble(&firmware::branching_firmware(2)).unwrap();
        let config = EngineConfig {
            searcher,
            quantum: 1,
            max_instructions: 100_000,
            ..Default::default()
        };
        let mut engine = Engine::new(
            Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap()),
            config,
        );
        engine.load_firmware(&prog);
        let result = engine.run();
        assert_eq!(result.metrics.paths_completed, 4, "{searcher:?}");
        assert!(result.bugs.is_empty(), "{searcher:?}: {:?}", result.bugs);
    }
}
