//! Cross-crate pipeline tests: Verilog sources → RTL → instrumentation →
//! re-emitted Verilog → simulation, and simulator/FPGA target lock-step.

use hardsnap_bus::{map::soc, HwTarget};
use hardsnap_fpga::{FpgaOptions, FpgaTarget};
use hardsnap_periph::regs;
use hardsnap_scan::{instrument, ScanOptions};
use hardsnap_sim::SimTarget;
use hardsnap_util::Rng;

/// The instrumented SoC, printed back to Verilog and re-parsed, must
/// behave identically to the in-memory instrumented module (the paper's
/// toolchain hands the instrumented RTL to the FPGA flow as text).
#[test]
fn instrumented_verilog_roundtrip_behaves_identically() {
    let soc = hardsnap_periph::soc().unwrap();
    let (instrumented, _) = instrument(&soc, &ScanOptions::default()).unwrap();
    let printed = hardsnap_verilog::print_module(&instrumented);
    let reparsed_design = hardsnap_verilog::parse_design(&printed).unwrap();
    let reparsed = reparsed_design.iter().next().unwrap().clone();

    let mut a = hardsnap_sim::Simulator::new(instrumented).unwrap();
    let mut b = hardsnap_sim::Simulator::new(reparsed).unwrap();
    // Drive both with a reset and some cycles; compare a few registers.
    for sim in [&mut a, &mut b] {
        sim.poke("rst", 1).unwrap();
        sim.step(2);
        sim.poke("rst", 0).unwrap();
        sim.step(20);
    }
    for name in ["u_timer.value", "u_uart.tx_head", "u_sha.busy"] {
        let mangled = name.replace('.', "__");
        assert_eq!(
            a.peek(name).unwrap().bits(),
            b.peek(&mangled).unwrap().bits(),
            "register {name} diverged after print/reparse"
        );
    }
}

/// The FPGA target (instrumented netlist) and the simulator target
/// (original netlist) must stay in lock-step on random bus stimulus:
/// same read values, same IRQ lines.
#[test]
fn sim_and_fpga_targets_lockstep_under_random_stimulus() {
    let mut sim = SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap();
    let mut fpga =
        FpgaTarget::new(hardsnap_periph::soc().unwrap(), &FpgaOptions::default()).unwrap();
    sim.reset();
    fpga.reset();
    let mut rng = Rng::seed_from_u64(1234);
    let bases = [
        soc::TIMER_BASE,
        soc::SHA_BASE,
        soc::AES_BASE,
        soc::UART_BASE,
    ];
    let offsets = [0u32, 4, 8, 0x0c, 0x10];
    for i in 0..120 {
        let base = bases[rng.gen_range(0..bases.len())];
        let off = offsets[rng.gen_range(0..offsets.len())];
        let addr = base + off;
        if rng.gen_bool(0.5) {
            let v: u32 = rng.gen();
            let ra = sim.bus_write(addr, v);
            let rb = fpga.bus_write(addr, v);
            assert_eq!(ra.is_ok(), rb.is_ok(), "step {i}: write {addr:#x}");
        } else {
            let ra = sim.bus_read(addr);
            let rb = fpga.bus_read(addr);
            assert_eq!(ra.ok(), rb.ok(), "step {i}: read {addr:#x}");
        }
        let n = rng.gen_range(0..20);
        sim.step(n);
        fpga.step(n);
        assert_eq!(sim.irq_lines(), fpga.irq_lines(), "step {i}: irq mismatch");
    }
    // Final states must agree register-for-register.
    let ssnap = sim.save_snapshot().unwrap();
    let fsnap = fpga.save_snapshot().unwrap();
    assert!(
        ssnap.diff_regs(&fsnap).is_empty(),
        "diverged registers: {:?}",
        ssnap.diff_regs(&fsnap)
    );
    assert_eq!(ssnap.mems, fsnap.mems);
}

/// Snapshots taken on one target restore on the other and vice versa,
/// at randomly chosen points of a timer+uart workload.
#[test]
fn cross_target_snapshot_restore_at_random_points() {
    let mut rng = Rng::seed_from_u64(99);
    let mut sim = SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap();
    let mut fpga =
        FpgaTarget::new(hardsnap_periph::soc().unwrap(), &FpgaOptions::default()).unwrap();
    sim.reset();
    fpga.reset();
    sim.bus_write(soc::TIMER_BASE + regs::timer::LOAD, 5000)
        .unwrap();
    sim.bus_write(
        soc::TIMER_BASE + regs::timer::CTRL,
        regs::timer::CTRL_ENABLE,
    )
    .unwrap();
    for round in 0..5 {
        sim.step(rng.gen_range(1..500));
        let snap = sim.save_snapshot().unwrap();
        fpga.restore_snapshot(&snap).unwrap();
        // Both continue for the same number of cycles; values agree.
        let n = rng.gen_range(1..200);
        sim.step(n);
        fpga.step(n);
        let a = sim.bus_read(soc::TIMER_BASE + regs::timer::VALUE).unwrap();
        let b = fpga.bus_read(soc::TIMER_BASE + regs::timer::VALUE).unwrap();
        assert_eq!(a, b, "round {round}: timer diverged after cross-restore");
    }
}

/// Scoped instrumentation: only the chosen subsystem is in the chain,
/// and out-of-scope registers hold during scan.
#[test]
fn scoped_instrumentation_limits_the_chain() {
    let soc = hardsnap_periph::soc().unwrap();
    let (_, full_chain) = instrument(&soc, &ScanOptions::default()).unwrap();
    let (_, timer_chain) = instrument(
        &soc,
        &ScanOptions {
            scope: Some("u_timer.".into()),
            skip_memories: false,
            ..ScanOptions::default()
        },
    )
    .unwrap();
    assert!(timer_chain.chain_bits() < full_chain.chain_bits() / 4);
    assert!(timer_chain
        .segments
        .iter()
        .all(|s| s.name.starts_with("u_timer.")));
    assert!(timer_chain.mems.is_empty(), "timer has no memories");
}

/// Root-cause workflow: trace a clean run and a run corrupted by a
/// conflicting write (the Fig. 1 interleaving), then diff the traces to
/// find the first hardware signal that went wrong.
#[test]
fn trace_diff_pinpoints_the_corrupting_write() {
    use hardsnap_sim::{first_divergence, VcdData};

    fn traced_sha_run(inject_conflict: bool) -> VcdData {
        let mut t = SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap();
        t.reset();
        t.enable_trace();
        // REQ A: block word 0 = 0xAAAA0001.
        t.bus_write(soc::SHA_BASE + regs::sha256::BLOCK0, 0xAAAA_0001)
            .unwrap();
        t.bus_write(soc::SHA_BASE + regs::sha256::CTRL, regs::sha256::CTRL_INIT)
            .unwrap();
        t.step(10);
        if inject_conflict {
            // The interleaved REQ B of the inconsistent schedule.
            t.bus_write(soc::SHA_BASE + regs::sha256::BLOCK0, 0xBBBB_0002)
                .unwrap();
        } else {
            t.step(12); // keep the cycle counts comparable
        }
        t.step(100);
        let _ = t.bus_read(soc::SHA_BASE + regs::sha256::DIGEST0).unwrap();
        VcdData::parse(&t.take_trace().unwrap()).unwrap()
    }

    let clean = traced_sha_run(false);
    let corrupted = traced_sha_run(true);
    let d = first_divergence(&clean, &corrupted).expect("traces must diverge");
    // The first diverging signals are the bus write channel carrying the
    // conflicting block data into the accelerator.
    assert!(
        d.signal.contains("wdata")
            || d.signal.contains("awaddr")
            || d.signal.contains("valid")
            || d.signal.contains("wready")
            || d.signal.contains("awready"),
        "unexpected first divergence: {d:?}"
    );
    // And the corruption propagates into the SHA core's working state.
    let end = clean.end_time().min(corrupted.end_time());
    // (the VCD writer mangles hierarchical dots to `__`)
    let wa_clean = clean.value_at("u_sha__wa", end);
    let wa_corrupt = corrupted.value_at("u_sha__wa", end);
    assert!(
        wa_clean.is_some() && wa_corrupt.is_some(),
        "signal u_sha__wa traced"
    );
    assert_ne!(
        wa_clean, wa_corrupt,
        "working variable must differ at the end"
    );
}

/// `skip_memories` leaves every memory out of the snapshot access paths.
#[test]
fn skip_memories_option_excludes_collars() {
    let soc = hardsnap_periph::soc().unwrap();
    let (m, chain) = instrument(
        &soc,
        &ScanOptions {
            scope: None,
            skip_memories: true,
            ..ScanOptions::default()
        },
    )
    .unwrap();
    assert!(chain.mems.is_empty());
    assert!(
        m.find_net("scan_mem_en").is_none(),
        "no collar ports inserted"
    );
    assert!(m.find_net("scan_enable").is_some());
}

/// Additional Verilog-subset coverage: slice lvalues in continuous
/// assigns, `@*` sensitivity, else-if chains and 64-bit literals.
#[test]
fn verilog_subset_extras_simulate_correctly() {
    let d = hardsnap_verilog::parse_design(
        r#"
        module extras (input wire clk, input wire [7:0] a, output wire [15:0] y,
                       output reg [1:0] cls);
            wire [63:0] wide = 64'hDEAD_BEEF_0123_4567;
            assign y[7:0] = a;
            assign y[15:8] = wide[15:8];
            always @* begin
                if (a == 8'd0) cls = 2'd0;
                else if (a < 8'd16) cls = 2'd1;
                else if (a < 8'd128) cls = 2'd2;
                else cls = 2'd3;
            end
        endmodule
        "#,
    )
    .unwrap();
    let flat = hardsnap_rtl::elaborate(&d, "extras").unwrap();
    let mut sim = hardsnap_sim::Simulator::new(flat).unwrap();
    for (a, want_cls) in [(0u64, 0u64), (5, 1), (64, 2), (200, 3)] {
        sim.poke("a", a).unwrap();
        assert_eq!(sim.peek("cls").unwrap().bits(), want_cls, "a={a}");
        let y = sim.peek("y").unwrap().bits();
        assert_eq!(y & 0xff, a);
        assert_eq!(y >> 8, 0x45, "wide[15:8] of ...4567");
    }
}

/// Runtime evaluation of replication, concatenation and case-default.
#[test]
fn verilog_runtime_repeat_concat_case() {
    let d = hardsnap_verilog::parse_design(
        r#"
        module rcc (input wire clk, input wire [1:0] s, input wire b,
                    output wire [7:0] rep, output reg [3:0] sel);
            assign rep = {8{b}};
            always @(*) begin
                case (s)
                    2'd1: sel = {2'b10, 2'b01};
                    2'd2: sel = {4{1'b1}};
                    default: sel = 4'd0;
                endcase
            end
        endmodule
        "#,
    )
    .unwrap();
    let flat = hardsnap_rtl::elaborate(&d, "rcc").unwrap();
    let mut sim = hardsnap_sim::Simulator::new(flat).unwrap();
    sim.poke("b", 1).unwrap();
    assert_eq!(sim.peek("rep").unwrap().bits(), 0xff);
    sim.poke("b", 0).unwrap();
    assert_eq!(sim.peek("rep").unwrap().bits(), 0);
    for (s, want) in [(0u64, 0u64), (1, 0b1001), (2, 0b1111), (3, 0)] {
        sim.poke("s", s).unwrap();
        assert_eq!(sim.peek("sel").unwrap().bits(), want, "s={s}");
    }
}

/// The snapshot byte image (the CRIU-checkpoint analogue) round-trips a
/// real SoC snapshot through persistent-storage form.
#[test]
fn soc_snapshot_persists_through_bytes() {
    let mut t = SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap();
    t.reset();
    t.bus_write(soc::TIMER_BASE + regs::timer::LOAD, 777)
        .unwrap();
    t.step(13);
    let snap = t.save_snapshot().unwrap();
    let bytes = snap.to_bytes();
    let restored = hardsnap_bus::HwSnapshot::from_bytes(&bytes).unwrap();
    assert_eq!(restored, snap);
    // A fresh target accepts the deserialized image.
    let mut t2 = SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap();
    t2.reset();
    t2.restore_snapshot(&restored).unwrap();
    assert_eq!(
        t2.bus_read(soc::TIMER_BASE + regs::timer::VALUE).unwrap(),
        t.bus_read(soc::TIMER_BASE + regs::timer::VALUE).unwrap()
    );
}
