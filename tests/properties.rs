//! Property-based tests (hardsnap-util `prop_check!`) over the core
//! invariants: scan-chain codec identity, snapshot serialization,
//! instruction round-trips, symbolic/concrete ALU agreement, and
//! save/restore idempotence on the real SoC. All stimulus derives from
//! fixed seeds; a failure prints the case seed to reproduce it.

use hardsnap_bus::{HwSnapshot, HwTarget, MemImage, RegImage};
use hardsnap_scan::{ChainMap, ChainSegment};
use hardsnap_sim::SimTarget;
use hardsnap_util::prop::{any, from_fn, vec_of};
use hardsnap_util::{prop_check, Rng};

fn arb_chain(rng: &mut Rng) -> (ChainMap, Vec<u64>) {
    let widths: Vec<u32> = (0..rng.gen_range(1usize..12))
        .map(|_| rng.gen_range(1u32..=64))
        .collect();
    let mut cells = 0u64;
    let segments: Vec<ChainSegment> = widths
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let seg = ChainSegment {
                name: format!("r{i}"),
                width: w,
                msb_cell: cells,
            };
            cells += w as u64;
            seg
        })
        .collect();
    let values: Vec<u64> = widths.iter().map(|&w| rng.gen_range(0..=mask(w))).collect();
    (
        ChainMap {
            segments,
            mems: vec![],
            ..ChainMap::default()
        },
        values,
    )
}

fn mask(w: u32) -> u64 {
    if w == 64 {
        u64::MAX
    } else {
        (1 << w) - 1
    }
}

/// encode∘decode is the identity for any chain layout and values.
#[test]
fn scan_codec_roundtrip() {
    prop_check!(cases = 64, seed = 0x5CA0_C0DE, (chain_vals in from_fn(arb_chain)) => {
        let (chain, values) = chain_vals;
        let stream = chain.encode(&values).unwrap();
        assert_eq!(stream.len() as u64, chain.chain_bits());
        let decoded = chain.decode(&stream).unwrap();
        assert_eq!(decoded, values);
    });
}

/// Snapshot binary serialization round-trips arbitrary content.
#[test]
fn snapshot_bytes_roundtrip() {
    prop_check!(
        cases = 64,
        seed = 0x5EED_B17E,
        (
            regs in vec_of((any::<u64>(), 1u32..=64), 0..20),
            words in vec_of(any::<u64>(), 0..64),
            cycle in any::<u64>(),
        ) => {
            let snap = HwSnapshot {
                design: "prop".into(),
                cycle,
                regs: regs
                    .iter()
                    .enumerate()
                    .map(|(i, &(bits, width))| RegImage {
                        name: format!("r{i}"),
                        width,
                        bits: bits & mask(width),
                    })
                    .collect(),
                mems: vec![MemImage { name: "m".into(), width: 64, words: words.clone() }],
            };
            let bytes = snap.to_bytes();
            assert_eq!(bytes.len(), snap.byte_size());
            let back = HwSnapshot::from_bytes(&bytes).unwrap();
            assert_eq!(back, snap);
        }
    );
}

/// Every encodable instruction decodes back to itself.
#[test]
fn instruction_encode_decode_roundtrip() {
    prop_check!(
        cases = 64,
        seed = 0x15A_C0DE,
        (
            op in 0u8..9,
            rd in 0u8..16,
            rs1 in 0u8..16,
            rs2 in 0u8..16,
            imm in any::<u16>(),
        ) => {
            use hardsnap_isa::{AluOp, Instr};
            let ops = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor,
                       AluOp::Shl, AluOp::Shr, AluOp::Sra, AluOp::Mul];
            let alu = Instr::Alu { op: ops[op as usize], rd, rs1, rs2 };
            assert_eq!(Instr::decode(alu.encode()).unwrap(), alu);
            let imm_ext = if hardsnap_isa::encoding::imm_is_signed(ops[op as usize]) {
                imm as i16 as i32 as u32
            } else {
                imm as u32
            };
            let alui = Instr::AluImm { op: ops[op as usize], rd, rs1, imm: imm_ext };
            assert_eq!(Instr::decode(alui.encode()).unwrap(), alui);
            let ldw = Instr::Ldw { rd, rs1, off: imm as i16 };
            assert_eq!(Instr::decode(ldw.encode()).unwrap(), ldw);
        }
    );
}

/// The symbolic ALU terms agree with the concrete ALU on concrete
/// operands, for every operation.
#[test]
fn symbolic_alu_matches_concrete() {
    prop_check!(
        cases = 64,
        seed = 0xA1B_57A7E,
        (a in any::<u32>(), b in any::<u32>(), op in 0u8..9) => {
            use hardsnap_isa::AluOp;
            use hardsnap_symex::{BinOp, TermPool};
            let ops = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor,
                       AluOp::Shl, AluOp::Shr, AluOp::Sra, AluOp::Mul];
            let op = ops[op as usize];
            let concrete = hardsnap_isa::cpu::alu_reference(op, a, b);
            let mut pool = TermPool::new();
            let ta = pool.constant(a as u64, 32);
            let tb = pool.constant(b as u64, 32);
            let term = match op {
                AluOp::Add => pool.binary(BinOp::Add, ta, tb),
                AluOp::Sub => pool.binary(BinOp::Sub, ta, tb),
                AluOp::And => pool.binary(BinOp::And, ta, tb),
                AluOp::Or => pool.binary(BinOp::Or, ta, tb),
                AluOp::Xor => pool.binary(BinOp::Xor, ta, tb),
                AluOp::Mul => pool.binary(BinOp::Mul, ta, tb),
                AluOp::Shl | AluOp::Shr | AluOp::Sra => {
                    let m31 = pool.constant(31, 32);
                    let sh = pool.binary(BinOp::And, tb, m31);
                    let bop = match op {
                        AluOp::Shl => BinOp::Shl,
                        AluOp::Shr => BinOp::Lshr,
                        _ => BinOp::Ashr,
                    };
                    pool.binary(bop, ta, sh)
                }
            };
            assert_eq!(pool.as_const(term), Some(concrete as u64));
        }
    );
}

/// Branch conditions agree between the concrete CPU and the solver's
/// term semantics.
#[test]
fn symbolic_cond_matches_concrete() {
    prop_check!(
        cases = 64,
        seed = 0xC04D_0017,
        (a in any::<u32>(), b in any::<u32>(), c in 0u8..6) => {
            use hardsnap_isa::Cond;
            use hardsnap_symex::{BinOp, TermPool, UnOp};
            let conds = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];
            let cond = conds[c as usize];
            let concrete = hardsnap_isa::cpu::cond_reference(cond, a, b);
            let mut pool = TermPool::new();
            let ta = pool.constant(a as u64, 32);
            let tb = pool.constant(b as u64, 32);
            let term = match cond {
                Cond::Eq => pool.binary(BinOp::Eq, ta, tb),
                Cond::Ne => { let e = pool.binary(BinOp::Eq, ta, tb); pool.unary(UnOp::Not, e) }
                Cond::Lt => pool.binary(BinOp::Slt, ta, tb),
                Cond::Ge => { let l = pool.binary(BinOp::Slt, ta, tb); pool.unary(UnOp::Not, l) }
                Cond::Ltu => pool.binary(BinOp::Ult, ta, tb),
                Cond::Geu => { let l = pool.binary(BinOp::Ult, ta, tb); pool.unary(UnOp::Not, l) }
            };
            assert_eq!(pool.as_const(term), Some(concrete as u64));
        }
    );
}

/// save → perturb → restore → save is the identity on the real SoC
/// simulator target, from random starting activity. (Heavier cases:
/// fewer iterations.)
#[test]
fn soc_snapshot_restore_identity() {
    prop_check!(
        cases = 8,
        seed = 0x1DE_4907,
        (warm in 1u64..300, perturb in 1u64..300, load in 1u32..50_000) => {
            let mut t = SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap();
            t.reset();
            t.bus_write(
                hardsnap_bus::map::soc::TIMER_BASE + hardsnap_periph::regs::timer::LOAD,
                load,
            ).unwrap();
            t.bus_write(
                hardsnap_bus::map::soc::TIMER_BASE + hardsnap_periph::regs::timer::CTRL,
                hardsnap_periph::regs::timer::CTRL_ENABLE,
            ).unwrap();
            t.step(warm);
            let snap = t.save_snapshot().unwrap();
            t.step(perturb);
            t.restore_snapshot(&snap).unwrap();
            let snap2 = t.save_snapshot().unwrap();
            assert!(snap.diff_regs(&snap2).is_empty());
            assert_eq!(snap.mems, snap2.mems);
        }
    );
}

/// Two independent `SimTarget` runs driven by the same hardsnap-util
/// seed produce byte-identical `save_snapshot()` images — the
/// determinism guard underpinning every seeded test in this workspace.
#[test]
fn same_seed_same_snapshot_image() {
    fn seeded_run(seed: u64) -> Vec<u8> {
        use hardsnap_bus::map::soc;
        let mut rng = Rng::seed_from_u64(seed);
        let mut t = SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap();
        t.reset();
        let bases = [
            soc::TIMER_BASE,
            soc::UART_BASE,
            soc::SHA_BASE,
            soc::AES_BASE,
        ];
        for _ in 0..40 {
            let addr = bases[rng.gen_range(0..bases.len())] + 4 * rng.gen_range(0u32..5);
            if rng.gen_bool(0.7) {
                let _ = t.bus_write(addr, rng.gen());
            } else {
                let _ = t.bus_read(addr);
            }
            t.step(rng.gen_range(0..50));
        }
        t.save_snapshot().unwrap().to_bytes()
    }
    let a = seeded_run(0xD57E_2141_57);
    let b = seeded_run(0xD57E_2141_57);
    assert_eq!(a, b, "same seed must give byte-identical snapshot images");
    let c = seeded_run(0xD57E_2141_58);
    assert_ne!(a, c, "different seeds must exercise different stimulus");
}
