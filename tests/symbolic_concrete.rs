//! Symbolic/concrete cross-validation: test cases synthesized by the
//! symbolic engine must reproduce the same faults on the concrete CPU
//! against live hardware — the core promise of test-case generation.

use hardsnap::firmware::{vulnerable_firmware, PlantedBug};
use hardsnap::{Engine, EngineConfig, Searcher};
use hardsnap_fuzz::TargetBus;
use hardsnap_isa::{Cpu, CpuFault};
use hardsnap_sim::SimTarget;

/// Runs `program` concretely with `tape` against fresh hardware and
/// returns the first fault.
fn concrete_replay(program: &hardsnap_isa::Program, tape: Vec<u32>) -> Option<CpuFault> {
    let mut target = SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap();
    hardsnap_bus::HwTarget::reset(&mut target);
    let mut cpu = Cpu::new(program);
    cpu.set_input_tape(tape);
    for _ in 0..20_000 {
        let lines = hardsnap_bus::HwTarget::irq_lines(&mut target);
        if lines != 0 {
            cpu.take_irq(lines);
        }
        let mut bus = TargetBus(&mut target);
        match cpu.step(&mut bus) {
            Ok(hardsnap_isa::Event::Halted) => return None,
            Ok(_) => {}
            Err(f) => return Some(f),
        }
        hardsnap_bus::HwTarget::step(&mut target, 4);
    }
    None
}

#[test]
fn symbolic_testcases_reproduce_concretely() {
    for bug in PlantedBug::all() {
        let program = hardsnap_isa::assemble(&vulnerable_firmware(bug)).unwrap();
        let target = Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap());
        let mut engine = Engine::new(
            target,
            EngineConfig {
                searcher: Searcher::Dfs,
                ..Default::default()
            },
        );
        engine.load_firmware(&program);
        let result = engine.run();
        let report = result
            .bugs
            .first()
            .unwrap_or_else(|| panic!("{}: no bug", bug.name()));
        let tc = report.testcase.as_ref().expect("testcase");
        // Input tape: variables are named sym<id>_<n> in execution
        // order; order by the trailing counter.
        let mut inputs: Vec<(u32, u64)> = tc
            .iter()
            .map(|(name, v)| {
                let n: u32 = name.rsplit('_').next().unwrap().parse().unwrap();
                (n, v)
            })
            .collect();
        inputs.sort_unstable();
        let tape: Vec<u32> = inputs.iter().map(|&(_, v)| v as u32).collect();

        let fault = concrete_replay(&program, tape);
        match bug {
            PlantedBug::LengthOverflow => {
                assert!(
                    matches!(fault, Some(CpuFault::Unmapped { .. })),
                    "{}: got {fault:?}",
                    bug.name()
                );
            }
            PlantedBug::MagicCommand | PlantedBug::IrqGated => {
                assert!(
                    matches!(fault, Some(CpuFault::FailHit { .. })),
                    "{}: got {fault:?}",
                    bug.name()
                );
            }
        }
    }
}

#[test]
fn symbolic_and_concrete_agree_on_concrete_programs() {
    // A fully concrete program must end in the same architectural state
    // under both engines.
    let src = r#"
        .org 0x100
        entry:
            movi r1, #100
            movi r2, #3
        loop:
            mul r1, r1, r2
            subi r2, r2, #1
            bne r2, r0, loop
            xori r1, r1, #0xAA
            halt
    "#;
    let program = hardsnap_isa::assemble(src).unwrap();
    // Concrete.
    let mut cpu = Cpu::new(&program);
    cpu.run(&mut hardsnap_isa::NoMmio, 1000).unwrap();
    // Symbolic.
    let mut ex = hardsnap_symex::Executor::new(hardsnap_symex::Concretization::Minimal);
    let mut s = ex.initial_state(program.image.clone(), program.entry);
    let mut hw = hardsnap_symex::NoSymMmio;
    let final_state = loop {
        match ex.step(s, &mut hw) {
            hardsnap_symex::StepOutcome::ContinueWith(n) => s = n,
            hardsnap_symex::StepOutcome::Halted(n) => break n,
            other => panic!("{other:?}"),
        }
    };
    for r in 0..16u8 {
        assert_eq!(
            Some(cpu.reg(r) as u64),
            ex.pool.as_const(final_state.reg(r)),
            "r{r} differs"
        );
    }
    assert_eq!(cpu.instret, final_state.instret);
}

#[test]
fn fuzz_crash_input_confirmed_by_symbolic_engine() {
    // The fuzzer finds ('X', 0x42); the symbolic engine must agree that
    // exactly this input detonates (its testcase matches).
    let program = hardsnap_isa::assemble(&hardsnap::firmware::uart_parser_firmware()).unwrap();
    let target = Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap());
    let mut engine = Engine::new(
        target,
        EngineConfig {
            searcher: Searcher::Dfs,
            ..Default::default()
        },
    );
    engine.load_firmware(&program);
    let result = engine.run();
    let bug = result
        .bugs
        .iter()
        .find(|b| b.kind == hardsnap::BugKind::FailHit)
        .expect("symbolic engine finds the parser crash");
    let tc = bug.testcase.as_ref().unwrap();
    let mut vals: Vec<(String, u64)> = tc.iter().map(|(k, v)| (k.to_string(), v)).collect();
    vals.sort();
    assert_eq!(vals[0].1 & 0xff, 0x58, "first command byte 'X'");
    assert_eq!(vals[1].1 & 0xff, 0x42, "second byte 0x42");
}
