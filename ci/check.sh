#!/usr/bin/env bash
# Tier-1 verification gate. Everything runs --offline: the workspace is
# hermetic (no registry crates), and CI must prove it stays that way.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> parallel-engine worker-determinism guard"
cargo test -q --offline -p hardsnap --test parallel

echo "==> sim-engine differential guard (bytecode vs interpreter)"
# Random designs under random stimulus: the compiled bytecode engine
# must match the reference interpreter on every net, memory word and
# snapshot image, every cycle.
cargo test -q --offline -p hardsnap-sim --test differential
cargo test -q --offline -p hardsnap --test sim_engines

echo "==> sim-engine digest gate: analyze demo, delta {off,on} x engines x workers {1,2,4}"
# End-to-end: the full analysis pipeline must produce one canonical
# digest no matter which RTL evaluation backend runs underneath, how
# many workers share the store, or whether snapshots travel as full
# images or activity-proportional delta captures.
engine_digest=""
for delta in off on; do
    for eng in interp bytecode; do
        for w in 1 2 4; do
            cargo run -q --release --offline -p hardsnap-bench --bin hardsnap-cli -- \
                analyze demo --workers "$w" --sim-engine "$eng" --delta-snapshots "$delta" \
                > "target/analyze.$delta.$eng.$w.txt"
            d=$(grep 'canonical digest' "target/analyze.$delta.$eng.$w.txt" | awk '{print $NF}')
            if [ -z "$d" ]; then
                echo "no digest from --delta-snapshots $delta --sim-engine $eng --workers $w"
                exit 1
            fi
            if [ -z "$engine_digest" ]; then
                engine_digest="$d"
            elif [ "$d" != "$engine_digest" ]; then
                echo "digest diverged: --delta-snapshots $delta --sim-engine $eng --workers $w gave $d, want $engine_digest"
                exit 1
            fi
        done
    done
done
echo "    digests match across delta x engines x workers: $engine_digest"

echo "==> persistence gate: save -> fresh-process resume, digest bit-identical"
# An instruction-budget-interrupted campaign checkpointed to disk and
# resumed by a *fresh process* must report exactly the digest of one
# uninterrupted run, whatever engine, worker count, or snapshot
# representation produced the checkpoint. Every snapshot artifact the
# save wrote must also pass deep validation standalone.
for delta in off on; do
    for eng in interp bytecode; do
        for w in 1 2 4; do
            dir="target/campaign.$delta.$eng.$w"
            rm -rf "$dir"
            cargo run -q --release --offline -p hardsnap-bench --bin hardsnap-cli -- \
                analyze demo --workers "$w" --sim-engine "$eng" --delta-snapshots "$delta" \
                --max-instructions 40 --save-snapshots "$dir" > /dev/null
            cargo run -q --release --offline -p hardsnap-bench --bin hardsnap-cli -- \
                analyze demo --workers "$w" --sim-engine "$eng" --delta-snapshots "$delta" \
                --resume "$dir" > "target/resume.$delta.$eng.$w.txt"
            d=$(grep 'canonical digest' "target/resume.$delta.$eng.$w.txt" | awk '{print $NF}')
            if [ "$d" != "$engine_digest" ]; then
                echo "resume diverged: --delta-snapshots $delta --sim-engine $eng --workers $w gave '$d', want $engine_digest"
                exit 1
            fi
            for f in "$dir"/*.hsnap; do
                [ -e "$f" ] || continue
                cargo run -q --release --offline -p hardsnap-bench --bin hardsnap-cli -- \
                    snapshot validate --deep "$f" > /dev/null
            done
        done
    done
done
echo "    resumed digests match across delta x engines x workers: $engine_digest"

echo "==> snapshot-persistence smoke run (lazy restore + RAM budget + campaign resume)"
# exp_snapshot_persist asserts internally that a quiescent lazy resume
# pages in zero sections and beats the eager restore >= 5x on sim, that
# a 4x over-committed store spills and stays under budget with the
# digest unchanged, and that save -> fresh-engine resume reproduces the
# uninterrupted digest.
cargo run -q --release --offline -p hardsnap-bench --bin exp_snapshot_persist -- \
    --smoke --json target/BENCH_snapshot_persist.smoke.json

echo "==> 2-worker analysis-speed smoke run"
cargo run -q --release --offline -p hardsnap-bench --bin exp_analysis_speed -- \
    --workers 1,2 --json target/BENCH_analysis_speed.smoke.json

echo "==> snapshot-overhead smoke run (delta materialization + digest invariance)"
# Every sweep point's delta capture is materialized and content-hash
# checked against the live state inside the binary; the digest section
# re-proves delta on/off invariance end to end.
cargo run -q --release --offline -p hardsnap-bench --bin exp_snapshot_overhead -- \
    --smoke --json target/BENCH_snapshot_overhead.smoke.json

echo "==> telemetry gate: traced 2-worker run, valid trace + digest equality"
# A traced run must produce a well-formed Chrome trace (non-empty,
# monotonically ordered per-track events) and a canonical digest
# bit-identical to the untraced run: telemetry is observe-only.
cargo run -q --release --offline -p hardsnap-bench --bin hardsnap-cli -- \
    analyze demo --workers 2 --trace-out target/trace.smoke.json \
    > target/analyze.traced.txt
cargo run -q --release --offline -p hardsnap-bench --bin hardsnap-cli -- \
    trace-check target/trace.smoke.json
cargo run -q --release --offline -p hardsnap-bench --bin hardsnap-cli -- \
    analyze demo --workers 2 > target/analyze.plain.txt
traced_digest=$(grep 'canonical digest' target/analyze.traced.txt | awk '{print $NF}')
plain_digest=$(grep 'canonical digest' target/analyze.plain.txt | awk '{print $NF}')
if [ "$traced_digest" != "$plain_digest" ] || [ -z "$traced_digest" ]; then
    echo "telemetry perturbed the result: traced=$traced_digest plain=$plain_digest"
    exit 1
fi
echo "    digests match: $traced_digest"

echo "==> chaos gate: 2-worker smoke under a 10% fault rate"
# exp_fault_recovery asserts internally that every faulted point's
# canonical digest is bit-identical to the fault-free run and that the
# zero-budget hang plan quarantines at least one replica.
cargo run -q --release --offline -p hardsnap-bench --bin exp_fault_recovery -- \
    --smoke --json target/BENCH_fault_recovery.smoke.json

echo "==> serve smoke run (pool contention, admission, over-budget resume, SIGKILL recovery)"
# exp_serve asserts internally that concurrent jobs sharing a bounded
# replica pool reproduce the reference digest, that admission control
# rejects an over-wide job and a full queue with a typed error, that a
# vtime-budgeted job stops over-budget and resumes to the reference
# digest, and that SIGKILL-ing the live daemon mid-checkpoint loses
# nothing after restart.
cargo run -q --release --offline -p hardsnap-bench --bin exp_serve -- \
    --smoke --json target/BENCH_serve.smoke.json

echo "==> serve gate: daemon, concurrent verdict exit codes, kill -9 + restart"
# Drives the real daemon binary over its unix socket with the CLI
# verbs, checking the full exit-code contract:
#   0 completed/stable, 2 saturated, 3 flaky, 4 cancelled/over-budget.
SERVE=target/release/hardsnap-serve
CLI=target/release/hardsnap-cli
SDIR=target/serve-ci
SOCK=$SDIR/serve.sock
SERVE_LOG=target/serve-ci.log
SERVE_PID=""
trap '[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true' EXIT
rm -rf "$SDIR"
"$SERVE" --state-dir "$SDIR" --socket "$SOCK" --pool 2 --queue-max 8 > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!

# Three concurrent jobs on a 2-replica pool: a clean run, an
# over-budget run, and a flaky run (same parameters the serve crate's
# unit tests pin down as deterministically stable/flaky).
ok_id=$("$CLI" submit demo:5 --socket "$SOCK" --name ok | awk '{print $3}')
ob_id=$("$CLI" submit demo:5 --socket "$SOCK" --name over-budget \
    --max-vtime-ns 50000 | awk '{print $3}')
fl_id=$("$CLI" submit demo:3 --socket "$SOCK" --name flaky \
    --fault-rate 0.6 --repeat 3 | awk '{print $3}')
rc_ok=0; "$CLI" wait "$ok_id" --socket "$SOCK" > target/serve.ok.txt || rc_ok=$?
rc_ob=0; "$CLI" wait "$ob_id" --socket "$SOCK" > /dev/null || rc_ob=$?
rc_fl=0; "$CLI" wait "$fl_id" --socket "$SOCK" > /dev/null || rc_fl=$?
if [ "$rc_ok" != 0 ] || [ "$rc_ob" != 4 ] || [ "$rc_fl" != 3 ]; then
    echo "serve exit codes wrong: ok=$rc_ok (want 0) over-budget=$rc_ob (want 4) flaky=$rc_fl (want 3)"
    exit 1
fi
ok_digest=$(awk '{print $(NF-1)}' target/serve.ok.txt)

# Admission control: a job wider than the whole pool is a typed
# saturation rejection (exit 2), not an error or a hang.
rc_sat=0; "$CLI" submit demo:3 --socket "$SOCK" --workers 3 > /dev/null 2>&1 || rc_sat=$?
if [ "$rc_sat" != 2 ]; then
    echo "saturation returned exit $rc_sat, want 2"
    exit 1
fi

# Crash safety: submit a job that checkpoints every 32 instructions,
# SIGKILL the daemon inside the run, restart on the same state dir,
# and the recovered job must complete with the clean run's digest.
kill_id=$("$CLI" submit demo:5 --socket "$SOCK" --name kill-me \
    --leg-instructions 32 | awk '{print $3}')
for _ in $(seq 1 2000); do
    if [ -e "$SDIR/jobs/$kill_id/checkpoint/campaign.hscamp" ] \
        && [ ! -e "$SDIR/jobs/$kill_id/result.json" ]; then
        break
    fi
    sleep 0.01
done
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
"$SERVE" --state-dir "$SDIR" --socket "$SOCK" --pool 2 --queue-max 8 >> "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
rc_kill=0; "$CLI" wait "$kill_id" --socket "$SOCK" > target/serve.recovered.txt || rc_kill=$?
rec_digest=$(awk '{print $(NF-1)}' target/serve.recovered.txt)
if [ "$rc_kill" != 0 ] || [ "$rec_digest" != "$ok_digest" ] || [ -z "$ok_digest" ]; then
    echo "recovery failed: exit=$rc_kill digest=$rec_digest want=$ok_digest"
    exit 1
fi
"$CLI" cancel daemon --socket "$SOCK" > /dev/null
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "    verdict exit codes + SIGKILL recovery OK, digest $rec_digest"

echo "==> observability gate: subscribe stream, Prometheus scrape, flight recorder"
# A fresh daemon serves Prometheus text exposition on an ephemeral TCP
# port while a subscriber captures the live event stream; every
# observability artifact must validate under trace-check and the
# observed job's digest must equal the dark run's from the gate above.
ODIR=target/serve-obs
OSOCK=$ODIR/serve.sock
OLOG=target/serve-obs.log
rm -rf "$ODIR"
"$SERVE" --state-dir "$ODIR" --socket "$OSOCK" --pool 2 --queue-max 8 \
    --metrics-addr 127.0.0.1:0 > "$OLOG" 2>&1 &
SERVE_PID=$!
# The daemon announces the bound endpoint (port 0 = ephemeral); parse it.
for _ in $(seq 1 200); do
    grep -q 'metrics on http://' "$OLOG" && break
    sleep 0.05
done
MADDR=$(sed -n 's#.*metrics on http://\([^/]*\)/metrics#\1#p' "$OLOG" | head -1)
if [ -z "$MADDR" ]; then
    echo "daemon never announced its metrics endpoint"
    exit 1
fi
MHOST=${MADDR%:*}; MPORT=${MADDR##*:}

# Capture the first few lifecycle events as NDJSON while the job runs.
"$CLI" subscribe --socket "$OSOCK" --count 4 --timeout-secs 60 \
    --out target/serve.events.ndjson 2>/dev/null &
SUB_PID=$!
obs_id=$("$CLI" submit demo:5 --socket "$OSOCK" --name observed \
    --leg-instructions 64 | awk '{print $3}')

# Scrape the exposition endpoint mid-run with bash's /dev/tcp, then
# strip the HTTP response headers.
exec 3<>"/dev/tcp/$MHOST/$MPORT"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
sed -e '1,/^\r\{0,1\}$/d' <&3 > target/serve.metrics.prom
exec 3<&- 3>&-

rc_obs=0; "$CLI" wait "$obs_id" --socket "$OSOCK" > target/serve.obs.txt || rc_obs=$?
obs_digest=$(awk '{print $(NF-1)}' target/serve.obs.txt)
if [ "$rc_obs" != 0 ] || [ "$obs_digest" != "$ok_digest" ]; then
    echo "observed run diverged: exit=$rc_obs digest=$obs_digest want=$ok_digest"
    exit 1
fi
wait "$SUB_PID"

# Every artifact validates under the format-sniffing trace-check:
# the captured event stream, the mid-run scrape, the aggregated JSON
# snapshot, the flight dump, and the job's terminal-commit artifacts.
"$CLI" metrics --socket "$OSOCK" > target/serve.metrics.json
"$CLI" dump-flight --socket "$OSOCK" --out target/serve.flight.json 2>/dev/null
"$CLI" trace-check target/serve.events.ndjson
"$CLI" trace-check target/serve.metrics.prom
"$CLI" trace-check target/serve.metrics.json
"$CLI" trace-check target/serve.flight.json
"$CLI" trace-check "$ODIR/jobs/$obs_id/metrics.json"
"$CLI" trace-check "$ODIR/jobs/$obs_id/trace.json"
grep -q '^hardsnap_serve_jobs_admitted_total' target/serve.metrics.prom || {
    echo "mid-run scrape is missing serve counters"
    exit 1
}

# SIGTERM leaves a post-mortem flight dump on disk before shutdown.
kill -TERM "$SERVE_PID"
for _ in $(seq 1 200); do
    [ -e "$ODIR/flight.json" ] && break
    sleep 0.05
done
"$CLI" trace-check "$ODIR/flight.json"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "    event stream + exposition + flight recorder OK, digest $obs_digest"

echo "==> sched smoke run (warm-start speedup, lanes vs fifo, digest invariance)"
# exp_sched asserts internally that a warm fork digests identically to
# a cold boot and that fifo and lanes orderings produce bit-identical
# per-job digests.
cargo run -q --release --offline -p hardsnap-bench --bin exp_sched -- \
    --smoke --json target/BENCH_sched.smoke.json

echo "==> pack gate: archive round-trip with shape admission"
# Re-uses a campaign directory the persistence gate wrote above. The
# unpack side recomputes the live SoC shape and admits the archive
# before extracting; every extracted image must still deep-validate.
PDIR=target/campaign.off.bytecode.1
"$CLI" snapshot pack "$PDIR" -o target/ci.hspack > /dev/null
# Buffer inspect output before grepping: grep -q exits on first match
# and would SIGPIPE the CLI mid-print under pipefail.
"$CLI" snapshot inspect target/ci.hspack > target/ci.inspect.txt
grep -q 'pack archive' target/ci.inspect.txt || {
    echo "inspect did not recognize the pack archive"
    exit 1
}
rm -rf target/ci-unpacked
"$CLI" snapshot unpack target/ci.hspack target/ci-unpacked > /dev/null
for f in target/ci-unpacked/*.hsnap; do
    [ -e "$f" ] || continue
    "$CLI" snapshot validate --deep "$f" > /dev/null
done
echo "    pack -> inspect -> shape-gated unpack -> deep validate OK"

echo "==> sched gate: warm-pool daemon, mixed-priority burst, lanes vs fifo"
# Drives the real daemon twice over its socket with the same burst —
# a long job holding one replica, an unseatable 2-worker wide job at
# the head, then narrow high-priority jobs behind it. Under lanes the
# narrows must wait less (packing + priority) than under strict fifo,
# with every digest bit-identical to the fifo reference.
run_burst() { # state-dir, sched policy, summary-out; leaves no daemon
    local dir=$1 policy=$2 outf=$3
    local sock="$dir/serve.sock"
    rm -rf "$dir"
    "$SERVE" --state-dir "$dir" --socket "$sock" --pool 2 --queue-max 16 \
        --sched "$policy" --aging-ms 400 --warm-pool 2 >> "$SERVE_LOG" 2>&1 &
    SERVE_PID=$!
    # Let the pool arm so the burst actually exercises warm leases.
    # Poll output is buffered to a file: grep -q on a live pipe exits
    # on first match and would SIGPIPE the CLI mid-print.
    for _ in $(seq 1 500); do
        "$CLI" status --socket "$sock" > "$dir/poll.txt" 2>/dev/null || true
        grep -Eq 'warm [1-2]/2' "$dir/poll.txt" && break
        sleep 0.01
    done
    local hold wide id
    hold=$("$CLI" submit demo:6 --socket "$sock" --name hold \
        --leg-instructions 64 | awk '{print $3}')
    # The wide job must arrive while hold runs, or it seats instantly.
    for _ in $(seq 1 500); do
        "$CLI" status "$hold" --socket "$sock" > "$dir/poll.txt"
        grep -q ' running ' "$dir/poll.txt" && break
        sleep 0.01
    done
    wide=$("$CLI" submit demo:5 --socket "$sock" --name wide \
        --workers 2 --priority 0 | awk '{print $3}')
    for i in 1 2 3 4 5; do
        "$CLI" submit demo:2 --socket "$sock" --name "n$i" --priority 7 > /dev/null
    done
    "$CLI" wait "$wide" --socket "$sock" > /dev/null
    for id in $(seq 1 7); do
        "$CLI" wait "$id" --socket "$sock" > /dev/null
    done
    "$CLI" status --socket "$sock" > "$outf"
    "$CLI" metrics --socket "$sock" > "$outf.metrics.json"
    "$CLI" cancel daemon --socket "$sock" > /dev/null
    wait "$SERVE_PID" 2>/dev/null || true
    SERVE_PID=""
}
narrow_max_wait() { # summary file -> worst narrow queue wait (ms)
    awk '$NF ~ /^n[0-9]$/ { for (i = 1; i < NF; i++) if ($i == "wait") print $(i + 1) }' \
        "$1" | sort -n | tail -1
}
run_burst target/serve-sched-fifo fifo target/sched.fifo.txt
run_burst target/serve-sched-lanes lanes target/sched.lanes.txt
fifo_wait=$(narrow_max_wait target/sched.fifo.txt)
lanes_wait=$(narrow_max_wait target/sched.lanes.txt)
if [ -z "$fifo_wait" ] || [ -z "$lanes_wait" ] || [ "$lanes_wait" -ge "$fifo_wait" ]; then
    echo "lanes did not improve narrow queue wait: lanes=$lanes_wait ms fifo=$fifo_wait ms"
    exit 1
fi
# Scheduling policy must never change what a job computes: identical
# name -> digest pairs under both orderings.
awk '/^job / {print $NF, $(NF-1)}' target/sched.fifo.txt | sort > target/sched.fifo.digests
awk '/^job / {print $NF, $(NF-1)}' target/sched.lanes.txt | sort > target/sched.lanes.digests
if ! cmp -s target/sched.fifo.digests target/sched.lanes.digests; then
    echo "scheduling policy changed a canonical digest:"
    diff target/sched.fifo.digests target/sched.lanes.digests || true
    exit 1
fi
# The warm pool actually served the burst (pool-hit provenance), and
# the new pool/lane telemetry fields are present and well-formed.
grep -q ' warm ' target/sched.lanes.txt || {
    echo "no job reported warm-pool provenance"
    exit 1
}
"$CLI" trace-check target/sched.lanes.txt.metrics.json
for field in 'serve\.pool_' 'serve\.queue_wait_ms\.lane' 'serve\.warm_target'; do
    grep -Eq "$field" target/sched.lanes.txt.metrics.json || {
        echo "metrics snapshot is missing $field"
        exit 1
    }
done
echo "    lanes narrow wait $lanes_wait ms < fifo $fifo_wait ms, digests identical, warm pool + lane telemetry OK"

echo "==> OK"
