#!/usr/bin/env bash
# Tier-1 verification gate. Everything runs --offline: the workspace is
# hermetic (no registry crates), and CI must prove it stays that way.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> parallel-engine worker-determinism guard"
cargo test -q --offline -p hardsnap --test parallel

echo "==> sim-engine differential guard (bytecode vs interpreter)"
# Random designs under random stimulus: the compiled bytecode engine
# must match the reference interpreter on every net, memory word and
# snapshot image, every cycle.
cargo test -q --offline -p hardsnap-sim --test differential
cargo test -q --offline -p hardsnap --test sim_engines

echo "==> sim-engine digest gate: analyze demo, delta {off,on} x engines x workers {1,2,4}"
# End-to-end: the full analysis pipeline must produce one canonical
# digest no matter which RTL evaluation backend runs underneath, how
# many workers share the store, or whether snapshots travel as full
# images or activity-proportional delta captures.
engine_digest=""
for delta in off on; do
    for eng in interp bytecode; do
        for w in 1 2 4; do
            cargo run -q --release --offline -p hardsnap-bench --bin hardsnap-cli -- \
                analyze demo --workers "$w" --sim-engine "$eng" --delta-snapshots "$delta" \
                > "target/analyze.$delta.$eng.$w.txt"
            d=$(grep 'canonical digest' "target/analyze.$delta.$eng.$w.txt" | awk '{print $NF}')
            if [ -z "$d" ]; then
                echo "no digest from --delta-snapshots $delta --sim-engine $eng --workers $w"
                exit 1
            fi
            if [ -z "$engine_digest" ]; then
                engine_digest="$d"
            elif [ "$d" != "$engine_digest" ]; then
                echo "digest diverged: --delta-snapshots $delta --sim-engine $eng --workers $w gave $d, want $engine_digest"
                exit 1
            fi
        done
    done
done
echo "    digests match across delta x engines x workers: $engine_digest"

echo "==> persistence gate: save -> fresh-process resume, digest bit-identical"
# An instruction-budget-interrupted campaign checkpointed to disk and
# resumed by a *fresh process* must report exactly the digest of one
# uninterrupted run, whatever engine, worker count, or snapshot
# representation produced the checkpoint. Every snapshot artifact the
# save wrote must also pass deep validation standalone.
for delta in off on; do
    for eng in interp bytecode; do
        for w in 1 2 4; do
            dir="target/campaign.$delta.$eng.$w"
            rm -rf "$dir"
            cargo run -q --release --offline -p hardsnap-bench --bin hardsnap-cli -- \
                analyze demo --workers "$w" --sim-engine "$eng" --delta-snapshots "$delta" \
                --max-instructions 40 --save-snapshots "$dir" > /dev/null
            cargo run -q --release --offline -p hardsnap-bench --bin hardsnap-cli -- \
                analyze demo --workers "$w" --sim-engine "$eng" --delta-snapshots "$delta" \
                --resume "$dir" > "target/resume.$delta.$eng.$w.txt"
            d=$(grep 'canonical digest' "target/resume.$delta.$eng.$w.txt" | awk '{print $NF}')
            if [ "$d" != "$engine_digest" ]; then
                echo "resume diverged: --delta-snapshots $delta --sim-engine $eng --workers $w gave '$d', want $engine_digest"
                exit 1
            fi
            for f in "$dir"/*.hsnap; do
                [ -e "$f" ] || continue
                cargo run -q --release --offline -p hardsnap-bench --bin hardsnap-cli -- \
                    snapshot validate --deep "$f" > /dev/null
            done
        done
    done
done
echo "    resumed digests match across delta x engines x workers: $engine_digest"

echo "==> snapshot-persistence smoke run (lazy restore + RAM budget + campaign resume)"
# exp_snapshot_persist asserts internally that a quiescent lazy resume
# pages in zero sections and beats the eager restore >= 5x on sim, that
# a 4x over-committed store spills and stays under budget with the
# digest unchanged, and that save -> fresh-engine resume reproduces the
# uninterrupted digest.
cargo run -q --release --offline -p hardsnap-bench --bin exp_snapshot_persist -- \
    --smoke --json target/BENCH_snapshot_persist.smoke.json

echo "==> 2-worker analysis-speed smoke run"
cargo run -q --release --offline -p hardsnap-bench --bin exp_analysis_speed -- \
    --workers 1,2 --json target/BENCH_analysis_speed.smoke.json

echo "==> snapshot-overhead smoke run (delta materialization + digest invariance)"
# Every sweep point's delta capture is materialized and content-hash
# checked against the live state inside the binary; the digest section
# re-proves delta on/off invariance end to end.
cargo run -q --release --offline -p hardsnap-bench --bin exp_snapshot_overhead -- \
    --smoke --json target/BENCH_snapshot_overhead.smoke.json

echo "==> telemetry gate: traced 2-worker run, valid trace + digest equality"
# A traced run must produce a well-formed Chrome trace (non-empty,
# monotonically ordered per-track events) and a canonical digest
# bit-identical to the untraced run: telemetry is observe-only.
cargo run -q --release --offline -p hardsnap-bench --bin hardsnap-cli -- \
    analyze demo --workers 2 --trace-out target/trace.smoke.json \
    > target/analyze.traced.txt
cargo run -q --release --offline -p hardsnap-bench --bin hardsnap-cli -- \
    trace-check target/trace.smoke.json
cargo run -q --release --offline -p hardsnap-bench --bin hardsnap-cli -- \
    analyze demo --workers 2 > target/analyze.plain.txt
traced_digest=$(grep 'canonical digest' target/analyze.traced.txt | awk '{print $NF}')
plain_digest=$(grep 'canonical digest' target/analyze.plain.txt | awk '{print $NF}')
if [ "$traced_digest" != "$plain_digest" ] || [ -z "$traced_digest" ]; then
    echo "telemetry perturbed the result: traced=$traced_digest plain=$plain_digest"
    exit 1
fi
echo "    digests match: $traced_digest"

echo "==> chaos gate: 2-worker smoke under a 10% fault rate"
# exp_fault_recovery asserts internally that every faulted point's
# canonical digest is bit-identical to the fault-free run and that the
# zero-budget hang plan quarantines at least one replica.
cargo run -q --release --offline -p hardsnap-bench --bin exp_fault_recovery -- \
    --smoke --json target/BENCH_fault_recovery.smoke.json

echo "==> OK"
