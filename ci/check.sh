#!/usr/bin/env bash
# Tier-1 verification gate. Everything runs --offline: the workspace is
# hermetic (no registry crates), and CI must prove it stays that way.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> parallel-engine worker-determinism guard"
cargo test -q --offline -p hardsnap --test parallel

echo "==> 2-worker analysis-speed smoke run"
cargo run -q --release --offline -p hardsnap-bench --bin exp_analysis_speed -- \
    --workers 1,2 --json target/BENCH_analysis_speed.smoke.json

echo "==> chaos gate: 2-worker smoke under a 10% fault rate"
# exp_fault_recovery asserts internally that every faulted point's
# canonical digest is bit-identical to the fault-free run and that the
# zero-budget hang plan quarantines at least one replica.
cargo run -q --release --offline -p hardsnap-bench --bin exp_fault_recovery -- \
    --smoke --json target/BENCH_fault_recovery.smoke.json

echo "==> OK"
