//! Recursive-descent parser for the synthesizable Verilog-2005 subset.
//!
//! Supported constructs (see crate docs for the full subset contract):
//! ANSI-style module headers with `parameter` lists, `wire`/`reg`
//! declarations with ranges, memory declarations, `localparam`,
//! continuous `assign`, `always @(posedge/negedge clk)` and
//! `always @(*)` (or `@(a or b)`) processes with `begin/end`, `if`,
//! `case` and both assignment flavors, and named-port module
//! instantiation.
//!
//! Restrictions (documented, checked with clear diagnostics):
//! declare-before-use; vector ranges must end at bit 0 (`[msb:0]`);
//! memory ranges must start at word 0; no 4-state literals, `initial`
//! blocks, `generate`, delays, or signed arithmetic; `/` and `%` only in
//! constant expressions.

use crate::token::{lex, Pos, Spanned, Tok};
use crate::VerilogError;
use hardsnap_rtl::{
    eval_binary, eval_unary, BinaryOp, CaseArm, ContAssign, Design, EdgeKind, Expr, Instance,
    LValue, Module, NetKind, PortDir, Process, ProcessKind, Stmt, UnaryOp, Value,
};
use std::collections::HashMap;

const KEYWORDS: &[&str] = &[
    "module",
    "endmodule",
    "input",
    "output",
    "inout",
    "wire",
    "reg",
    "assign",
    "always",
    "begin",
    "end",
    "if",
    "else",
    "case",
    "endcase",
    "default",
    "posedge",
    "negedge",
    "parameter",
    "localparam",
    "or",
    "integer",
    "initial",
    "generate",
    "endgenerate",
    "genvar",
    "function",
    "endfunction",
    "signed",
];

/// Parses one or more `module` definitions into a [`Design`].
///
/// # Errors
///
/// Returns a [`VerilogError`] with source position on any lexical,
/// syntactic or subset violation.
///
/// # Examples
///
/// ```
/// let d = hardsnap_verilog::parse_design(r#"
///     module blinky (input wire clk, output reg led);
///         always @(posedge clk) led <= ~led;
///     endmodule
/// "#)?;
/// assert!(d.module("blinky").is_some());
/// # Ok::<(), hardsnap_verilog::VerilogError>(())
/// ```
pub fn parse_design(src: &str) -> Result<Design, VerilogError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut design = Design::new();
    while !p.at_eof() {
        let module = p.parse_module()?;
        design
            .add_module(module)
            .map_err(|e| VerilogError::new(e.to_string(), p.here()))?;
    }
    Ok(design)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

/// Per-module parsing context.
struct ModCtx {
    module: Module,
    params: HashMap<String, u64>,
}

impl Parser {
    fn here(&self) -> Pos {
        self.tokens[self.pos.min(self.tokens.len() - 1)].pos
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, VerilogError> {
        Err(VerilogError::new(msg.into(), self.here()))
    }

    fn expect(&mut self, tok: Tok) -> Result<(), VerilogError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {tok}, found {}", self.peek()))
        }
    }

    fn eat(&mut self, tok: Tok) -> bool {
        if *self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), VerilogError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected keyword '{kw}', found {other}")),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn expect_ident(&mut self) -> Result<String, VerilogError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                if KEYWORDS.contains(&s.as_str()) {
                    self.err(format!("keyword '{s}' used as identifier"))
                } else {
                    self.bump();
                    Ok(s)
                }
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    // ---------------------------------------------------------------- module

    fn parse_module(&mut self) -> Result<Module, VerilogError> {
        self.expect_kw("module")?;
        let name = self.expect_ident()?;
        let mut ctx = ModCtx {
            module: Module::new(name),
            params: HashMap::new(),
        };

        // Optional parameter header: #(parameter A = 1, parameter B = 2)
        if self.eat(Tok::Hash) {
            self.expect(Tok::LParen)?;
            loop {
                self.expect_kw("parameter")?;
                self.parse_param_binding(&mut ctx)?;
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }

        // ANSI port list.
        self.expect(Tok::LParen)?;
        if !self.eat(Tok::RParen) {
            let mut dir = None;
            let mut kind = NetKind::Wire;
            let mut width = 1u32;
            loop {
                if self.peek_kw("input") {
                    self.bump();
                    dir = Some(PortDir::Input);
                    kind = NetKind::Wire;
                    width = 1;
                } else if self.peek_kw("output") {
                    self.bump();
                    dir = Some(PortDir::Output);
                    kind = NetKind::Wire;
                    width = 1;
                } else if self.peek_kw("inout") {
                    return self.err("inout ports are not supported by the subset");
                }
                if self.peek_kw("wire") {
                    self.bump();
                    kind = NetKind::Wire;
                } else if self.peek_kw("reg") {
                    self.bump();
                    kind = NetKind::Reg;
                }
                if matches!(self.peek(), Tok::LBracket) {
                    width = self.parse_range(&ctx)?;
                }
                let dir = match dir {
                    Some(d) => d,
                    None => return self.err("port is missing a direction (input/output)"),
                };
                let pname = self.expect_ident()?;
                ctx.module
                    .add_net(pname, width, kind, Some(dir))
                    .map_err(|e| VerilogError::new(e.to_string(), self.here()))?;
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }
        self.expect(Tok::Semi)?;

        // Body items.
        while !self.eat_kw("endmodule") {
            if self.at_eof() {
                return self.err("unexpected end of input inside module body");
            }
            self.parse_item(&mut ctx)?;
        }
        ctx.module.params = {
            let mut v: Vec<_> = ctx.params.into_iter().collect();
            v.sort();
            v
        };
        Ok(ctx.module)
    }

    fn parse_param_binding(&mut self, ctx: &mut ModCtx) -> Result<(), VerilogError> {
        let name = self.expect_ident()?;
        self.expect(Tok::Assign)?;
        let value = self.parse_const_expr(ctx)?;
        if ctx.params.insert(name.clone(), value.bits()).is_some() {
            return self.err(format!("duplicate parameter '{name}'"));
        }
        Ok(())
    }

    /// Parses `[msb:lsb]`; requires `lsb == 0`; returns the width.
    fn parse_range(&mut self, ctx: &ModCtx) -> Result<u32, VerilogError> {
        self.expect(Tok::LBracket)?;
        let msb = self.parse_const_expr(ctx)?.bits();
        self.expect(Tok::Colon)?;
        let lsb = self.parse_const_expr(ctx)?.bits();
        self.expect(Tok::RBracket)?;
        if lsb != 0 {
            return self.err(format!("vector range must end at 0, found [{msb}:{lsb}]"));
        }
        if msb >= 64 {
            return self.err(format!("vector msb {msb} exceeds the 63 limit"));
        }
        Ok(msb as u32 + 1)
    }

    // ----------------------------------------------------------------- items

    fn parse_item(&mut self, ctx: &mut ModCtx) -> Result<(), VerilogError> {
        if self.eat_kw("parameter") || self.eat_kw("localparam") {
            loop {
                self.parse_param_binding(ctx)?;
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::Semi)?;
        } else if self.peek_kw("wire") || self.peek_kw("reg") {
            self.parse_net_decl(ctx)?;
        } else if self.eat_kw("assign") {
            let lv = self.parse_lvalue(ctx)?;
            self.expect(Tok::Assign)?;
            let rhs = self.parse_expr(ctx)?;
            self.expect(Tok::Semi)?;
            ctx.module.assigns.push(ContAssign { lv, rhs });
        } else if self.eat_kw("always") {
            self.parse_always(ctx)?;
        } else if self.peek_kw("initial")
            || self.peek_kw("generate")
            || self.peek_kw("genvar")
            || self.peek_kw("integer")
            || self.peek_kw("function")
        {
            return self.err(format!(
                "{} is outside the supported synthesizable subset",
                self.peek()
            ));
        } else if matches!(self.peek(), Tok::Ident(_)) {
            self.parse_instance(ctx)?;
        } else {
            return self.err(format!("unexpected {} in module body", self.peek()));
        }
        Ok(())
    }

    fn parse_net_decl(&mut self, ctx: &mut ModCtx) -> Result<(), VerilogError> {
        let kind = if self.eat_kw("wire") {
            NetKind::Wire
        } else {
            self.expect_kw("reg")?;
            NetKind::Reg
        };
        if self.peek_kw("signed") {
            return self.err("signed nets are not supported by the subset");
        }
        let width = if matches!(self.peek(), Tok::LBracket) {
            self.parse_range(ctx)?
        } else {
            1
        };
        loop {
            let name = self.expect_ident()?;
            if matches!(self.peek(), Tok::LBracket) {
                // Memory: reg [W-1:0] name [0:D-1];
                if kind != NetKind::Reg {
                    return self.err("memories must be declared 'reg'");
                }
                self.expect(Tok::LBracket)?;
                let lo = self.parse_const_expr(ctx)?.bits();
                self.expect(Tok::Colon)?;
                let hi = self.parse_const_expr(ctx)?.bits();
                self.expect(Tok::RBracket)?;
                if lo != 0 {
                    return self.err("memory range must start at word 0");
                }
                if hi >= u32::MAX as u64 {
                    return self.err("memory depth out of range");
                }
                ctx.module
                    .add_memory(name, width, hi as u32 + 1)
                    .map_err(|e| VerilogError::new(e.to_string(), self.here()))?;
            } else {
                let id = ctx
                    .module
                    .add_net(name, width, kind, None)
                    .map_err(|e| VerilogError::new(e.to_string(), self.here()))?;
                // `wire x = expr;` initializer sugar.
                if self.eat(Tok::Assign) {
                    if kind != NetKind::Wire {
                        return self.err("reg initializers are not supported (no initial blocks)");
                    }
                    let rhs = self.parse_expr(ctx)?;
                    ctx.module.assigns.push(ContAssign {
                        lv: LValue::Net(id),
                        rhs,
                    });
                }
            }
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::Semi)?;
        Ok(())
    }

    fn parse_always(&mut self, ctx: &mut ModCtx) -> Result<(), VerilogError> {
        self.expect(Tok::At)?;
        let kind = if self.eat(Tok::Star) {
            ProcessKind::Comb
        } else {
            self.expect(Tok::LParen)?;
            if self.eat(Tok::Star) {
                self.expect(Tok::RParen)?;
                ProcessKind::Comb
            } else if self.peek_kw("posedge") || self.peek_kw("negedge") {
                let edge = if self.eat_kw("posedge") {
                    EdgeKind::Pos
                } else {
                    self.expect_kw("negedge")?;
                    EdgeKind::Neg
                };
                let clk_name = self.expect_ident()?;
                let clock = ctx.module.find_net(&clk_name).ok_or_else(|| {
                    VerilogError::new(format!("undeclared clock '{clk_name}'"), self.here())
                })?;
                if self.eat_kw("or") {
                    return self.err(
                        "multi-edge sensitivity (async reset) is not supported; \
                         use synchronous reset",
                    );
                }
                self.expect(Tok::RParen)?;
                ProcessKind::Clocked { clock, edge }
            } else {
                // Old-style explicit comb sensitivity list: @(a or b or c).
                loop {
                    let n = self.expect_ident()?;
                    if ctx.module.find_net(&n).is_none() {
                        return self.err(format!("undeclared net '{n}' in sensitivity list"));
                    }
                    if !self.eat_kw("or") && !self.eat(Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RParen)?;
                ProcessKind::Comb
            }
        };
        let body = self.parse_stmt_block(ctx)?;
        ctx.module.processes.push(Process { kind, body });
        Ok(())
    }

    /// Parses a statement and normalizes it to a Vec (begin/end unwrap).
    fn parse_stmt_block(&mut self, ctx: &mut ModCtx) -> Result<Vec<Stmt>, VerilogError> {
        if self.eat_kw("begin") {
            let mut out = Vec::new();
            while !self.eat_kw("end") {
                if self.at_eof() {
                    return self.err("unexpected end of input inside begin/end block");
                }
                out.extend(self.parse_stmt(ctx)?);
            }
            Ok(out)
        } else {
            self.parse_stmt(ctx)
        }
    }

    fn parse_stmt(&mut self, ctx: &mut ModCtx) -> Result<Vec<Stmt>, VerilogError> {
        if self.peek_kw("begin") {
            return self.parse_stmt_block(ctx);
        }
        if self.eat_kw("if") {
            self.expect(Tok::LParen)?;
            let cond = self.parse_expr(ctx)?;
            self.expect(Tok::RParen)?;
            let then_s = self.parse_stmt_block(ctx)?;
            let else_s = if self.eat_kw("else") {
                self.parse_stmt_block(ctx)?
            } else {
                Vec::new()
            };
            return Ok(vec![Stmt::If {
                cond,
                then_s,
                else_s,
            }]);
        }
        if self.eat_kw("case") {
            self.expect(Tok::LParen)?;
            let sel = self.parse_expr(ctx)?;
            self.expect(Tok::RParen)?;
            let sel_width = sel
                .width(&ctx.module)
                .map_err(|e| VerilogError::new(e.to_string(), self.here()))?;
            let mut arms = Vec::new();
            let mut default = Vec::new();
            let mut saw_default = false;
            while !self.eat_kw("endcase") {
                if self.at_eof() {
                    return self.err("unexpected end of input inside case");
                }
                if self.eat_kw("default") {
                    if saw_default {
                        return self.err("duplicate default arm in case");
                    }
                    saw_default = true;
                    self.eat(Tok::Colon);
                    default = self.parse_stmt_block(ctx)?;
                } else {
                    let mut labels = Vec::new();
                    loop {
                        let v = self.parse_const_expr(ctx)?;
                        if v.width() > sel_width && v.bits() >> sel_width != 0 {
                            return self.err(format!(
                                "case label {v} does not fit {sel_width}-bit selector"
                            ));
                        }
                        labels.push(v.resize(sel_width));
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::Colon)?;
                    let body = self.parse_stmt_block(ctx)?;
                    arms.push(CaseArm { labels, body });
                }
            }
            return Ok(vec![Stmt::Case { sel, arms, default }]);
        }
        // Assignment.
        let lv = self.parse_lvalue(ctx)?;
        let blocking = if self.eat(Tok::LtEq) {
            false
        } else if self.eat(Tok::Assign) {
            true
        } else {
            return self.err(format!(
                "expected '<=' or '=' after lvalue, found {}",
                self.peek()
            ));
        };
        let rhs = self.parse_expr(ctx)?;
        self.expect(Tok::Semi)?;
        Ok(vec![Stmt::Assign { lv, rhs, blocking }])
    }

    fn parse_lvalue(&mut self, ctx: &mut ModCtx) -> Result<LValue, VerilogError> {
        if matches!(self.peek(), Tok::LBrace) {
            return self.err("concatenation lvalues are not supported; split the assignment");
        }
        let name = self.expect_ident()?;
        if let Some(mem) = ctx.module.find_mem(&name) {
            self.expect(Tok::LBracket)?;
            let addr = self.parse_expr(ctx)?;
            self.expect(Tok::RBracket)?;
            return Ok(LValue::Mem { mem, addr });
        }
        let base = ctx.module.find_net(&name).ok_or_else(|| {
            VerilogError::new(format!("undeclared net '{name}' in lvalue"), self.here())
        })?;
        if self.eat(Tok::LBracket) {
            let first = self.parse_expr(ctx)?;
            if self.eat(Tok::Colon) {
                let hi = self.as_const(&first)?;
                let lo = self.parse_const_expr(ctx)?;
                self.expect(Tok::RBracket)?;
                return Ok(LValue::Slice {
                    base,
                    hi: hi.bits() as u32,
                    lo: lo.bits() as u32,
                });
            }
            self.expect(Tok::RBracket)?;
            return match &first {
                Expr::Const(v) => Ok(LValue::Slice {
                    base,
                    hi: v.bits() as u32,
                    lo: v.bits() as u32,
                }),
                _ => Ok(LValue::Index { base, index: first }),
            };
        }
        Ok(LValue::Net(base))
    }

    fn parse_instance(&mut self, ctx: &mut ModCtx) -> Result<(), VerilogError> {
        let module = self.expect_ident()?;
        if self.eat(Tok::Hash) {
            return self.err(format!(
                "parameter overrides on instance of '{module}' are not supported; \
                 specialize the module instead"
            ));
        }
        let name = self.expect_ident()?;
        self.expect(Tok::LParen)?;
        let mut conns = Vec::new();
        if !self.eat(Tok::RParen) {
            loop {
                self.expect(Tok::Dot)?;
                let port = self.expect_ident()?;
                self.expect(Tok::LParen)?;
                // Unconnected `.port()` is allowed for outputs only; the
                // elaborator rejects unconnected inputs.
                if !matches!(self.peek(), Tok::RParen) {
                    let e = self.parse_expr(ctx)?;
                    conns.push((port, e));
                }
                self.expect(Tok::RParen)?;
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }
        self.expect(Tok::Semi)?;
        ctx.module.instances.push(Instance {
            name,
            module,
            conns,
            params: vec![],
        });
        Ok(())
    }

    // ----------------------------------------------------------- expressions

    fn parse_const_expr(&mut self, ctx: &ModCtx) -> Result<Value, VerilogError> {
        let e = self.parse_expr_prec(ctx, 0)?;
        self.as_const(&e)
    }

    fn as_const(&self, e: &Expr) -> Result<Value, VerilogError> {
        match e {
            Expr::Const(v) => Ok(*v),
            _ => Err(VerilogError::new(
                "expected a constant expression".to_string(),
                self.here(),
            )),
        }
    }

    fn parse_expr(&mut self, ctx: &ModCtx) -> Result<Expr, VerilogError> {
        self.parse_expr_prec(ctx, 0)
    }

    /// Precedence-climbing core. Level 0 includes `?:`.
    fn parse_expr_prec(&mut self, ctx: &ModCtx, min_prec: u8) -> Result<Expr, VerilogError> {
        let mut lhs = self.parse_unary(ctx)?;
        loop {
            // Ternary, lowest precedence, right-associative.
            if min_prec == 0 && matches!(self.peek(), Tok::Question) {
                self.bump();
                let then_e = self.parse_expr_prec(ctx, 0)?;
                self.expect(Tok::Colon)?;
                let else_e = self.parse_expr_prec(ctx, 0)?;
                lhs = fold_cond(lhs, then_e, else_e);
                continue;
            }
            let (op, prec, divmod) = match self.peek() {
                Tok::PipePipe => (BinaryOp::LogicOr, 1, false),
                Tok::AmpAmp => (BinaryOp::LogicAnd, 2, false),
                Tok::Pipe => (BinaryOp::Or, 3, false),
                Tok::Caret => (BinaryOp::Xor, 4, false),
                Tok::Amp => (BinaryOp::And, 5, false),
                Tok::EqEq => (BinaryOp::Eq, 6, false),
                Tok::BangEq => (BinaryOp::Ne, 6, false),
                Tok::Lt => (BinaryOp::Lt, 7, false),
                Tok::LtEq => (BinaryOp::Le, 7, false),
                Tok::Gt => (BinaryOp::Gt, 7, false),
                Tok::GtEq => (BinaryOp::Ge, 7, false),
                Tok::Shl => (BinaryOp::Shl, 8, false),
                Tok::Shr => (BinaryOp::Shr, 8, false),
                Tok::Plus => (BinaryOp::Add, 9, false),
                Tok::Minus => (BinaryOp::Sub, 9, false),
                Tok::Star => (BinaryOp::Mul, 10, false),
                Tok::Slash => (BinaryOp::Mul, 10, true), // placeholder op
                Tok::Percent => (BinaryOp::Mul, 10, true),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let tok = self.bump();
            let rhs = self.parse_expr_prec(ctx, prec + 1)?;
            if divmod {
                // Division/modulo: constant expressions only.
                let a = self.as_const(&lhs)?;
                let b = self.as_const(&rhs)?;
                if b.bits() == 0 {
                    return self.err("division by zero in constant expression");
                }
                let v = if matches!(tok, Tok::Slash) {
                    a.bits() / b.bits()
                } else {
                    a.bits() % b.bits()
                };
                lhs = Expr::Const(Value::new(v, a.width().max(b.width())));
            } else {
                lhs = fold_binary(op, lhs, rhs);
            }
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self, ctx: &ModCtx) -> Result<Expr, VerilogError> {
        let op = match self.peek() {
            Tok::Tilde => Some(UnaryOp::Not),
            Tok::Bang => Some(UnaryOp::LogicNot),
            Tok::Minus => Some(UnaryOp::Neg),
            Tok::Amp => Some(UnaryOp::RedAnd),
            Tok::Pipe => Some(UnaryOp::RedOr),
            Tok::Caret => Some(UnaryOp::RedXor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let arg = self.parse_unary(ctx)?;
            return Ok(fold_unary(op, arg));
        }
        self.parse_primary(ctx)
    }

    fn parse_primary(&mut self, ctx: &ModCtx) -> Result<Expr, VerilogError> {
        match self.peek().clone() {
            Tok::Number { width, value } => {
                self.bump();
                let w = width.unwrap_or(if value >> 32 == 0 { 32 } else { 64 });
                Ok(Expr::Const(Value::new(value, w)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.parse_expr(ctx)?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::LBrace => {
                self.bump();
                let first = self.parse_expr(ctx)?;
                if matches!(self.peek(), Tok::LBrace) {
                    // Replication {N{expr}}.
                    let count = self.as_const(&first)?.bits();
                    self.expect(Tok::LBrace)?;
                    let inner = self.parse_expr(ctx)?;
                    self.expect(Tok::RBrace)?;
                    self.expect(Tok::RBrace)?;
                    if count == 0 || count > 64 {
                        return self.err(format!("replication count {count} out of range"));
                    }
                    return Ok(fold_concat(vec![Expr::Repeat {
                        count: count as u32,
                        arg: Box::new(inner),
                    }]));
                }
                let mut parts = vec![first];
                while self.eat(Tok::Comma) {
                    parts.push(self.parse_expr(ctx)?);
                }
                self.expect(Tok::RBrace)?;
                Ok(fold_concat(parts))
            }
            Tok::Ident(name) => {
                if KEYWORDS.contains(&name.as_str()) {
                    return self.err(format!("keyword '{name}' in expression"));
                }
                self.bump();
                if let Some(&v) = ctx.params.get(&name) {
                    let w = if v >> 32 == 0 { 32 } else { 64 };
                    return Ok(Expr::Const(Value::new(v, w)));
                }
                if let Some(mem) = ctx.module.find_mem(&name) {
                    self.expect(Tok::LBracket)?;
                    let addr = self.parse_expr(ctx)?;
                    self.expect(Tok::RBracket)?;
                    return Ok(Expr::MemRead {
                        mem,
                        addr: Box::new(addr),
                    });
                }
                let base = ctx.module.find_net(&name).ok_or_else(|| {
                    VerilogError::new(format!("undeclared identifier '{name}'"), self.here())
                })?;
                if self.eat(Tok::LBracket) {
                    let first = self.parse_expr(ctx)?;
                    if self.eat(Tok::Colon) {
                        let hi = self.as_const(&first)?.bits() as u32;
                        let lo = self.parse_const_expr(ctx)?.bits() as u32;
                        self.expect(Tok::RBracket)?;
                        return Ok(Expr::Slice { base, hi, lo });
                    }
                    self.expect(Tok::RBracket)?;
                    return match &first {
                        Expr::Const(v) => {
                            let b = v.bits() as u32;
                            Ok(Expr::Slice { base, hi: b, lo: b })
                        }
                        _ => Ok(Expr::Index {
                            base,
                            index: Box::new(first),
                        }),
                    };
                }
                Ok(Expr::Net(base))
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

// ---------------------------------------------------------- constant folding

/// Builds a binary expression, folding when both sides are constant
/// (using the exact simulator semantics, so folding never changes
/// behaviour).
fn fold_binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
    if let (Expr::Const(a), Expr::Const(b)) = (&lhs, &rhs) {
        return Expr::Const(eval_binary(op, *a, *b));
    }
    Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

fn fold_unary(op: UnaryOp, arg: Expr) -> Expr {
    if let Expr::Const(a) = &arg {
        return Expr::Const(eval_unary(op, *a));
    }
    Expr::Unary {
        op,
        arg: Box::new(arg),
    }
}

fn fold_cond(cond: Expr, then_e: Expr, else_e: Expr) -> Expr {
    if let Expr::Const(c) = &cond {
        return if c.is_true() { then_e } else { else_e };
    }
    Expr::Cond {
        cond: Box::new(cond),
        then_e: Box::new(then_e),
        else_e: Box::new(else_e),
    }
}

fn fold_concat(parts: Vec<Expr>) -> Expr {
    if parts.len() == 1 {
        if let Expr::Repeat { count, arg } = &parts[0] {
            if let Expr::Const(v) = arg.as_ref() {
                let mut acc = *v;
                for _ in 1..*count {
                    acc = acc.concat(*v);
                }
                return Expr::Const(acc);
            }
        }
        if matches!(parts[0], Expr::Const(_)) {
            return parts.into_iter().next().unwrap();
        }
    }
    if parts.iter().all(|p| matches!(p, Expr::Const(_))) {
        let mut it = parts.iter();
        let mut acc = match it.next().unwrap() {
            Expr::Const(v) => *v,
            _ => unreachable!(),
        };
        for p in it {
            if let Expr::Const(v) = p {
                acc = acc.concat(*v);
            }
        }
        return Expr::Const(acc);
    }
    Expr::Concat(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> Module {
        let d = parse_design(src).expect("parse failed");
        let m = d.iter().next().unwrap().clone();
        m
    }

    #[test]
    fn parses_counter() {
        let m = parse_one(
            r#"
            module counter (input wire clk, input wire rst, output reg [7:0] q);
                always @(posedge clk) begin
                    if (rst) q <= 8'd0;
                    else q <= q + 8'd1;
                end
            endmodule
            "#,
        );
        assert_eq!(m.name, "counter");
        assert_eq!(m.ports().count(), 3);
        assert_eq!(m.processes.len(), 1);
        assert_eq!(m.state_bits(), 8);
        hardsnap_rtl::check_module(&m).unwrap();
    }

    #[test]
    fn parses_parameters_and_folds() {
        let m = parse_one(
            r#"
            module p #(parameter WIDTH = 8, parameter DEPTH = 4) (input wire clk);
                localparam TOP = WIDTH * DEPTH - 1;
                wire [WIDTH-1:0] a;
                reg [31:0] mem [0:DEPTH-1];
                assign a = TOP;
            endmodule
            "#,
        );
        let a = m.find_net("a").unwrap();
        assert_eq!(m.net(a).width, 8);
        let mem = m.find_mem("mem").unwrap();
        assert_eq!(m.memory(mem).depth, 4);
        // TOP folded: 8*4-1 = 31.
        assert!(matches!(&m.assigns[0].rhs, Expr::Const(v) if v.bits() == 31));
    }

    #[test]
    fn parses_case_with_multi_labels_and_default() {
        let m = parse_one(
            r#"
            module c (input wire clk, input wire [1:0] s, output reg [3:0] y);
                always @(*) begin
                    case (s)
                        2'd0, 2'd1: y = 4'h1;
                        2'd2: y = 4'h2;
                        default: y = 4'hf;
                    endcase
                end
            endmodule
            "#,
        );
        match &m.processes[0].body[0] {
            Stmt::Case { arms, default, .. } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(arms[0].labels.len(), 2);
                assert_eq!(default.len(), 1);
            }
            other => panic!("expected case, got {other:?}"),
        }
    }

    #[test]
    fn precedence_matches_verilog() {
        // a | b & c parses as a | (b & c).
        let m = parse_one(
            r#"
            module e (input wire [3:0] a, input wire [3:0] b, input wire [3:0] c,
                      output wire [3:0] y);
                assign y = a | b & c;
            endmodule
            "#,
        );
        match &m.assigns[0].rhs {
            Expr::Binary {
                op: BinaryOp::Or,
                rhs,
                ..
            } => {
                assert!(matches!(
                    rhs.as_ref(),
                    Expr::Binary {
                        op: BinaryOp::And,
                        ..
                    }
                ));
            }
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn ternary_and_comparisons() {
        let m = parse_one(
            r#"
            module t (input wire [7:0] a, output wire [7:0] y);
                assign y = (a >= 8'd10) ? a - 8'd10 : a;
            endmodule
            "#,
        );
        assert!(matches!(&m.assigns[0].rhs, Expr::Cond { .. }));
    }

    #[test]
    fn replication_and_concat() {
        let m = parse_one(
            r#"
            module r (input wire [3:0] a, output wire [15:0] y);
                assign y = {4'hf, {2{a}}, 4'h0};
            endmodule
            "#,
        );
        let w = m.assigns[0].rhs.width(&m).unwrap();
        assert_eq!(w, 16);
    }

    #[test]
    fn constant_replication_folds() {
        let m = parse_one(
            r#"
            module r (output wire [7:0] y);
                assign y = {8{1'b1}};
            endmodule
            "#,
        );
        assert!(matches!(&m.assigns[0].rhs, Expr::Const(v) if v.bits() == 0xff && v.width() == 8));
    }

    #[test]
    fn memory_read_write() {
        let m = parse_one(
            r#"
            module m (input wire clk, input wire [3:0] addr, input wire [7:0] din,
                      input wire we, output wire [7:0] dout);
                reg [7:0] ram [0:15];
                assign dout = ram[addr];
                always @(posedge clk) if (we) ram[addr] <= din;
            endmodule
            "#,
        );
        assert!(matches!(&m.assigns[0].rhs, Expr::MemRead { .. }));
        assert_eq!(m.state_bits(), 128);
        hardsnap_rtl::check_module(&m).unwrap();
    }

    #[test]
    fn instance_with_named_ports() {
        let d = parse_design(
            r#"
            module leaf (input wire clk, input wire d, output reg q);
                always @(posedge clk) q <= d;
            endmodule
            module top (input wire clk, input wire d, output wire q);
                leaf u0 (.clk(clk), .d(d), .q(q));
            endmodule
            "#,
        )
        .unwrap();
        let flat = hardsnap_rtl::elaborate(&d, "top").unwrap();
        assert!(flat.find_net("u0.q").is_some());
    }

    #[test]
    fn undeclared_identifier_is_error_with_position() {
        let err = parse_design("module m (input wire clk);\n  assign nope = clk;\nendmodule")
            .unwrap_err();
        assert!(err.to_string().contains("undeclared"));
        assert!(err.to_string().contains("2:"), "position missing: {err}");
    }

    #[test]
    fn async_reset_is_rejected_with_guidance() {
        let err = parse_design(
            r#"
            module m (input wire clk, input wire rst, output reg q);
                always @(posedge clk or posedge rst) q <= 1'b0;
            endmodule
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("synchronous reset"));
    }

    #[test]
    fn division_only_in_const_exprs() {
        assert!(parse_design(
            "module m (input wire [7:0] a, output wire [7:0] y); assign y = a / 8'd2; endmodule",
        )
        .is_err());
        let m = parse_one("module m (output wire [7:0] y); assign y = 8'd6 / 8'd2; endmodule");
        assert!(matches!(&m.assigns[0].rhs, Expr::Const(v) if v.bits() == 3));
    }

    #[test]
    fn dynamic_bit_select() {
        let m = parse_one(
            r#"
            module b (input wire [7:0] a, input wire [2:0] i, output wire y);
                assign y = a[i];
            endmodule
            "#,
        );
        assert!(matches!(&m.assigns[0].rhs, Expr::Index { .. }));
    }

    #[test]
    fn old_style_sensitivity_list_is_comb() {
        let m = parse_one(
            r#"
            module s (input wire a, input wire b, output reg y);
                always @(a or b) y = a & b;
            endmodule
            "#,
        );
        assert!(matches!(m.processes[0].kind, ProcessKind::Comb));
    }

    #[test]
    fn keyword_as_identifier_is_error() {
        assert!(parse_design("module module (input wire clk); endmodule").is_err());
    }

    #[test]
    fn two_modules_in_one_source() {
        let d = parse_design(
            "module a (input wire clk); endmodule module b (input wire clk); endmodule",
        )
        .unwrap();
        assert_eq!(d.len(), 2);
    }
}
