//! # hardsnap-verilog
//!
//! Verilog-2005 frontend for the HardSnap reproduction: lexes and parses
//! a synthesizable subset into the [`hardsnap_rtl`] IR, and prints IR
//! back to Verilog. Together with `hardsnap-scan` this reproduces the
//! paper's RTL-level instrumentation toolchain (Fig. 3): parse → insert
//! scan chain → re-emit Verilog / hand to the simulator.
//!
//! ## Subset contract
//!
//! Supported: ANSI module headers, `parameter`/`localparam` (constant-
//! folded at parse time), `wire`/`reg` vectors up to 64 bits, memories
//! (`reg [W-1:0] m [0:D-1]`), continuous `assign`, `always @(posedge clk)`
//! / `@(negedge clk)` / `@(*)` / `@(a or b)`, `begin/end`, `if`/`else`,
//! `case` with multi-label arms and `default`, blocking and non-blocking
//! assignments, the full unsigned operator set, concatenation,
//! replication, constant and dynamic bit-selects, and named-port
//! instantiation.
//!
//! Not supported (rejected with a positioned diagnostic): 4-state
//! literals, signed arithmetic, async resets, `initial`, `generate`,
//! functions/tasks, delays, parameter overrides at instantiation sites.
//!
//! ## Example
//!
//! ```
//! let design = hardsnap_verilog::parse_design(r#"
//!     module gray (input wire clk, input wire rst, output reg [3:0] g);
//!         reg [3:0] bin;
//!         always @(posedge clk) begin
//!             if (rst) begin bin <= 4'd0; g <= 4'd0; end
//!             else begin bin <= bin + 4'd1; g <= (bin >> 1) ^ bin; end
//!         end
//!     endmodule
//! "#)?;
//! let m = design.module("gray").unwrap();
//! assert_eq!(m.state_bits(), 8);
//! let src = hardsnap_verilog::print_module(m);
//! assert!(src.starts_with("module gray"));
//! # Ok::<(), hardsnap_verilog::VerilogError>(())
//! ```

#![warn(missing_docs)]

pub mod genmod;
pub mod parser;
pub mod printer;
pub mod token;

pub use genmod::gen_module;
pub use parser::parse_design;
pub use printer::{expr_str, print_module};
pub use token::{lex, Pos, Spanned, Tok};

use std::error::Error;
use std::fmt;

/// A lexical or syntactic error with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerilogError {
    message: String,
    pos: Pos,
}

impl VerilogError {
    /// Creates an error at the given position.
    pub fn new(message: String, pos: Pos) -> Self {
        VerilogError { message, pos }
    }

    /// The diagnostic text (without position).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where the error occurred.
    pub fn pos(&self) -> Pos {
        self.pos
    }
}

impl fmt::Display for VerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl Error for VerilogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_carries_position() {
        let e = VerilogError::new("boom".into(), Pos { line: 3, col: 7 });
        assert_eq!(e.to_string(), "3:7: boom");
        assert_eq!(e.pos().line, 3);
        assert_eq!(e.message(), "boom");
    }
}
