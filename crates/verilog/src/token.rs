//! Lexer for the synthesizable Verilog-2005 subset.

use crate::VerilogError;
use std::fmt;

/// Source position (1-based line and column) for diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// A number literal: optional size, base and digits, e.g. `8'hff`.
    /// `width` is `None` for plain decimal literals (context gives 32).
    Number {
        /// Explicit bit width (`8` in `8'hff`), if given.
        width: Option<u32>,
        /// Parsed numeric value.
        value: u64,
    },
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `#`
    Hash,
    /// `@`
    At,
    /// `=`
    Assign,
    /// `<=` (non-blocking assign or less-equal; parser disambiguates)
    LtEq,
    /// `?`
    Question,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `&`
    Amp,
    /// `&&`
    AmpAmp,
    /// `|`
    Pipe,
    /// `||`
    PipePipe,
    /// `^`
    Caret,
    /// `==`
    EqEq,
    /// `!=`
    BangEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier '{s}'"),
            Tok::Number { value, .. } => write!(f, "number {value}"),
            Tok::Eof => write!(f, "end of input"),
            other => {
                let s = match other {
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::Semi => ";",
                    Tok::Comma => ",",
                    Tok::Colon => ":",
                    Tok::Dot => ".",
                    Tok::Hash => "#",
                    Tok::At => "@",
                    Tok::Assign => "=",
                    Tok::LtEq => "<=",
                    Tok::Question => "?",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    Tok::Tilde => "~",
                    Tok::Bang => "!",
                    Tok::Amp => "&",
                    Tok::AmpAmp => "&&",
                    Tok::Pipe => "|",
                    Tok::PipePipe => "||",
                    Tok::Caret => "^",
                    Tok::EqEq => "==",
                    Tok::BangEq => "!=",
                    Tok::Lt => "<",
                    Tok::Gt => ">",
                    Tok::GtEq => ">=",
                    Tok::Shl => "<<",
                    Tok::Shr => ">>",
                    _ => unreachable!(),
                };
                write!(f, "'{s}'")
            }
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenizes Verilog source.
///
/// Handles `//` and `/* */` comments, underscores in digit strings, and
/// sized literals in bases `b`, `o`, `d`, `h`.
///
/// # Errors
///
/// Returns [`VerilogError`] on unknown characters, malformed numbers,
/// unterminated block comments, or literals exceeding 64 bits.
pub fn lex(src: &str) -> Result<Vec<Spanned>, VerilogError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! err {
        ($($a:tt)*) => {
            return Err(VerilogError::new(format!($($a)*), Pos { line, col }))
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = Pos { line, col };
        let mut advance = |i: &mut usize, n: usize| {
            *i += n;
            col += n as u32;
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => advance(&mut i, 1),
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        err!("unterminated block comment");
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                        i += 1;
                    } else {
                        i += 1;
                        col += 1;
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' || b == '$' {
                        i += 1;
                        col += 1;
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Ident(src[start..i].to_string()),
                    pos,
                });
            }
            c if c.is_ascii_digit() || c == '\'' => {
                // Either: [size]'[base]digits  or plain decimal.
                let mut width: Option<u32> = None;
                if c.is_ascii_digit() {
                    let start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'_')
                    {
                        i += 1;
                        col += 1;
                    }
                    let digits: String = src[start..i].chars().filter(|&d| d != '_').collect();
                    let v: u64 = match digits.parse() {
                        Ok(v) => v,
                        Err(_) => err!("decimal literal '{digits}' out of range"),
                    };
                    if i < bytes.len() && bytes[i] == b'\'' {
                        if v == 0 || v > 64 {
                            err!("literal size {v} out of the supported 1..=64 range");
                        }
                        width = Some(v as u32);
                    } else {
                        out.push(Spanned {
                            tok: Tok::Number {
                                width: None,
                                value: v,
                            },
                            pos,
                        });
                        continue;
                    }
                }
                // We are at the tick.
                i += 1;
                col += 1;
                if i >= bytes.len() {
                    err!("truncated based literal");
                }
                let base_c = (bytes[i] as char).to_ascii_lowercase();
                let radix = match base_c {
                    'b' => 2,
                    'o' => 8,
                    'd' => 10,
                    'h' => 16,
                    other => err!("unknown literal base '{other}'"),
                };
                i += 1;
                col += 1;
                let start = i;
                while i < bytes.len() {
                    let b = (bytes[i] as char).to_ascii_lowercase();
                    if b.is_ascii_alphanumeric() || b == '_' {
                        i += 1;
                        col += 1;
                    } else {
                        break;
                    }
                }
                let digits: String = src[start..i].chars().filter(|&d| d != '_').collect();
                if digits.is_empty() {
                    err!("based literal has no digits");
                }
                let value = match u64::from_str_radix(&digits, radix) {
                    Ok(v) => v,
                    Err(_) => err!("invalid digits '{digits}' for base {radix} or value > 64 bits"),
                };
                if let Some(w) = width {
                    if w < 64 && value >> w != 0 {
                        err!("literal value {value:#x} does not fit in {w} bits");
                    }
                }
                out.push(Spanned {
                    tok: Tok::Number { width, value },
                    pos,
                });
            }
            _ => {
                // Operators and punctuation (longest match first).
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let (tok, len) = match two {
                    "&&" => (Tok::AmpAmp, 2),
                    "||" => (Tok::PipePipe, 2),
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::BangEq, 2),
                    "<=" => (Tok::LtEq, 2),
                    ">=" => (Tok::GtEq, 2),
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    _ => {
                        let t = match c {
                            '(' => Tok::LParen,
                            ')' => Tok::RParen,
                            '[' => Tok::LBracket,
                            ']' => Tok::RBracket,
                            '{' => Tok::LBrace,
                            '}' => Tok::RBrace,
                            ';' => Tok::Semi,
                            ',' => Tok::Comma,
                            ':' => Tok::Colon,
                            '.' => Tok::Dot,
                            '#' => Tok::Hash,
                            '@' => Tok::At,
                            '=' => Tok::Assign,
                            '?' => Tok::Question,
                            '+' => Tok::Plus,
                            '-' => Tok::Minus,
                            '*' => Tok::Star,
                            '/' => Tok::Slash,
                            '%' => Tok::Percent,
                            '~' => Tok::Tilde,
                            '!' => Tok::Bang,
                            '&' => Tok::Amp,
                            '|' => Tok::Pipe,
                            '^' => Tok::Caret,
                            '<' => Tok::Lt,
                            '>' => Tok::Gt,
                            other => err!("unexpected character '{other}'"),
                        };
                        (t, 1)
                    }
                };
                out.push(Spanned { tok, pos });
                i += len;
                col += len as u32;
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_identifiers_and_numbers() {
        assert_eq!(
            toks("foo 42 8'hff"),
            vec![
                Tok::Ident("foo".into()),
                Tok::Number {
                    width: None,
                    value: 42
                },
                Tok::Number {
                    width: Some(8),
                    value: 0xff
                },
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_all_bases_and_underscores() {
        assert_eq!(
            toks("4'b1_010 8'o17 16'd1_000 32'hdead_beef"),
            vec![
                Tok::Number {
                    width: Some(4),
                    value: 0b1010
                },
                Tok::Number {
                    width: Some(8),
                    value: 0o17
                },
                Tok::Number {
                    width: Some(16),
                    value: 1000
                },
                Tok::Number {
                    width: Some(32),
                    value: 0xdead_beef
                },
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // line comment\n /* block\n comment */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn two_char_operators_win_over_one_char() {
        assert_eq!(
            toks("a <= b == c << d"),
            vec![
                Tok::Ident("a".into()),
                Tok::LtEq,
                Tok::Ident("b".into()),
                Tok::EqEq,
                Tok::Ident("c".into()),
                Tok::Shl,
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn literal_too_wide_for_size_is_error() {
        assert!(lex("4'hff").is_err());
        assert!(lex("1'b0").is_ok());
    }

    #[test]
    fn bad_size_is_error() {
        assert!(lex("0'h0").is_err());
        assert!(lex("65'h0").is_err());
    }

    #[test]
    fn position_tracking_spans_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn unknown_character_is_error() {
        assert!(lex("a ` b").is_err());
    }
}
