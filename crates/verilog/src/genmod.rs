//! Random synthesizable-subset module generator ("fuzz modules").
//!
//! Produces flat [`Module`]s that pass [`hardsnap_rtl::check_module`]
//! by construction, covering the whole simulated subset: continuous
//! assigns over acyclic wire chains, one clocked process with
//! non-blocking (and occasional blocking) assigns to full nets, slices,
//! dynamic bit indices and a memory, plus an `always @(*)` process with
//! `if`/`case` control flow. Expressions draw from every [`Expr`]
//! variant and operator.
//!
//! The generator exists for differential testing: two simulator
//! backends fed the same generated module and the same stimulus must
//! agree bit-for-bit on every net, memory word and snapshot image. It
//! is deterministic — the same [`Rng`] seed yields the same module.
//!
//! Acyclicity is by construction: each wire's continuous assign reads
//! only inputs, registers and *earlier-declared* wires, and the final
//! combinational process (which may read any wire) drives a register
//! nothing combinational reads.

use hardsnap_rtl::{
    BinaryOp, CaseArm, ContAssign, EdgeKind, Expr, LValue, MemId, Module, NetId, NetKind, PortDir,
    Process, ProcessKind, Stmt, UnaryOp, Value,
};
use hardsnap_util::Rng;

/// Generates a random flat module guaranteed to pass
/// [`hardsnap_rtl::check_module`] and simulator construction.
pub fn gen_module(rng: &mut Rng, name: &str) -> Module {
    let mut m = Module::new(name);
    m.add_net("clk", 1, NetKind::Wire, Some(PortDir::Input))
        .unwrap();
    let rst = m
        .add_net("rst", 1, NetKind::Wire, Some(PortDir::Input))
        .unwrap();

    // Inputs.
    let n_inputs = rng.gen_range(1u32..=4);
    let mut pool: Vec<(NetId, u32)> = vec![(rst, 1)];
    for i in 0..n_inputs {
        let w = rng.gen_range(1u32..=32);
        let id = m
            .add_net(format!("in{i}"), w, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        pool.push((id, w));
    }

    // Registers (all owned by the single clocked process below).
    let n_regs = rng.gen_range(1u32..=4);
    let mut regs: Vec<(NetId, u32)> = Vec::new();
    for i in 0..n_regs {
        let w = rng.gen_range(1u32..=32);
        let dir = if rng.gen_bool(0.5) {
            Some(PortDir::Output)
        } else {
            None
        };
        let id = m.add_net(format!("r{i}"), w, NetKind::Reg, dir).unwrap();
        regs.push((id, w));
        pool.push((id, w));
    }

    // One memory, written only by the clocked process.
    let mem = if rng.gen_bool(0.7) {
        let w = rng.gen_range(1u32..=32);
        let depth = rng.gen_range(2u32..=16);
        Some((m.add_memory("ram", w, depth).unwrap(), w))
    } else {
        None
    };

    // Wires: one continuous assign each, reading only earlier nets.
    let n_wires = rng.gen_range(0u32..=5);
    for i in 0..n_wires {
        let w = rng.gen_range(1u32..=32);
        let dir = if rng.gen_bool(0.3) {
            Some(PortDir::Output)
        } else {
            None
        };
        let id = m.add_net(format!("w{i}"), w, NetKind::Wire, dir).unwrap();
        let rhs = {
            let mut g = ExprGen {
                rng,
                pool: &pool,
                mem,
            };
            g.expr(3).0
        };
        m.assigns.push(ContAssign {
            lv: LValue::Net(id),
            rhs,
        });
        pool.push((id, w));
    }

    // The clocked process: writes every register and the memory.
    let clk = m.find_net("clk").unwrap();
    let body = {
        let mut g = StmtGen {
            rng,
            pool: &pool,
            mem,
            regs: &regs,
        };
        g.block(2)
    };
    m.processes.push(Process {
        kind: ProcessKind::Clocked {
            clock: clk,
            edge: EdgeKind::Pos,
        },
        body,
    });

    // Optionally one comb process driving a dedicated register that no
    // combinational unit reads (keeps the fabric acyclic).
    if rng.gen_bool(0.6) {
        let w = rng.gen_range(1u32..=32);
        let cw = m.add_net("comb_out", w, NetKind::Reg, None).unwrap();
        let mut g = StmtGen {
            rng,
            pool: &pool,
            mem,
            regs: &[(cw, w)],
        };
        let body = g.comb_block(2);
        m.processes.push(Process {
            kind: ProcessKind::Comb,
            body,
        });
    }

    debug_assert!(hardsnap_rtl::check_module(&m).is_ok());
    m
}

/// Bottom-up expression generator; every returned expression
/// width-checks against the pool it was built from.
struct ExprGen<'a> {
    rng: &'a mut Rng,
    pool: &'a [(NetId, u32)],
    mem: Option<(MemId, u32)>,
}

impl ExprGen<'_> {
    /// Returns a random expression and its static width.
    fn expr(&mut self, depth: u32) -> (Expr, u32) {
        if depth == 0 || self.rng.gen_bool(0.3) {
            return self.leaf();
        }
        match self.rng.gen_range(0u32..8) {
            0 => {
                let (arg, w) = self.expr(depth - 1);
                let op = *self
                    .rng
                    .choose(&[
                        UnaryOp::Not,
                        UnaryOp::Neg,
                        UnaryOp::LogicNot,
                        UnaryOp::RedAnd,
                        UnaryOp::RedOr,
                        UnaryOp::RedXor,
                    ])
                    .unwrap();
                let w = match op {
                    UnaryOp::Not | UnaryOp::Neg => w,
                    _ => 1,
                };
                (
                    Expr::Unary {
                        op,
                        arg: Box::new(arg),
                    },
                    w,
                )
            }
            1 | 2 | 3 => {
                let (lhs, wl) = self.expr(depth - 1);
                let (rhs, wr) = self.expr(depth - 1);
                let op = *self
                    .rng
                    .choose(&[
                        BinaryOp::Add,
                        BinaryOp::Sub,
                        BinaryOp::Mul,
                        BinaryOp::And,
                        BinaryOp::Or,
                        BinaryOp::Xor,
                        BinaryOp::Shl,
                        BinaryOp::Shr,
                        BinaryOp::Eq,
                        BinaryOp::Ne,
                        BinaryOp::Lt,
                        BinaryOp::Le,
                        BinaryOp::Gt,
                        BinaryOp::Ge,
                        BinaryOp::LogicAnd,
                        BinaryOp::LogicOr,
                    ])
                    .unwrap();
                let w = if op.is_boolean() {
                    1
                } else if matches!(op, BinaryOp::Shl | BinaryOp::Shr) {
                    wl
                } else {
                    wl.max(wr)
                };
                (
                    Expr::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                    w,
                )
            }
            4 => {
                let (cond, _) = self.expr(depth - 1);
                let (t, wt) = self.expr(depth - 1);
                let (f, wf) = self.expr(depth - 1);
                (
                    Expr::Cond {
                        cond: Box::new(cond),
                        then_e: Box::new(t),
                        else_e: Box::new(f),
                    },
                    wt.max(wf),
                )
            }
            5 => {
                // Concatenation, keeping the total width within 64.
                let (a, wa) = self.expr(depth - 1);
                let (b, wb) = self.expr(depth - 1);
                if wa + wb <= 64 {
                    (Expr::Concat(vec![a, b]), wa + wb)
                } else {
                    (a, wa)
                }
            }
            6 => {
                let (arg, w) = self.expr(depth - 1);
                let max_count = 64 / w;
                if max_count >= 2 && self.rng.gen_bool(0.8) {
                    let count = self.rng.gen_range(2u32..=max_count.min(4));
                    (
                        Expr::Repeat {
                            count,
                            arg: Box::new(arg),
                        },
                        count * w,
                    )
                } else {
                    (arg, w)
                }
            }
            _ => {
                let &(base, _) = self.rng.choose(self.pool).unwrap();
                let (index, _) = self.expr(depth - 1);
                (
                    Expr::Index {
                        base,
                        index: Box::new(index),
                    },
                    1,
                )
            }
        }
    }

    fn leaf(&mut self) -> (Expr, u32) {
        match self.rng.gen_range(0u32..5) {
            0 => {
                let w = self.rng.gen_range(1u32..=16);
                let v = Value::new(self.rng.next_u64(), w);
                (Expr::Const(v), w)
            }
            1 => {
                let &(base, w) = self.rng.choose(self.pool).unwrap();
                if w > 1 && self.rng.gen_bool(0.4) {
                    let lo = self.rng.gen_range(0u32..w);
                    let hi = self.rng.gen_range(lo..w);
                    (Expr::Slice { base, hi, lo }, hi - lo + 1)
                } else {
                    (Expr::Net(base), w)
                }
            }
            2 if self.mem.is_some() => {
                let (mem, w) = self.mem.unwrap();
                let &(a, _) = self.rng.choose(self.pool).unwrap();
                (
                    Expr::MemRead {
                        mem,
                        addr: Box::new(Expr::Net(a)),
                    },
                    w,
                )
            }
            _ => {
                let &(base, w) = self.rng.choose(self.pool).unwrap();
                (Expr::Net(base), w)
            }
        }
    }
}

/// Statement generator for process bodies. `regs` is the set of nets
/// this process owns (writes); reads come from `pool`.
struct StmtGen<'a> {
    rng: &'a mut Rng,
    pool: &'a [(NetId, u32)],
    mem: Option<(MemId, u32)>,
    regs: &'a [(NetId, u32)],
}

impl StmtGen<'_> {
    /// A clocked-process block: NBA assigns (occasionally blocking, a
    /// lint the checker permits) with `if`/`case` structure.
    fn block(&mut self, depth: u32) -> Vec<Stmt> {
        let n = self.rng.gen_range(1u32..=3);
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(self.stmt(depth, true));
        }
        out
    }

    /// A combinational-process block: all assigns blocking.
    fn comb_block(&mut self, depth: u32) -> Vec<Stmt> {
        let n = self.rng.gen_range(1u32..=2);
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(self.stmt(depth, false));
        }
        out
    }

    fn stmt(&mut self, depth: u32, clocked: bool) -> Stmt {
        let choice = if depth == 0 {
            0
        } else {
            self.rng.gen_range(0u32..4)
        };
        match choice {
            1 => {
                let mut g = ExprGen {
                    rng: self.rng,
                    pool: self.pool,
                    mem: self.mem,
                };
                let (cond, _) = g.expr(2);
                let then_s = self.block_inner(depth - 1, clocked);
                let else_s = if self.rng.gen_bool(0.5) {
                    self.block_inner(depth - 1, clocked)
                } else {
                    Vec::new()
                };
                Stmt::If {
                    cond,
                    then_s,
                    else_s,
                }
            }
            2 => {
                let (sel, sw) = {
                    let mut g = ExprGen {
                        rng: self.rng,
                        pool: self.pool,
                        mem: self.mem,
                    };
                    g.expr(2)
                };
                let n_arms = self.rng.gen_range(1u32..=3);
                let mut arms = Vec::new();
                for _ in 0..n_arms {
                    let n_labels = self.rng.gen_range(1u32..=2);
                    let labels = (0..n_labels)
                        .map(|_| Value::new(self.rng.next_u64(), sw))
                        .collect();
                    arms.push(CaseArm {
                        labels,
                        body: self.block_inner(depth - 1, clocked),
                    });
                }
                let default = if self.rng.gen_bool(0.7) {
                    self.block_inner(depth - 1, clocked)
                } else {
                    Vec::new()
                };
                Stmt::Case { sel, arms, default }
            }
            _ => self.assign(clocked),
        }
    }

    fn block_inner(&mut self, depth: u32, clocked: bool) -> Vec<Stmt> {
        let n = self.rng.gen_range(1u32..=2);
        (0..n).map(|_| self.stmt(depth, clocked)).collect()
    }

    fn assign(&mut self, clocked: bool) -> Stmt {
        // Blocking in a clocked process is a permitted lint; generate it
        // sometimes to cover sequential-within-edge semantics.
        let blocking = if clocked {
            self.rng.gen_bool(0.15)
        } else {
            true
        };
        let mem_write = clocked && self.mem.is_some() && self.rng.gen_bool(0.25);
        let (lv, rhs) = if mem_write {
            let (mem, _) = self.mem.unwrap();
            let mut g = ExprGen {
                rng: self.rng,
                pool: self.pool,
                mem: self.mem,
            };
            let (addr, _) = g.expr(1);
            let (rhs, _) = g.expr(2);
            (LValue::Mem { mem, addr }, rhs)
        } else {
            let &(base, w) = self.rng.choose(self.regs).unwrap();
            let lv = match self.rng.gen_range(0u32..4) {
                0 if w > 1 => {
                    let lo = self.rng.gen_range(0u32..w);
                    let hi = self.rng.gen_range(lo..w);
                    LValue::Slice { base, hi, lo }
                }
                1 => {
                    let mut g = ExprGen {
                        rng: self.rng,
                        pool: self.pool,
                        mem: self.mem,
                    };
                    let (index, _) = g.expr(1);
                    LValue::Index { base, index }
                }
                _ => LValue::Net(base),
            };
            let mut g = ExprGen {
                rng: self.rng,
                pool: self.pool,
                mem: self.mem,
            };
            let (rhs, _) = g.expr(2);
            (lv, rhs)
        };
        Stmt::Assign { lv, rhs, blocking }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_modules_pass_check_and_are_deterministic() {
        for seed in 0..64u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let m = gen_module(&mut rng, "fuzz");
            hardsnap_rtl::check_module(&m).expect("generated module must check");
            let mut rng2 = Rng::seed_from_u64(seed);
            let m2 = gen_module(&mut rng2, "fuzz");
            assert_eq!(m.nets.len(), m2.nets.len());
            assert_eq!(m.assigns.len(), m2.assigns.len());
            assert_eq!(m.processes.len(), m2.processes.len());
        }
    }

    #[test]
    fn generated_modules_roundtrip_through_the_printer() {
        for seed in 0..16u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let m = gen_module(&mut rng, "fuzz");
            let src = crate::print_module(&m);
            let d = crate::parse_design(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: printed module must parse: {e}\n{src}"));
            assert!(d.module("fuzz").is_some());
        }
    }
}
