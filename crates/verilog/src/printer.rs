//! Verilog pretty-printer: emits IR modules back as Verilog source.
//!
//! Used by the scan-chain pass to export instrumented peripherals (the
//! paper's toolchain hands instrumented RTL to the FPGA flow, Fig. 3 B.1)
//! and by round-trip tests of the frontend.
//!
//! Hierarchical names produced by elaboration contain `.`; they are
//! mangled to `__` so the output is always lexically valid Verilog.

use hardsnap_rtl::{CaseArm, EdgeKind, Expr, LValue, Module, NetKind, PortDir, ProcessKind, Stmt};
use std::fmt::Write;

/// Renders `module` as Verilog source.
///
/// The output parses back (via [`crate::parse_design`]) to a module with
/// identical structure up to net-name mangling, which the round-trip
/// tests in this crate verify.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let w = &mut out;

    // Header.
    let ports: Vec<_> = module.ports().collect();
    writeln!(w, "module {} (", mangle(&module.name)).unwrap();
    for (i, (_, net)) in ports.iter().enumerate() {
        let dir = match net.port.unwrap() {
            PortDir::Input => "input",
            PortDir::Output => "output",
        };
        let kind = match net.kind {
            NetKind::Wire => "wire",
            NetKind::Reg => "reg",
        };
        let range = range_str(net.width);
        let comma = if i + 1 == ports.len() { "" } else { "," };
        writeln!(w, "    {dir} {kind} {range}{}{comma}", mangle(&net.name)).unwrap();
    }
    writeln!(w, ");").unwrap();

    // Declarations.
    for (_, net) in module.iter_nets() {
        if net.port.is_some() {
            continue;
        }
        let kind = match net.kind {
            NetKind::Wire => "wire",
            NetKind::Reg => "reg",
        };
        writeln!(
            w,
            "    {kind} {}{};",
            range_str(net.width),
            mangle(&net.name)
        )
        .unwrap();
    }
    for (_, mem) in module.iter_mems() {
        writeln!(
            w,
            "    reg {}{} [0:{}];",
            range_str(mem.width),
            mangle(&mem.name),
            mem.depth - 1
        )
        .unwrap();
    }

    // Continuous assigns.
    for a in &module.assigns {
        writeln!(
            w,
            "    assign {} = {};",
            lvalue_str(module, &a.lv),
            expr_str(module, &a.rhs)
        )
        .unwrap();
    }

    // Processes.
    for p in &module.processes {
        match &p.kind {
            ProcessKind::Clocked { clock, edge } => {
                let e = match edge {
                    EdgeKind::Pos => "posedge",
                    EdgeKind::Neg => "negedge",
                };
                writeln!(
                    w,
                    "    always @({e} {}) begin",
                    mangle(&module.net(*clock).name)
                )
                .unwrap();
            }
            ProcessKind::Comb => writeln!(w, "    always @(*) begin").unwrap(),
        }
        for s in &p.body {
            print_stmt(w, module, s, 2);
        }
        writeln!(w, "    end").unwrap();
    }

    // Instances.
    for inst in &module.instances {
        writeln!(w, "    {} {} (", mangle(&inst.module), mangle(&inst.name)).unwrap();
        for (i, (port, e)) in inst.conns.iter().enumerate() {
            let comma = if i + 1 == inst.conns.len() { "" } else { "," };
            writeln!(
                w,
                "        .{}({}){comma}",
                mangle(port),
                expr_str(module, e)
            )
            .unwrap();
        }
        writeln!(w, "    );").unwrap();
    }

    writeln!(w, "endmodule").unwrap();
    out
}

fn mangle(name: &str) -> String {
    name.replace('.', "__")
}

fn range_str(width: u32) -> String {
    if width == 1 {
        String::new()
    } else {
        format!("[{}:0] ", width - 1)
    }
}

fn indent(w: &mut String, level: usize) {
    for _ in 0..level {
        w.push_str("    ");
    }
}

fn print_stmt(w: &mut String, m: &Module, s: &Stmt, level: usize) {
    match s {
        Stmt::Assign { lv, rhs, blocking } => {
            indent(w, level);
            let op = if *blocking { "=" } else { "<=" };
            writeln!(w, "{} {op} {};", lvalue_str(m, lv), expr_str(m, rhs)).unwrap();
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
        } => {
            indent(w, level);
            writeln!(w, "if ({}) begin", expr_str(m, cond)).unwrap();
            for s in then_s {
                print_stmt(w, m, s, level + 1);
            }
            indent(w, level);
            if else_s.is_empty() {
                writeln!(w, "end").unwrap();
            } else {
                writeln!(w, "end else begin").unwrap();
                for s in else_s {
                    print_stmt(w, m, s, level + 1);
                }
                indent(w, level);
                writeln!(w, "end").unwrap();
            }
        }
        Stmt::Case { sel, arms, default } => {
            indent(w, level);
            writeln!(w, "case ({})", expr_str(m, sel)).unwrap();
            for CaseArm { labels, body } in arms {
                indent(w, level + 1);
                let labels: Vec<String> = labels
                    .iter()
                    .map(|v| format!("{}'h{:x}", v.width(), v.bits()))
                    .collect();
                writeln!(w, "{}: begin", labels.join(", ")).unwrap();
                for s in body {
                    print_stmt(w, m, s, level + 2);
                }
                indent(w, level + 1);
                writeln!(w, "end").unwrap();
            }
            indent(w, level + 1);
            writeln!(w, "default: begin").unwrap();
            for s in default {
                print_stmt(w, m, s, level + 2);
            }
            indent(w, level + 1);
            writeln!(w, "end").unwrap();
            indent(w, level);
            writeln!(w, "endcase").unwrap();
        }
    }
}

fn lvalue_str(m: &Module, lv: &LValue) -> String {
    match lv {
        LValue::Net(n) => mangle(&m.net(*n).name),
        LValue::Slice { base, hi, lo } => {
            if hi == lo {
                format!("{}[{hi}]", mangle(&m.net(*base).name))
            } else {
                format!("{}[{hi}:{lo}]", mangle(&m.net(*base).name))
            }
        }
        LValue::Index { base, index } => {
            format!("{}[{}]", mangle(&m.net(*base).name), expr_str(m, index))
        }
        LValue::Mem { mem, addr } => {
            format!("{}[{}]", mangle(&m.memory(*mem).name), expr_str(m, addr))
        }
    }
}

/// Renders an expression; parenthesizes conservatively so precedence is
/// never ambiguous.
pub fn expr_str(m: &Module, e: &Expr) -> String {
    match e {
        Expr::Const(v) => format!("{}'h{:x}", v.width(), v.bits()),
        Expr::Net(n) => mangle(&m.net(*n).name),
        Expr::Slice { base, hi, lo } => {
            if hi == lo {
                format!("{}[{hi}]", mangle(&m.net(*base).name))
            } else {
                format!("{}[{hi}:{lo}]", mangle(&m.net(*base).name))
            }
        }
        Expr::Index { base, index } => {
            format!("{}[{}]", mangle(&m.net(*base).name), expr_str(m, index))
        }
        Expr::Unary { op, arg } => format!("({op}{})", expr_str(m, arg)),
        Expr::Binary { op, lhs, rhs } => {
            format!("({} {op} {})", expr_str(m, lhs), expr_str(m, rhs))
        }
        Expr::Cond {
            cond,
            then_e,
            else_e,
        } => format!(
            "({} ? {} : {})",
            expr_str(m, cond),
            expr_str(m, then_e),
            expr_str(m, else_e)
        ),
        Expr::Concat(parts) => {
            let inner: Vec<String> = parts.iter().map(|p| expr_str(m, p)).collect();
            format!("{{{}}}", inner.join(", "))
        }
        Expr::Repeat { count, arg } => format!("{{{count}{{{}}}}}", expr_str(m, arg)),
        Expr::MemRead { mem, addr } => {
            format!("{}[{}]", mangle(&m.memory(*mem).name), expr_str(m, addr))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_design;

    const COUNTER: &str = r#"
        module counter (input wire clk, input wire rst, output reg [7:0] q);
            wire [7:0] next;
            assign next = q + 8'd1;
            always @(posedge clk) begin
                if (rst) q <= 8'd0;
                else q <= next;
            end
        endmodule
    "#;

    #[test]
    fn printed_module_reparses() {
        let d = parse_design(COUNTER).unwrap();
        let m = d.module("counter").unwrap();
        let src = print_module(m);
        let d2 = parse_design(&src).unwrap();
        let m2 = d2.module("counter").unwrap();
        assert_eq!(m2.nets.len(), m.nets.len());
        assert_eq!(m2.processes.len(), m.processes.len());
        assert_eq!(m2.assigns.len(), m.assigns.len());
        assert_eq!(m2.state_bits(), m.state_bits());
    }

    #[test]
    fn roundtrip_preserves_structure_exactly() {
        let d = parse_design(COUNTER).unwrap();
        let m = d.module("counter").unwrap();
        let src1 = print_module(m);
        let d2 = parse_design(&src1).unwrap();
        let src2 = print_module(d2.module("counter").unwrap());
        assert_eq!(src1, src2, "printer must be a fixed point of parse∘print");
    }

    #[test]
    fn dotted_names_are_mangled() {
        let d = parse_design(
            r#"
            module leaf (input wire clk, output reg q);
                always @(posedge clk) q <= ~q;
            endmodule
            module top (input wire clk, output wire q);
                leaf u0 (.clk(clk), .q(q));
            endmodule
            "#,
        )
        .unwrap();
        let flat = hardsnap_rtl::elaborate(&d, "top").unwrap();
        let src = print_module(&flat);
        assert!(src.contains("u0__q"));
        assert!(!src.contains("u0.q"));
        // And the mangled output reparses.
        parse_design(&src).unwrap();
    }

    #[test]
    fn case_and_memory_print_and_reparse() {
        let d = parse_design(
            r#"
            module m (input wire clk, input wire [1:0] s, input wire [7:0] din,
                      output reg [7:0] y);
                reg [7:0] ram [0:3];
                always @(posedge clk) begin
                    case (s)
                        2'd0: y <= ram[s];
                        2'd1, 2'd2: ram[s] <= din;
                        default: y <= 8'hff;
                    endcase
                end
            endmodule
            "#,
        )
        .unwrap();
        let src = print_module(d.module("m").unwrap());
        let d2 = parse_design(&src).unwrap();
        assert_eq!(
            d2.module("m").unwrap().state_bits(),
            d.module("m").unwrap().state_bits()
        );
    }
}
