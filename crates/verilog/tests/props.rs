//! Robustness properties for the Verilog frontend: the lexer and parser
//! must be total — arbitrary byte soup and arbitrarily truncated valid
//! source produce positioned diagnostics, never panics. The frontend
//! sits directly on untrusted user RTL, so this is a security boundary,
//! not a nicety.

use hardsnap_util::prop::from_fn;
use hardsnap_util::prop_check;
use hardsnap_util::Rng;

const VALID: &str = r#"
module gray (input wire clk, input wire rst, output reg [3:0] g);
    reg [3:0] bin;
    always @(posedge clk) begin
        if (rst) begin bin <= 4'd0; g <= 4'd0; end
        else begin bin <= bin + 4'd1; g <= (bin >> 1) ^ bin; end
    end
endmodule
"#;

#[test]
fn truncated_valid_source_never_panics() {
    prop_check!(cases = 256, seed = 0x74C_A7ED, (cut in 0usize..512) => {
        let cut = cut.min(VALID.len());
        // Either a clean parse (e.g. cut == full length) or a positioned
        // error — anything but a panic.
        let _ = hardsnap_verilog::parse_design(&VALID[..cut]);
    });
}

#[test]
fn random_ascii_soup_is_rejected_cleanly() {
    prop_check!(cases = 256, seed = 0xA5C_50FF, (src in from_fn(|rng: &mut Rng| {
        let len = rng.gen_range(0usize..200);
        (0..len).map(|_| rng.gen_range(0x20u8..0x7f) as char).collect::<String>()
    })) => {
        // Printable garbage essentially never forms a module; whatever
        // happens, the frontend must return, not abort.
        let _ = hardsnap_verilog::lex(&src);
        let _ = hardsnap_verilog::parse_design(&src);
    });
}

#[test]
fn spliced_token_mutations_never_panic() {
    prop_check!(cases = 256, seed = 0x5411CE, (mutation in from_fn(|rng: &mut Rng| {
        let mut s = VALID.as_bytes().to_vec();
        for _ in 0..rng.gen_range(1usize..6) {
            let i = rng.gen_range(0..s.len());
            match rng.gen_range(0u32..3) {
                0 => s[i] = rng.gen_range(0x20u8..0x7f),
                1 => { s.remove(i); }
                _ => s.insert(i, rng.gen_range(0x20u8..0x7f)),
            }
        }
        String::from_utf8_lossy(&s).into_owned()
    })) => {
        let _ = hardsnap_verilog::parse_design(&mutation);
    });
}
