//! Symbolic bit-vector expressions (the KLEE-expression analogue).
//!
//! Terms are hash-consed into a [`TermPool`]; constructors apply local
//! simplifications (constant folding, identities) so that purely
//! concrete executions never touch the solver.

use std::collections::HashMap;
use std::fmt;

/// Identifies a term within its [`TermPool`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
}

/// Binary operators. Comparison operators yield width 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount taken mod width... no: amounts
    /// >= width yield 0, matching HS32 `<< (b & 31)` after masking by
    /// the executor).
    Shl,
    /// Logical shift right.
    Lshr,
    /// Arithmetic shift right.
    Ashr,
    /// Equality (width 1).
    Eq,
    /// Unsigned less-than (width 1).
    Ult,
    /// Signed less-than (width 1).
    Slt,
}

/// A term node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// A constant of the given width.
    Const {
        /// Value (normalized to the width).
        value: u64,
        /// Width in bits.
        width: u32,
    },
    /// A free symbolic variable.
    Var {
        /// Unique name (e.g. `sym_3`).
        name: String,
        /// Width in bits.
        width: u32,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        a: TermId,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: TermId,
        /// Right operand.
        b: TermId,
    },
    /// If-then-else over a 1-bit condition.
    Ite {
        /// Condition (width 1).
        c: TermId,
        /// Then value.
        t: TermId,
        /// Else value.
        e: TermId,
    },
    /// Bit extraction `a[hi:lo]`.
    Extract {
        /// Source.
        a: TermId,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
    },
    /// Concatenation (`hi` more significant).
    Concat {
        /// More-significant part.
        hi: TermId,
        /// Less-significant part.
        lo: TermId,
    },
    /// Zero extension to `width`.
    ZExt {
        /// Source.
        a: TermId,
        /// Result width.
        width: u32,
    },
}

fn mask(width: u32) -> u64 {
    debug_assert!(width >= 1 && width <= 64);
    if width == 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    }
}

/// Hash-consing arena for terms.
#[derive(Clone, Debug, Default)]
pub struct TermPool {
    terms: Vec<Term>,
    widths: Vec<u32>,
    index: HashMap<Term, TermId>,
    var_counter: u32,
}

impl TermPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        TermPool::default()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if no terms were interned yet.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The node for `id`.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }

    /// Result width of `id`.
    pub fn width(&self, id: TermId) -> u32 {
        self.widths[id.0 as usize]
    }

    /// The constant value of `id`, if it is a constant.
    pub fn as_const(&self, id: TermId) -> Option<u64> {
        match self.term(id) {
            Term::Const { value, .. } => Some(*value),
            _ => None,
        }
    }

    fn intern(&mut self, t: Term) -> TermId {
        if let Some(&id) = self.index.get(&t) {
            return id;
        }
        let width = self.compute_width(&t);
        let id = TermId(self.terms.len() as u32);
        self.index.insert(t.clone(), id);
        self.terms.push(t);
        self.widths.push(width);
        id
    }

    fn compute_width(&self, t: &Term) -> u32 {
        match t {
            Term::Const { width, .. } | Term::Var { width, .. } | Term::ZExt { width, .. } => {
                *width
            }
            Term::Unary { a, .. } => self.width(*a),
            Term::Binary { op, a, .. } => match op {
                BinOp::Eq | BinOp::Ult | BinOp::Slt => 1,
                _ => self.width(*a),
            },
            Term::Ite { t, .. } => self.width(*t),
            Term::Extract { hi, lo, .. } => hi - lo + 1,
            Term::Concat { hi, lo } => self.width(*hi) + self.width(*lo),
        }
    }

    /// Interns a constant.
    pub fn constant(&mut self, value: u64, width: u32) -> TermId {
        self.intern(Term::Const {
            value: value & mask(width),
            width,
        })
    }

    /// The 1-bit true constant.
    pub fn tru(&mut self) -> TermId {
        self.constant(1, 1)
    }

    /// The 1-bit false constant.
    pub fn fls(&mut self) -> TermId {
        self.constant(0, 1)
    }

    /// Creates a fresh symbolic variable with a unique name suffix.
    pub fn fresh_var(&mut self, base: &str, width: u32) -> TermId {
        let n = self.var_counter;
        self.var_counter += 1;
        self.intern(Term::Var {
            name: format!("{base}_{n}"),
            width,
        })
    }

    /// Interns a named variable (idempotent for the same name/width).
    pub fn var(&mut self, name: &str, width: u32) -> TermId {
        self.intern(Term::Var {
            name: name.to_string(),
            width,
        })
    }

    /// Builds a unary operation (with folding).
    pub fn unary(&mut self, op: UnOp, a: TermId) -> TermId {
        let w = self.width(a);
        if let Some(v) = self.as_const(a) {
            let r = match op {
                UnOp::Not => !v,
                UnOp::Neg => v.wrapping_neg(),
            };
            return self.constant(r, w);
        }
        // ~~x = x, -(-x) = x
        if let Term::Unary {
            op: inner_op,
            a: inner,
        } = self.term(a)
        {
            if *inner_op == op {
                return *inner;
            }
        }
        self.intern(Term::Unary { op, a })
    }

    /// Builds a binary operation (with folding and identities).
    ///
    /// # Panics
    ///
    /// Panics (debug) on operand width mismatch.
    pub fn binary(&mut self, op: BinOp, a: TermId, b: TermId) -> TermId {
        let wa = self.width(a);
        let wb = self.width(b);
        debug_assert_eq!(wa, wb, "binary width mismatch {op:?}: {wa} vs {wb}");
        let w = wa;
        let ca = self.as_const(a);
        let cb = self.as_const(b);
        if let (Some(x), Some(y)) = (ca, cb) {
            let r = match op {
                BinOp::Add => x.wrapping_add(y) & mask(w),
                BinOp::Sub => x.wrapping_sub(y) & mask(w),
                BinOp::Mul => x.wrapping_mul(y) & mask(w),
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Shl => {
                    if y >= w as u64 {
                        0
                    } else {
                        (x << y) & mask(w)
                    }
                }
                BinOp::Lshr => {
                    if y >= w as u64 {
                        0
                    } else {
                        x >> y
                    }
                }
                BinOp::Ashr => {
                    let sh = (y).min(w as u64 - 1);
                    let sign = (x >> (w - 1)) & 1;
                    let mut r = x >> sh;
                    if sign == 1 {
                        r |= mask(w) & !(mask(w) >> sh);
                    }
                    r & mask(w)
                }
                BinOp::Eq => return self.constant((x == y) as u64, 1),
                BinOp::Ult => return self.constant((x < y) as u64, 1),
                BinOp::Slt => {
                    let sx = ((x << (64 - w)) as i64) >> (64 - w);
                    let sy = ((y << (64 - w)) as i64) >> (64 - w);
                    return self.constant((sx < sy) as u64, 1);
                }
            };
            return self.constant(r, w);
        }
        // Identities.
        match (op, ca, cb) {
            (BinOp::Add, Some(0), _) => return b,
            (BinOp::Add, _, Some(0)) => return a,
            (BinOp::Sub, _, Some(0)) => return a,
            (BinOp::Mul, Some(1), _) => return b,
            (BinOp::Mul, _, Some(1)) => return a,
            (BinOp::Mul, Some(0), _) | (BinOp::Mul, _, Some(0)) => return self.constant(0, w),
            (BinOp::And, Some(0), _) | (BinOp::And, _, Some(0)) => return self.constant(0, w),
            (BinOp::And, Some(m), _) if m == mask(w) => return b,
            (BinOp::And, _, Some(m)) if m == mask(w) => return a,
            (BinOp::Or, Some(0), _) => return b,
            (BinOp::Or, _, Some(0)) => return a,
            (BinOp::Xor, Some(0), _) => return b,
            (BinOp::Xor, _, Some(0)) => return a,
            (BinOp::Shl, _, Some(0)) | (BinOp::Lshr, _, Some(0)) | (BinOp::Ashr, _, Some(0)) => {
                return a
            }
            _ => {}
        }
        if a == b {
            match op {
                BinOp::Xor | BinOp::Sub => return self.constant(0, w),
                BinOp::And | BinOp::Or => return a,
                BinOp::Eq => return self.tru(),
                BinOp::Ult | BinOp::Slt => return self.fls(),
                _ => {}
            }
        }
        self.intern(Term::Binary { op, a, b })
    }

    /// Builds an if-then-else.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the condition is not 1-bit or the arms differ
    /// in width.
    pub fn ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        debug_assert_eq!(self.width(c), 1);
        debug_assert_eq!(self.width(t), self.width(e));
        if let Some(v) = self.as_const(c) {
            return if v == 1 { t } else { e };
        }
        if t == e {
            return t;
        }
        self.intern(Term::Ite { c, t, e })
    }

    /// Builds `a[hi:lo]`.
    ///
    /// # Panics
    ///
    /// Panics (debug) on out-of-range bits.
    pub fn extract(&mut self, a: TermId, hi: u32, lo: u32) -> TermId {
        let w = self.width(a);
        debug_assert!(hi >= lo && hi < w);
        if lo == 0 && hi == w - 1 {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.constant(v >> lo, hi - lo + 1);
        }
        // extract of concat: resolve into the matching side when fully
        // contained.
        if let Term::Concat { hi: h, lo: l } = *self.term(a) {
            let lw = self.width(l);
            if hi < lw {
                return self.extract(l, hi, lo);
            }
            if lo >= lw {
                return self.extract(h, hi - lw, lo - lw);
            }
        }
        if let Term::ZExt { a: inner, .. } = *self.term(a) {
            let iw = self.width(inner);
            if hi < iw {
                return self.extract(inner, hi, lo);
            }
            if lo >= iw {
                return self.constant(0, hi - lo + 1);
            }
        }
        self.intern(Term::Extract { a, hi, lo })
    }

    /// Builds `{hi, lo}`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the result exceeds 64 bits.
    pub fn concat(&mut self, hi: TermId, lo: TermId) -> TermId {
        let wh = self.width(hi);
        let wl = self.width(lo);
        debug_assert!(wh + wl <= 64);
        if let (Some(h), Some(l)) = (self.as_const(hi), self.as_const(lo)) {
            return self.constant((h << wl) | l, wh + wl);
        }
        self.intern(Term::Concat { hi, lo })
    }

    /// Zero-extends `a` to `width`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `width` is smaller than `a`'s width.
    pub fn zext(&mut self, a: TermId, width: u32) -> TermId {
        let w = self.width(a);
        debug_assert!(width >= w);
        if width == w {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.constant(v, width);
        }
        self.intern(Term::ZExt { a, width })
    }

    /// Builds the 1-bit negation of a condition.
    pub fn not_cond(&mut self, c: TermId) -> TermId {
        debug_assert_eq!(self.width(c), 1);
        self.unary(UnOp::Not, c)
    }

    /// Logical AND of two 1-bit conditions.
    pub fn and_cond(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::And, a, b)
    }

    /// Evaluates `id` under an assignment of variable values.
    ///
    /// Unassigned variables evaluate to 0 (matching solver model
    /// completion).
    pub fn eval(&self, id: TermId, env: &HashMap<String, u64>) -> u64 {
        let w = self.width(id);
        let v = match self.term(id) {
            Term::Const { value, .. } => *value,
            Term::Var { name, .. } => env.get(name).copied().unwrap_or(0),
            Term::Unary { op, a } => {
                let x = self.eval(*a, env);
                match op {
                    UnOp::Not => !x,
                    UnOp::Neg => x.wrapping_neg(),
                }
            }
            Term::Binary { op, a, b } => {
                let wa = self.width(*a);
                let x = self.eval(*a, env);
                let y = self.eval(*b, env);
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Shl => {
                        if y >= wa as u64 {
                            0
                        } else {
                            x << y
                        }
                    }
                    BinOp::Lshr => {
                        if y >= wa as u64 {
                            0
                        } else {
                            x >> y
                        }
                    }
                    BinOp::Ashr => {
                        let sh = y.min(wa as u64 - 1);
                        let sign = (x >> (wa - 1)) & 1;
                        let mut r = x >> sh;
                        if sign == 1 {
                            r |= mask(wa) & !(mask(wa) >> sh);
                        }
                        r
                    }
                    BinOp::Eq => (x == y) as u64,
                    BinOp::Ult => (x < y) as u64,
                    BinOp::Slt => {
                        let sx = ((x << (64 - wa)) as i64) >> (64 - wa);
                        let sy = ((y << (64 - wa)) as i64) >> (64 - wa);
                        (sx < sy) as u64
                    }
                }
            }
            Term::Ite { c, t, e } => {
                if self.eval(*c, env) == 1 {
                    self.eval(*t, env)
                } else {
                    self.eval(*e, env)
                }
            }
            Term::Extract { a, hi: _, lo } => self.eval(*a, env) >> lo,
            Term::Concat { hi, lo } => {
                let wl = self.width(*lo);
                (self.eval(*hi, env) << wl) | self.eval(*lo, env)
            }
            Term::ZExt { a, .. } => self.eval(*a, env),
        };
        v & mask(w)
    }

    /// Collects the names and widths of all variables under `id`.
    pub fn variables(&self, id: TermId, out: &mut HashMap<String, u32>) {
        match self.term(id) {
            Term::Const { .. } => {}
            Term::Var { name, width } => {
                out.insert(name.clone(), *width);
            }
            Term::Unary { a, .. } | Term::ZExt { a, .. } | Term::Extract { a, .. } => {
                self.variables(*a, out)
            }
            Term::Binary { a, b, .. } => {
                self.variables(*a, out);
                self.variables(*b, out);
            }
            Term::Ite { c, t, e } => {
                self.variables(*c, out);
                self.variables(*t, out);
                self.variables(*e, out);
            }
            Term::Concat { hi, lo } => {
                self.variables(*hi, out);
                self.variables(*lo, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut p = TermPool::new();
        let a = p.var("x", 32);
        let b = p.var("x", 32);
        assert_eq!(a, b);
        let c1 = p.constant(5, 32);
        let c2 = p.constant(5, 32);
        assert_eq!(c1, c2);
        assert_ne!(p.constant(5, 16), c1);
    }

    #[test]
    fn constant_folding() {
        let mut p = TermPool::new();
        let a = p.constant(10, 32);
        let b = p.constant(32, 32);
        let t = p.binary(BinOp::Add, a, b);
        assert_eq!(p.as_const(t), Some(42));
        let t = p.binary(BinOp::Ult, a, b);
        assert_eq!(p.as_const(t), Some(1));
        let m = p.constant(0xffff_ffff, 32);
        let one = p.constant(1, 32);
        let t = p.binary(BinOp::Add, m, one);
        assert_eq!(p.as_const(t), Some(0));
    }

    #[test]
    fn signed_comparison_folds() {
        let mut p = TermPool::new();
        let neg1 = p.constant(0xffff_ffff, 32);
        let one = p.constant(1, 32);
        let t = p.binary(BinOp::Slt, neg1, one);
        assert_eq!(p.as_const(t), Some(1));
        let t = p.binary(BinOp::Ult, neg1, one);
        assert_eq!(p.as_const(t), Some(0));
    }

    #[test]
    fn identities_simplify() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let zero = p.constant(0, 32);
        let ones = p.constant(u32::MAX as u64, 32);
        assert_eq!(p.binary(BinOp::Add, x, zero), x);
        assert_eq!(p.binary(BinOp::And, x, ones), x);
        let t = p.binary(BinOp::And, x, zero);
        assert_eq!(p.as_const(t), Some(0));
        let t = p.binary(BinOp::Xor, x, x);
        assert_eq!(p.as_const(t), Some(0));
        let t = p.binary(BinOp::Eq, x, x);
        assert_eq!(p.as_const(t), Some(1));
    }

    #[test]
    fn ite_simplifies() {
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let y = p.var("y", 8);
        let t = p.tru();
        assert_eq!(p.ite(t, x, y), x);
        let c = p.var("c", 1);
        assert_eq!(p.ite(c, x, x), x);
    }

    #[test]
    fn extract_through_concat_and_zext() {
        let mut p = TermPool::new();
        let hi = p.var("h", 8);
        let lo = p.var("l", 8);
        let cc = p.concat(hi, lo);
        assert_eq!(p.extract(cc, 7, 0), lo);
        assert_eq!(p.extract(cc, 15, 8), hi);
        let z = p.zext(lo, 32);
        assert_eq!(p.extract(z, 7, 0), lo);
        let t = p.extract(z, 31, 8);
        assert_eq!(p.as_const(t), Some(0));
    }

    #[test]
    fn eval_matches_fold() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let five = p.constant(5, 32);
        let e = p.binary(BinOp::Mul, x, five);
        let e = p.binary(BinOp::Sub, e, five);
        let mut env = HashMap::new();
        env.insert("x".to_string(), 9u64);
        assert_eq!(p.eval(e, &env), 40);
    }

    #[test]
    fn eval_shifts_and_ashr() {
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let sh = p.constant(2, 8);
        let l = p.binary(BinOp::Ashr, x, sh);
        let mut env = HashMap::new();
        env.insert("x".to_string(), 0x84u64);
        assert_eq!(p.eval(l, &env), 0xe1);
        let big = p.constant(9, 8);
        let r = p.binary(BinOp::Lshr, x, big);
        assert_eq!(p.eval(r, &env), 0);
    }

    #[test]
    fn variables_are_collected() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let y = p.var("y", 8);
        let yz = p.zext(y, 32);
        let e = p.binary(BinOp::Add, x, yz);
        let mut vars = HashMap::new();
        p.variables(e, &mut vars);
        assert_eq!(vars.get("x"), Some(&32));
        assert_eq!(vars.get("y"), Some(&8));
    }

    #[test]
    fn fresh_vars_are_unique() {
        let mut p = TermPool::new();
        let a = p.fresh_var("sym", 32);
        let b = p.fresh_var("sym", 32);
        assert_ne!(a, b);
    }
}
