//! Symbolic machine state: the `S_sw` of the paper's combined state
//! representation (PC, registers, memory), plus the path constraints and
//! the hardware-snapshot association that HardSnap adds.

use crate::expr::{TermId, TermPool};
use hardsnap_bus::MemoryMap;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifies a symbolic execution state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u64);

/// Byte-granular symbolic memory: a shared concrete base image with a
/// copy-on-fork overlay of symbolic bytes.
#[derive(Clone, Debug)]
pub struct SymMemory {
    base: Arc<Vec<u8>>,
    overlay: HashMap<u32, TermId>,
}

impl SymMemory {
    /// Creates a memory over a concrete base image (the loaded firmware
    /// RAM).
    pub fn new(base: Arc<Vec<u8>>) -> Self {
        SymMemory {
            base,
            overlay: HashMap::new(),
        }
    }

    /// Size of the addressable base image.
    pub fn size(&self) -> u32 {
        self.base.len() as u32
    }

    /// The shared concrete base image (cheap `Arc` handle).
    pub fn base_image(&self) -> Arc<Vec<u8>> {
        self.base.clone()
    }

    /// Iterates the overlay (written) bytes in unspecified order.
    pub fn overlay_entries(&self) -> impl Iterator<Item = (u32, TermId)> + '_ {
        self.overlay.iter().map(|(&a, &t)| (a, t))
    }

    /// Number of overlay (written) bytes — a cheap state-size metric.
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// Reads one byte as a term.
    pub fn load8(&self, pool: &mut TermPool, addr: u32) -> TermId {
        match self.overlay.get(&addr) {
            Some(&t) => t,
            None => {
                let b = self.base.get(addr as usize).copied().unwrap_or(0);
                pool.constant(b as u64, 8)
            }
        }
    }

    /// Writes one byte term.
    pub fn store8(&mut self, addr: u32, value: TermId) {
        self.overlay.insert(addr, value);
    }

    /// Reads a little-endian 32-bit word as a term.
    pub fn load32(&self, pool: &mut TermPool, addr: u32) -> TermId {
        let b0 = self.load8(pool, addr);
        let b1 = self.load8(pool, addr.wrapping_add(1));
        let b2 = self.load8(pool, addr.wrapping_add(2));
        let b3 = self.load8(pool, addr.wrapping_add(3));
        let lo = pool.concat(b1, b0);
        let hi = pool.concat(b3, b2);
        pool.concat(hi, lo)
    }

    /// Writes a little-endian 32-bit word term (split into byte terms).
    pub fn store32(&mut self, pool: &mut TermPool, addr: u32, value: TermId) {
        for i in 0..4 {
            let byte = pool.extract(value, 8 * i + 7, 8 * i);
            self.store8(addr.wrapping_add(i), byte);
        }
    }
}

/// One symbolic execution state.
#[derive(Clone, Debug)]
pub struct SymState {
    /// Unique id (stable across in-place stepping; forks allocate new
    /// ids for the extra successors).
    pub id: StateId,
    /// Register terms (`regs[0]` is pinned to the zero constant).
    pub regs: [TermId; 16],
    /// Concrete program counter.
    pub pc: u32,
    /// Saved PC for `iret`.
    pub epc: u32,
    /// Global interrupt enable.
    pub irq_enabled: bool,
    /// Servicing an interrupt (atomic interrupts, as in Inception).
    pub in_isr: bool,
    /// Executed `halt`.
    pub halted: bool,
    /// Symbolic memory.
    pub mem: SymMemory,
    /// Path constraints (1-bit terms, conjunction).
    pub constraints: Vec<TermId>,
    /// Id of the hardware snapshot owned by this state (managed by the
    /// HardSnap engine; `None` until first hardware interaction).
    pub hw_snapshot: Option<u64>,
    /// Retired instructions.
    pub instret: u64,
    /// Debug console bytes emitted on this path.
    pub console: Vec<u8>,
    /// Number of `sym` hypercalls executed (names the variables).
    pub sym_count: u32,
    /// Last checkpoint-hint id crossed, if any.
    pub last_checkpoint: Option<u16>,
    /// Memory map (RAM/MMIO routing).
    pub map: MemoryMap,
    /// Per-state fork counter feeding [`SymState::next_fork_id`]. It
    /// evolves only with this state's own execution history, so the ids
    /// it derives are independent of scheduling order or worker count.
    pub fork_nonce: u64,
}

impl SymState {
    /// Creates the initial state for a firmware image with entry point
    /// `entry`.
    pub fn initial(pool: &mut TermPool, image: Arc<Vec<u8>>, entry: u32) -> Self {
        let zero = pool.constant(0, 32);
        SymState {
            id: StateId(0),
            regs: [zero; 16],
            pc: entry,
            epc: 0,
            irq_enabled: false,
            in_isr: false,
            halted: false,
            mem: SymMemory::new(image),
            constraints: Vec::new(),
            hw_snapshot: None,
            instret: 0,
            console: Vec::new(),
            sym_count: 0,
            last_checkpoint: None,
            map: MemoryMap::default_soc(),
            fork_nonce: 0,
        }
    }

    /// Derives the id for the next forked successor of this state.
    ///
    /// The id is a splitmix64-style mix of the parent id and a per-state
    /// fork counter, so it is a pure function of the path that produced
    /// the fork — never of executor instance, scheduling order, or
    /// worker count. Call this *before* cloning the parent so every
    /// successor (including the one that keeps the parent id) observes
    /// the advanced counter and future forks cannot collide.
    pub fn next_fork_id(&mut self) -> StateId {
        self.fork_nonce += 1;
        let mut z = self
            .id
            .0
            .wrapping_add(self.fork_nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        StateId(z ^ (z >> 31))
    }

    /// Reads a register term (`r0` is the zero constant).
    pub fn reg(&self, r: u8) -> TermId {
        self.regs[r as usize]
    }

    /// Writes a register term (`r0` writes are dropped).
    pub fn set_reg(&mut self, r: u8, v: TermId) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    /// Adds a path constraint.
    pub fn assume(&mut self, c: TermId) {
        self.constraints.push(c);
    }

    /// True if every register is concrete (useful in tests/metrics).
    pub fn fully_concrete(&self, pool: &TermPool) -> bool {
        self.regs.iter().all(|&r| pool.as_const(r).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_reads_base_until_overwritten() {
        let mut pool = TermPool::new();
        let base = Arc::new(vec![0x11, 0x22, 0x33, 0x44, 0x55]);
        let mut mem = SymMemory::new(base);
        let w = mem.load32(&mut pool, 0);
        assert_eq!(pool.as_const(w), Some(0x4433_2211));
        let c = pool.constant(0xaa, 8);
        mem.store8(1, c);
        let w = mem.load32(&mut pool, 0);
        assert_eq!(pool.as_const(w), Some(0x4433_aa11));
    }

    #[test]
    fn store32_roundtrips_through_bytes() {
        let mut pool = TermPool::new();
        let mut mem = SymMemory::new(Arc::new(vec![0u8; 16]));
        let v = pool.constant(0xdead_beef, 32);
        mem.store32(&mut pool, 4, v);
        let r = mem.load32(&mut pool, 4);
        assert_eq!(pool.as_const(r), Some(0xdead_beef));
        // Unaligned view across the word.
        let r = mem.load32(&mut pool, 6);
        assert_eq!(pool.as_const(r), Some(0x0000_dead));
    }

    #[test]
    fn symbolic_store_stays_symbolic() {
        let mut pool = TermPool::new();
        let mut mem = SymMemory::new(Arc::new(vec![0u8; 8]));
        let x = pool.var("x", 32);
        mem.store32(&mut pool, 0, x);
        let r = mem.load32(&mut pool, 0);
        assert!(pool.as_const(r).is_none());
        // But evaluates correctly under an assignment.
        let mut env = HashMap::new();
        env.insert("x".to_string(), 0x0102_0304u64);
        assert_eq!(pool.eval(r, &env), 0x0102_0304);
    }

    #[test]
    fn out_of_image_reads_are_zero() {
        let mut pool = TermPool::new();
        let mem = SymMemory::new(Arc::new(vec![1, 2]));
        let b = mem.load8(&mut pool, 100);
        assert_eq!(pool.as_const(b), Some(0));
    }

    #[test]
    fn fork_by_clone_is_independent() {
        let mut pool = TermPool::new();
        let image = Arc::new(vec![0u8; 8]);
        let mut a = SymState::initial(&mut pool, image, 0x100);
        let mut b = a.clone();
        b.id = StateId(1);
        let five = pool.constant(5, 32);
        a.set_reg(1, five);
        let c9 = pool.constant(9, 8);
        a.mem.store8(0, c9);
        assert_eq!(pool.as_const(b.reg(1)), Some(0));
        let tb = b.mem.load8(&mut pool, 0);
        assert_eq!(pool.as_const(tb), Some(0));
        let ta = a.mem.load8(&mut pool, 0);
        assert_eq!(pool.as_const(ta), Some(9));
    }

    #[test]
    fn r0_stays_zero() {
        let mut pool = TermPool::new();
        let mut s = SymState::initial(&mut pool, Arc::new(vec![]), 0);
        let v = pool.constant(77, 32);
        s.set_reg(0, v);
        assert_eq!(pool.as_const(s.reg(0)), Some(0));
    }
}
