//! The symbolic executor for HS32 (the KLEE/Inception analogue).
//!
//! Single-state stepping with forking: the scheduling loop (Algorithm 1
//! of the paper, including the hardware context switch) lives in the
//! `hardsnap` core crate; this module provides the per-instruction
//! symbolic semantics, the fork points (symbolic branches, symbolic MMIO
//! concretization, assertion checks) and test-case extraction.

use crate::expr::{BinOp, TermId, TermPool, UnOp};
use crate::solver::{BvSolver, Model, QueryResult};
use crate::state::{StateId, SymState};
use hardsnap_bus::{BusError, RegionKind};
use hardsnap_isa::encoding::{AluOp, Cond, Instr, NUM_IRQ_LINES, VECTOR_BASE};

/// How symbolic values crossing the VM boundary are concretized
/// (paper §III-B "concretization policy": completeness vs performance).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Concretization {
    /// One satisfying value; the path is constrained to it (performance).
    Minimal,
    /// Fork one successor per satisfying value, up to the bound
    /// (completeness).
    Exhaustive(usize),
}

/// The hardware side of forwarded MMIO, as seen by one symbolic state.
/// The HardSnap engine implements this with hardware-context switching;
/// tests may use simple stubs.
pub trait SymMmio {
    /// Forwarded 32-bit read.
    ///
    /// # Errors
    ///
    /// Propagates the hardware [`BusError`].
    fn mmio_read(&mut self, state: &SymState, addr: u32) -> Result<u32, BusError>;

    /// Forwarded 32-bit write.
    ///
    /// # Errors
    ///
    /// Propagates the hardware [`BusError`].
    fn mmio_write(&mut self, state: &SymState, addr: u32, data: u32) -> Result<(), BusError>;
}

/// MMIO stub that faults every access (software-only analyses).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoSymMmio;

impl SymMmio for NoSymMmio {
    fn mmio_read(&mut self, _state: &SymState, addr: u32) -> Result<u32, BusError> {
        Err(BusError::SlaveError { addr })
    }
    fn mmio_write(&mut self, _state: &SymState, addr: u32, _data: u32) -> Result<(), BusError> {
        Err(BusError::SlaveError { addr })
    }
}

/// Classification of a detected bug.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BugKind {
    /// `assert` can fail on this path.
    AssertFailed,
    /// `fail` marker reached.
    FailHit,
    /// Unmapped memory access.
    Unmapped,
    /// Misaligned access.
    Unaligned,
    /// Undecodable (or symbolic) instruction.
    IllegalInstruction,
    /// Hardware bus error surfaced to firmware.
    Bus,
    /// Byte access into the MMIO window.
    MmioByteAccess,
}

/// A reported bug with its reproducing test case.
#[derive(Clone, Debug)]
pub struct BugReport {
    /// Classification.
    pub kind: BugKind,
    /// PC of the faulting instruction.
    pub pc: u32,
    /// State that hit the bug.
    pub state_id: StateId,
    /// Concrete input assignment reproducing the bug, if solvable.
    pub testcase: Option<Model>,
    /// Human-readable description.
    pub description: String,
}

/// Result of symbolically executing one instruction.
#[derive(Debug)]
pub enum StepOutcome {
    /// Execution continues in this successor state.
    ContinueWith(SymState),
    /// The state forked; successors replace it (first keeps the id).
    Fork(Vec<SymState>),
    /// The state halted; carries the final state for inspection
    /// (console output, final memory, constraints).
    Halted(SymState),
    /// A bug was found; execution of the state may continue on the
    /// non-buggy path if one exists.
    Bug {
        /// The report.
        report: BugReport,
        /// The surviving non-buggy continuation, if feasible.
        continuation: Option<SymState>,
    },
}

/// Executor statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions symbolically executed.
    pub instructions: u64,
    /// Fork events.
    pub forks: u64,
    /// Concretizations at the VM boundary.
    pub concretizations: u64,
}

/// The symbolic executor: owns the term pool and the solver.
pub struct Executor {
    /// Term arena shared by all states of this executor.
    pub pool: TermPool,
    /// Decision procedure.
    pub solver: BvSolver,
    /// Concretization policy at the VM boundary.
    pub policy: Concretization,
    /// Statistics.
    pub stats: ExecStats,
}

impl Executor {
    /// Creates an executor with the given concretization policy.
    pub fn new(policy: Concretization) -> Self {
        Executor {
            pool: TermPool::new(),
            solver: BvSolver::new(),
            policy,
            stats: ExecStats::default(),
        }
    }

    /// Creates the initial state for a program image.
    pub fn initial_state(&mut self, image: Vec<u8>, entry: u32) -> SymState {
        SymState::initial(&mut self.pool, std::sync::Arc::new(image), entry)
    }

    /// Extracts a concrete input assignment satisfying the state's path.
    pub fn testcase(&mut self, state: &SymState) -> Option<Model> {
        match self.solver.check(&self.pool, &state.constraints) {
            QueryResult::Sat(m) => Some(m),
            QueryResult::Unsat => None,
        }
    }

    /// Delivers an interrupt: vectors through the table if the state
    /// accepts interrupts. Returns the line taken.
    pub fn enter_irq(&mut self, state: &mut SymState, lines: u32) -> Option<u32> {
        if !state.irq_enabled || state.in_isr || state.halted || lines == 0 {
            return None;
        }
        let line = lines.trailing_zeros();
        if line >= NUM_IRQ_LINES {
            return None;
        }
        let vec_term = state.mem.load32(&mut self.pool, VECTOR_BASE + 4 * line);
        let handler = self.pool.as_const(vec_term)? as u32;
        if handler == 0 {
            return None;
        }
        state.epc = state.pc;
        state.pc = handler;
        state.in_isr = true;
        Some(line)
    }

    fn bug(&mut self, state: &SymState, kind: BugKind, pc: u32, description: String) -> BugReport {
        let testcase = self.testcase(state);
        BugReport {
            kind,
            pc,
            state_id: state.id,
            testcase,
            description,
        }
    }

    /// Concretizes `term` under the state's constraints according to the
    /// policy; returns the chosen values (1 for Minimal, up to N for
    /// Exhaustive). Empty means the path is infeasible.
    fn concretize(&mut self, state: &SymState, term: TermId) -> Vec<u64> {
        self.stats.concretizations += 1;
        if let Some(v) = self.pool.as_const(term) {
            return vec![v];
        }
        match self.policy {
            Concretization::Minimal => match self.solver.check(&self.pool, &state.constraints) {
                QueryResult::Sat(m) => vec![m.eval(&self.pool, term)],
                QueryResult::Unsat => vec![],
            },
            Concretization::Exhaustive(n) => {
                self.solver
                    .solutions(&mut self.pool, &state.constraints, term, n)
            }
        }
    }

    /// Symbolically executes one instruction of `state`, forwarding MMIO
    /// to `hw`.
    pub fn step(&mut self, mut state: SymState, hw: &mut dyn SymMmio) -> StepOutcome {
        if state.halted {
            return StepOutcome::Halted(state);
        }
        self.stats.instructions += 1;
        let pc = state.pc;
        if pc % 4 != 0 || state.map.kind_of(pc) != Some(RegionKind::Ram) {
            let report = self.bug(
                &state,
                BugKind::Unmapped,
                pc,
                format!("control flow reached invalid pc {pc:#010x}"),
            );
            return StepOutcome::Bug {
                report,
                continuation: None,
            };
        }
        let word_t = state.mem.load32(&mut self.pool, pc);
        let Some(word) = self.pool.as_const(word_t) else {
            let report = self.bug(
                &state,
                BugKind::IllegalInstruction,
                pc,
                "symbolic instruction word (self-modifying code?)".to_string(),
            );
            return StepOutcome::Bug {
                report,
                continuation: None,
            };
        };
        let instr = match Instr::decode(word as u32) {
            Ok(i) => i,
            Err(e) => {
                let report = self.bug(
                    &state,
                    BugKind::IllegalInstruction,
                    pc,
                    format!("illegal instruction: {e}"),
                );
                return StepOutcome::Bug {
                    report,
                    continuation: None,
                };
            }
        };

        let mut next_pc = pc.wrapping_add(4);
        match instr {
            Instr::Nop => {}
            Instr::Chkpt { id } => state.last_checkpoint = Some(id),
            Instr::Halt => {
                state.halted = true;
                state.instret += 1;
                return StepOutcome::Halted(state);
            }
            Instr::Alu { op, rd, rs1, rs2 } => {
                let a = state.reg(rs1);
                let b = state.reg(rs2);
                let v = self.alu_term(op, a, b);
                state.set_reg(rd, v);
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let a = state.reg(rs1);
                let b = self.pool.constant(imm as u64, 32);
                let v = self.alu_term(op, a, b);
                state.set_reg(rd, v);
            }
            Instr::Lui { rd, imm } => {
                let v = self.pool.constant((imm as u64) << 16, 32);
                state.set_reg(rd, v);
            }
            Instr::Ldw { rd, rs1, off } | Instr::Ldb { rd, rs1, off } => {
                let byte = matches!(instr, Instr::Ldb { .. });
                return self.exec_load(state, hw, rd, rs1, off, byte, next_pc);
            }
            Instr::Stw { rs2, rs1, off } | Instr::Stb { rs2, rs1, off } => {
                let byte = matches!(instr, Instr::Stb { .. });
                return self.exec_store(state, hw, rs2, rs1, off, byte, next_pc);
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                off,
            } => {
                let a = state.reg(rs1);
                let b = state.reg(rs2);
                let c = self.cond_term(cond, a, b);
                let taken_pc = pc.wrapping_add(4).wrapping_add(off as i32 as u32);
                if let Some(v) = self.pool.as_const(c) {
                    next_pc = if v == 1 { taken_pc } else { next_pc };
                } else {
                    let not_c = self.pool.not_cond(c);
                    let sat_t = self
                        .solver
                        .check_with(&self.pool, &state.constraints, c)
                        .is_sat();
                    let sat_f = self
                        .solver
                        .check_with(&self.pool, &state.constraints, not_c)
                        .is_sat();
                    state.instret += 1;
                    match (sat_t, sat_f) {
                        (true, true) => {
                            self.stats.forks += 1;
                            let fall_id = state.next_fork_id();
                            let mut taken = state.clone();
                            taken.assume(c);
                            taken.pc = taken_pc;
                            let mut fall = state;
                            fall.assume(not_c);
                            fall.pc = pc.wrapping_add(4);
                            fall.id = fall_id;
                            return StepOutcome::Fork(vec![taken, fall]);
                        }
                        (true, false) => {
                            state.assume(c);
                            state.pc = taken_pc;
                            return StepOutcome::ContinueWith(state);
                        }
                        (false, true) => {
                            state.assume(not_c);
                            state.pc = pc.wrapping_add(4);
                            return StepOutcome::ContinueWith(state);
                        }
                        (false, false) => {
                            // Path constraints already unsatisfiable.
                            state.halted = true;
                            return StepOutcome::Halted(state);
                        }
                    }
                }
            }
            Instr::Jal { rd, off } => {
                let link = self.pool.constant(pc.wrapping_add(4) as u64, 32);
                state.set_reg(rd, link);
                next_pc = pc.wrapping_add(4).wrapping_add(off as u32);
            }
            Instr::Jalr { rd, rs1, off } => {
                let target_t = state.reg(rs1);
                let offc = self.pool.constant(off as i32 as u32 as u64, 32);
                let target_t = self.pool.binary(BinOp::Add, target_t, offc);
                let link = self.pool.constant(pc.wrapping_add(4) as u64, 32);
                state.set_reg(rd, link);
                let targets = self.concretize(&state, target_t);
                state.instret += 1;
                return self.fork_on_values(state, target_t, targets, |s, v| {
                    s.pc = v as u32;
                });
            }
            Instr::Iret => {
                next_pc = state.epc;
                state.in_isr = false;
            }
            Instr::Cli => state.irq_enabled = false,
            Instr::Sei => state.irq_enabled = true,
            Instr::Sym { rd, id } => {
                let n = state.sym_count;
                state.sym_count += 1;
                let v = self.pool.var(&format!("sym{id}_{n}"), 32);
                state.set_reg(rd, v);
            }
            Instr::Assert { rs1 } => {
                let v = state.reg(rs1);
                let zero = self.pool.constant(0, 32);
                let is_zero = self.pool.binary(BinOp::Eq, v, zero);
                state.pc = next_pc;
                state.instret += 1;
                match self.pool.as_const(is_zero) {
                    Some(1) => {
                        let report = self.bug(
                            &state,
                            BugKind::AssertFailed,
                            pc,
                            "assertion failed (concretely)".to_string(),
                        );
                        return StepOutcome::Bug {
                            report,
                            continuation: None,
                        };
                    }
                    Some(_) => return StepOutcome::ContinueWith(state),
                    None => {
                        let can_fail = self
                            .solver
                            .check_with(&self.pool, &state.constraints, is_zero)
                            .is_sat();
                        if can_fail {
                            let mut failing = state.clone();
                            failing.assume(is_zero);
                            let report = self.bug(
                                &failing,
                                BugKind::AssertFailed,
                                pc,
                                "assertion can fail on this path".to_string(),
                            );
                            let not_zero = self.pool.not_cond(is_zero);
                            let survives = self
                                .solver
                                .check_with(&self.pool, &state.constraints, not_zero)
                                .is_sat();
                            let continuation = if survives {
                                state.assume(not_zero);
                                Some(state)
                            } else {
                                None
                            };
                            return StepOutcome::Bug {
                                report,
                                continuation,
                            };
                        }
                        let not_zero = self.pool.not_cond(is_zero);
                        state.assume(not_zero);
                        return StepOutcome::ContinueWith(state);
                    }
                }
            }
            Instr::Fail => {
                let report = self.bug(
                    &state,
                    BugKind::FailHit,
                    pc,
                    "fail marker reached".to_string(),
                );
                return StepOutcome::Bug {
                    report,
                    continuation: None,
                };
            }
            Instr::Putc { rs1 } => {
                let v = state.reg(rs1);
                let byte = self.pool.extract(v, 7, 0);
                let vals = self.concretize(&state, byte);
                if let Some(&v) = vals.first() {
                    state.console.push(v as u8);
                }
            }
        }
        state.pc = next_pc;
        state.instret += 1;
        StepOutcome::ContinueWith(state)
    }

    fn exec_load(
        &mut self,
        mut state: SymState,
        hw: &mut dyn SymMmio,
        rd: u8,
        rs1: u8,
        off: i16,
        byte: bool,
        next_pc: u32,
    ) -> StepOutcome {
        let pc = state.pc;
        let base = state.reg(rs1);
        let offc = self.pool.constant(off as i32 as u32 as u64, 32);
        let addr_t = self.pool.binary(BinOp::Add, base, offc);
        let addrs = self.concretize(&state, addr_t);
        if addrs.is_empty() {
            state.halted = true;
            return StepOutcome::Halted(state);
        }
        state.pc = next_pc;
        state.instret += 1;
        self.fork_on_values_with(state, addr_t, addrs, |this, s, av| {
            let addr = av as u32;
            if !byte && addr % 4 != 0 {
                let report = this.bug(
                    s,
                    BugKind::Unaligned,
                    pc,
                    format!("unaligned load at {addr:#010x}"),
                );
                return Err(report);
            }
            match s.map.kind_of(addr) {
                Some(RegionKind::Ram) | Some(RegionKind::Rom) => {
                    let v = if byte {
                        let b = s.mem.load8(&mut this.pool, addr);
                        this.pool.zext(b, 32)
                    } else {
                        s.mem.load32(&mut this.pool, addr)
                    };
                    s.set_reg(rd, v);
                    Ok(())
                }
                Some(RegionKind::Mmio) => {
                    if byte {
                        return Err(this.bug(
                            s,
                            BugKind::MmioByteAccess,
                            pc,
                            format!("byte load from mmio {addr:#010x}"),
                        ));
                    }
                    match hw.mmio_read(s, addr) {
                        Ok(v) => {
                            let t = this.pool.constant(v as u64, 32);
                            s.set_reg(rd, t);
                            Ok(())
                        }
                        Err(e) => {
                            Err(this.bug(s, BugKind::Bus, pc, format!("bus error on load: {e}")))
                        }
                    }
                }
                None => Err(this.bug(
                    s,
                    BugKind::Unmapped,
                    pc,
                    format!("load from unmapped {addr:#010x}"),
                )),
            }
        })
    }

    fn exec_store(
        &mut self,
        mut state: SymState,
        hw: &mut dyn SymMmio,
        rs2: u8,
        rs1: u8,
        off: i16,
        byte: bool,
        next_pc: u32,
    ) -> StepOutcome {
        let pc = state.pc;
        let base = state.reg(rs1);
        let offc = self.pool.constant(off as i32 as u32 as u64, 32);
        let addr_t = self.pool.binary(BinOp::Add, base, offc);
        let addrs = self.concretize(&state, addr_t);
        if addrs.is_empty() {
            state.halted = true;
            return StepOutcome::Halted(state);
        }
        // Exhaustive concretization of the *data* crossing the VM
        // boundary: when the (single) target address is MMIO and the
        // stored value is symbolic, fork one successor per feasible
        // value. Only the first successor performs the write now (it
        // owns the live hardware); the others rewind to re-execute the
        // store under their pinned value once the scheduler gives them
        // their own hardware context.
        if addrs.len() == 1 && !byte {
            let addr = addrs[0] as u32;
            if addr % 4 == 0 && state.map.kind_of(addr) == Some(RegionKind::Mmio) {
                let value = state.reg(rs2);
                if self.pool.as_const(value).is_none() {
                    if let Some(c) = self.pool.as_const(addr_t).is_none().then(|| {
                        let w = self.pool.width(addr_t);
                        let ca = self.pool.constant(addr as u64, w);
                        self.pool.binary(BinOp::Eq, addr_t, ca)
                    }) {
                        state.assume(c);
                    }
                    let vals = self.concretize(&state, value);
                    if vals.is_empty() {
                        state.halted = true;
                        return StepOutcome::Halted(state);
                    }
                    if vals.len() > 1 {
                        self.stats.forks += vals.len() as u64 - 1;
                        let extra_ids: Vec<StateId> =
                            (1..vals.len()).map(|_| state.next_fork_id()).collect();
                        let mut successors = Vec::with_capacity(vals.len());
                        for (i, &v) in vals.iter().enumerate() {
                            let mut s2 = state.clone();
                            let w = self.pool.width(value);
                            let cv = self.pool.constant(v, w);
                            let eq = self.pool.binary(BinOp::Eq, value, cv);
                            s2.assume(eq);
                            if i == 0 {
                                s2.pc = next_pc;
                                s2.instret += 1;
                                match hw.mmio_write(&s2, addr, v as u32) {
                                    Ok(()) => {}
                                    Err(e) => {
                                        let report = self.bug(
                                            &s2,
                                            BugKind::Bus,
                                            pc,
                                            format!("bus error on store: {e}"),
                                        );
                                        return StepOutcome::Bug {
                                            report,
                                            continuation: None,
                                        };
                                    }
                                }
                            } else {
                                // Re-execute the store when scheduled.
                                s2.pc = pc;
                                s2.id = extra_ids[i - 1];
                            }
                            successors.push(s2);
                        }
                        return StepOutcome::Fork(successors);
                    }
                }
            }
        }
        state.pc = next_pc;
        state.instret += 1;
        self.fork_on_values_with(state, addr_t, addrs, |this, s, av| {
            let addr = av as u32;
            if !byte && addr % 4 != 0 {
                return Err(this.bug(
                    s,
                    BugKind::Unaligned,
                    pc,
                    format!("unaligned store at {addr:#010x}"),
                ));
            }
            let value = s.reg(rs2);
            match s.map.kind_of(addr) {
                Some(RegionKind::Ram) => {
                    if byte {
                        let b = this.pool.extract(value, 7, 0);
                        s.mem.store8(addr, b);
                    } else {
                        s.mem.store32(&mut this.pool, addr, value);
                    }
                    Ok(())
                }
                Some(RegionKind::Rom) => Err(this.bug(
                    s,
                    BugKind::Unmapped,
                    pc,
                    format!("write to rom {addr:#010x}"),
                )),
                Some(RegionKind::Mmio) => {
                    if byte {
                        return Err(this.bug(
                            s,
                            BugKind::MmioByteAccess,
                            pc,
                            format!("byte store to mmio {addr:#010x}"),
                        ));
                    }
                    // Concretize the *data* crossing the VM boundary.
                    let vals = this.concretize(s, value);
                    let Some(&v0) = vals.first() else {
                        s.halted = true;
                        return Ok(());
                    };
                    // Note: exhaustive data forking at stores is folded
                    // to the first value here; the address fork already
                    // multiplied paths. Constrain the path to the value
                    // actually sent to hardware (KLEE-style).
                    if this.pool.as_const(value).is_none() {
                        let w = this.pool.width(value);
                        let cv = this.pool.constant(v0, w);
                        let eq = this.pool.binary(BinOp::Eq, value, cv);
                        s.assume(eq);
                    }
                    match hw.mmio_write(s, addr, v0 as u32) {
                        Ok(()) => Ok(()),
                        Err(e) => {
                            Err(this.bug(s, BugKind::Bus, pc, format!("bus error on store: {e}")))
                        }
                    }
                }
                None => Err(this.bug(
                    s,
                    BugKind::Unmapped,
                    pc,
                    format!("store to unmapped {addr:#010x}"),
                )),
            }
        })
    }

    /// Forks `state` over concrete `values` of `term` and applies `f` to
    /// each successor.
    fn fork_on_values(
        &mut self,
        state: SymState,
        term: TermId,
        values: Vec<u64>,
        f: impl Fn(&mut SymState, u64),
    ) -> StepOutcome {
        self.fork_on_values_with(state, term, values, |_, s, v| {
            f(s, v);
            Ok(())
        })
    }

    /// Fork helper with executor access and per-branch bug reporting.
    fn fork_on_values_with(
        &mut self,
        mut state: SymState,
        term: TermId,
        values: Vec<u64>,
        mut f: impl FnMut(&mut Self, &mut SymState, u64) -> Result<(), BugReport>,
    ) -> StepOutcome {
        if values.is_empty() {
            let mut s = state;
            s.halted = true;
            return StepOutcome::Halted(s);
        }
        let symbolic = self.pool.as_const(term).is_none();
        if values.len() == 1 {
            let mut s = state;
            if symbolic {
                let w = self.pool.width(term);
                let cv = self.pool.constant(values[0], w);
                let eq = self.pool.binary(BinOp::Eq, term, cv);
                s.assume(eq);
            }
            return match f(self, &mut s, values[0]) {
                Ok(()) => StepOutcome::ContinueWith(s),
                Err(report) => StepOutcome::Bug {
                    report,
                    continuation: None,
                },
            };
        }
        self.stats.forks += values.len() as u64 - 1;
        let extra_ids: Vec<StateId> = (1..values.len()).map(|_| state.next_fork_id()).collect();
        let mut successors = Vec::new();
        let mut first_bug = None;
        for (i, &v) in values.iter().enumerate() {
            let mut s = state.clone();
            if i > 0 {
                s.id = extra_ids[i - 1];
            }
            let w = self.pool.width(term);
            let cv = self.pool.constant(v, w);
            let eq = self.pool.binary(BinOp::Eq, term, cv);
            s.assume(eq);
            match f(self, &mut s, v) {
                Ok(()) => successors.push(s),
                Err(report) => {
                    if first_bug.is_none() {
                        first_bug = Some(report);
                    }
                }
            }
        }
        match first_bug {
            Some(report) => StepOutcome::Bug {
                report,
                continuation: if successors.len() == 1 {
                    successors.pop()
                } else if successors.is_empty() {
                    None
                } else {
                    // Multiple survivors alongside a bug: fold into a
                    // fork by reporting the bug and keeping the first
                    // survivor; remaining survivors are rare (exhaustive
                    // policy) and acceptable to drop with a note.
                    successors.truncate(1);
                    successors.pop()
                },
            },
            None => {
                if successors.len() == 1 {
                    StepOutcome::ContinueWith(successors.pop().unwrap())
                } else {
                    StepOutcome::Fork(successors)
                }
            }
        }
    }

    fn alu_term(&mut self, op: AluOp, a: TermId, b: TermId) -> TermId {
        let p = &mut self.pool;
        match op {
            AluOp::Add => p.binary(BinOp::Add, a, b),
            AluOp::Sub => p.binary(BinOp::Sub, a, b),
            AluOp::And => p.binary(BinOp::And, a, b),
            AluOp::Or => p.binary(BinOp::Or, a, b),
            AluOp::Xor => p.binary(BinOp::Xor, a, b),
            AluOp::Mul => p.binary(BinOp::Mul, a, b),
            AluOp::Shl | AluOp::Shr | AluOp::Sra => {
                let m31 = p.constant(31, 32);
                let sh = p.binary(BinOp::And, b, m31);
                let bop = match op {
                    AluOp::Shl => BinOp::Shl,
                    AluOp::Shr => BinOp::Lshr,
                    _ => BinOp::Ashr,
                };
                p.binary(bop, a, sh)
            }
        }
    }

    fn cond_term(&mut self, c: Cond, a: TermId, b: TermId) -> TermId {
        let p = &mut self.pool;
        match c {
            Cond::Eq => p.binary(BinOp::Eq, a, b),
            Cond::Ne => {
                let e = p.binary(BinOp::Eq, a, b);
                p.unary(UnOp::Not, e)
            }
            Cond::Lt => p.binary(BinOp::Slt, a, b),
            Cond::Ge => {
                let l = p.binary(BinOp::Slt, a, b);
                p.unary(UnOp::Not, l)
            }
            Cond::Ltu => p.binary(BinOp::Ult, a, b),
            Cond::Geu => {
                let l = p.binary(BinOp::Ult, a, b);
                p.unary(UnOp::Not, l)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardsnap_isa::assemble;

    fn exec_program(src: &str, policy: Concretization, max_steps: usize) -> ExecRunResult {
        let prog = assemble(src).unwrap();
        let mut ex = Executor::new(policy);
        let init = ex.initial_state(prog.image.clone(), prog.entry);
        let mut worklist = vec![init];
        let mut halted = Vec::new();
        let mut bugs = Vec::new();
        let mut steps = 0;
        let mut hw = NoSymMmio;
        while let Some(state) = worklist.pop() {
            if steps >= max_steps {
                break;
            }
            steps += 1;
            match ex.step(state, &mut hw) {
                StepOutcome::ContinueWith(s) => worklist.push(s),
                StepOutcome::Fork(ss) => worklist.extend(ss),
                StepOutcome::Halted(s) => halted.push(s),
                StepOutcome::Bug {
                    report,
                    continuation,
                } => {
                    bugs.push(report);
                    if let Some(c) = continuation {
                        worklist.push(c);
                    }
                }
            }
        }
        ExecRunResult {
            halted: halted.len(),
            bugs,
            executor: ex,
        }
    }

    struct ExecRunResult {
        halted: usize,
        bugs: Vec<BugReport>,
        executor: Executor,
    }

    #[test]
    fn concrete_program_runs_without_solver() {
        let r = exec_program(
            r#"
            .org 0x100
            entry:
                movi r1, #21
                movi r2, #2
                mul r3, r1, r2
                halt
            "#,
            Concretization::Minimal,
            100,
        );
        assert_eq!(r.halted, 1);
        assert!(r.bugs.is_empty());
        assert_eq!(
            r.executor.solver.stats.queries, 0,
            "no solver use on concrete path"
        );
    }

    #[test]
    fn symbolic_branch_forks_two_paths() {
        let r = exec_program(
            r#"
            .org 0x100
            entry:
                sym r1, #0
                movi r2, #10
                blt r1, r2, small
                halt
            small:
                halt
            "#,
            Concretization::Minimal,
            100,
        );
        assert_eq!(r.halted, 2, "both sides feasible");
        assert_eq!(r.executor.stats.forks, 1);
    }

    #[test]
    fn nested_branches_explore_all_paths() {
        // 3 symbolic branches => 8 paths.
        let r = exec_program(
            r#"
            .org 0x100
            entry:
                sym r1, #0
                sym r2, #1
                sym r3, #2
                movi r4, #0
                beq r1, r4, a
            a:
                beq r2, r4, b
            b:
                beq r3, r4, c
            c:
                halt
            "#,
            Concretization::Minimal,
            1000,
        );
        assert_eq!(r.halted, 8);
    }

    #[test]
    fn assert_reports_bug_with_testcase() {
        let r = exec_program(
            r#"
            .org 0x100
            entry:
                sym r1, #0
                movi r2, #42
                sub r3, r1, r2
                assert r3        ; fails iff r1 == 42
                halt
            "#,
            Concretization::Minimal,
            100,
        );
        assert_eq!(r.bugs.len(), 1);
        let bug = &r.bugs[0];
        assert_eq!(bug.kind, BugKind::AssertFailed);
        let tc = bug.testcase.as_ref().expect("testcase");
        let (name, v) = tc.iter().next().expect("one symbolic input");
        assert!(name.starts_with("sym0"));
        assert_eq!(v, 42, "the reproducing input is exactly 42");
        // And the non-failing continuation survived to halt.
        assert_eq!(r.halted, 1);
    }

    #[test]
    fn fail_marker_is_reported_when_reachable() {
        let r = exec_program(
            r#"
            .org 0x100
            entry:
                sym r1, #0
                movi r2, #7
                bne r1, r2, ok
                fail
            ok:
                halt
            "#,
            Concretization::Minimal,
            100,
        );
        assert_eq!(r.bugs.len(), 1);
        assert_eq!(r.bugs[0].kind, BugKind::FailHit);
        let tc = r.bugs[0].testcase.as_ref().unwrap();
        let (_, v) = tc.iter().next().unwrap();
        assert_eq!(v, 7);
        assert_eq!(r.halted, 1);
    }

    #[test]
    fn unmapped_access_is_detected() {
        let r = exec_program(
            r#"
            .org 0x100
            entry:
                li r1, 0x30000000
                ldw r2, [r1]
                halt
            "#,
            Concretization::Minimal,
            100,
        );
        assert_eq!(r.bugs.len(), 1);
        assert_eq!(r.bugs[0].kind, BugKind::Unmapped);
    }

    #[test]
    fn symbolic_address_concretizes_minimal() {
        // Store through a symbolic (but constrained) pointer.
        let r = exec_program(
            r#"
            .org 0x100
            entry:
                sym r1, #0
                andi r1, r1, #0xFC    ; 4-aligned, < 256: stays in RAM
                movi r2, #99
                stw r2, [r1, #0x1000]
                halt
            "#,
            Concretization::Minimal,
            100,
        );
        assert!(r.bugs.is_empty(), "{:?}", r.bugs);
        assert_eq!(r.halted, 1);
        assert!(r.executor.stats.concretizations >= 1);
    }

    #[test]
    fn exhaustive_policy_forks_over_addresses() {
        // r1 in {0,4} via masking; exhaustive policy must fork 2 ways.
        let r = exec_program(
            r#"
            .org 0x100
            entry:
                sym r1, #0
                andi r1, r1, #4      ; r1 in {0, 4}
                movi r2, #1
                stw r2, [r1, #0x1000]
                halt
            "#,
            Concretization::Exhaustive(8),
            100,
        );
        assert!(r.bugs.is_empty());
        assert_eq!(r.halted, 2, "one path per concrete address");
    }

    #[test]
    fn interrupt_entry_and_iret() {
        let prog = assemble(
            r#"
            .org 0x0
            .word isr, 0, 0, 0, 0, 0, 0, 0
            .org 0x100
            entry:
                sei
                nop
                halt
            isr:
                movi r5, #1
                iret
            "#,
        )
        .unwrap();
        let mut ex = Executor::new(Concretization::Minimal);
        let mut s = ex.initial_state(prog.image.clone(), prog.entry);
        let mut hw = NoSymMmio;
        // Execute `sei`.
        s = match ex.step(s, &mut hw) {
            StepOutcome::ContinueWith(s) => s,
            other => panic!("{other:?}"),
        };
        assert!(s.irq_enabled);
        let line = ex.enter_irq(&mut s, 0b1);
        assert_eq!(line, Some(0));
        assert!(s.in_isr);
        // movi r5.
        s = match ex.step(s, &mut hw) {
            StepOutcome::ContinueWith(s) => s,
            other => panic!("{other:?}"),
        };
        // iret.
        s = match ex.step(s, &mut hw) {
            StepOutcome::ContinueWith(s) => s,
            other => panic!("{other:?}"),
        };
        assert!(!s.in_isr);
        assert_eq!(ex.pool.as_const(s.reg(5)), Some(1));
    }

    #[test]
    fn console_output_is_captured() {
        let prog = assemble(".org 0x100\nentry:\n movi r1, #65\n putc r1\n halt\n").unwrap();
        let mut ex = Executor::new(Concretization::Minimal);
        let mut s = ex.initial_state(prog.image.clone(), prog.entry);
        let mut hw = NoSymMmio;
        for _ in 0..2 {
            s = match ex.step(s, &mut hw) {
                StepOutcome::ContinueWith(s) => s,
                other => panic!("{other:?}"),
            };
        }
        assert_eq!(s.console, b"A");
    }
}
