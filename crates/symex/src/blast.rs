//! Bit-blasting: lowering bit-vector terms to CNF (Tseitin encoding).
//!
//! Each term becomes a vector of SAT literals, one per bit; adders are
//! ripple-carry, multipliers shift-and-add, variable shifts barrel
//! shifters. Formulas arising from firmware path constraints are small,
//! so clarity is preferred over encoding minimality.

use crate::expr::{BinOp, Term, TermId, TermPool, UnOp};
use crate::sat::{Lit, SatResult, SatSolver};
use std::collections::HashMap;

/// A bit-blasting context over one SAT instance.
pub struct Blaster<'p> {
    pool: &'p TermPool,
    /// The SAT solver being filled.
    pub sat: SatSolver,
    bits: HashMap<TermId, Vec<Lit>>,
    var_bits: HashMap<String, Vec<Lit>>,
    tru: Lit,
}

impl<'p> Blaster<'p> {
    /// Creates a blasting context for terms of `pool`.
    pub fn new(pool: &'p TermPool) -> Self {
        let mut sat = SatSolver::new();
        let t = sat.new_var();
        let tru = Lit::pos(t);
        sat.add_clause(&[tru]);
        Blaster {
            pool,
            sat,
            bits: HashMap::new(),
            var_bits: HashMap::new(),
            tru,
        }
    }

    fn lit_const(&self, b: bool) -> Lit {
        if b {
            self.tru
        } else {
            self.tru.negate()
        }
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.sat.new_var())
    }

    fn and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.tru {
            return b;
        }
        if b == self.tru {
            return a;
        }
        if a == self.tru.negate() || b == self.tru.negate() {
            return self.tru.negate();
        }
        let y = self.fresh();
        self.sat.add_clause(&[a.negate(), b.negate(), y]);
        self.sat.add_clause(&[a, y.negate()]);
        self.sat.add_clause(&[b, y.negate()]);
        y
    }

    fn or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        self.and_gate(a.negate(), b.negate()).negate()
    }

    fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.tru {
            return b.negate();
        }
        if a == self.tru.negate() {
            return b;
        }
        if b == self.tru {
            return a.negate();
        }
        if b == self.tru.negate() {
            return a;
        }
        let y = self.fresh();
        self.sat.add_clause(&[a.negate(), b.negate(), y.negate()]);
        self.sat.add_clause(&[a, b, y.negate()]);
        self.sat.add_clause(&[a.negate(), b, y]);
        self.sat.add_clause(&[a, b.negate(), y]);
        y
    }

    /// `c ? t : e` on single literals.
    fn mux_gate(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        if c == self.tru {
            return t;
        }
        if c == self.tru.negate() {
            return e;
        }
        if t == e {
            return t;
        }
        let a = self.and_gate(c, t);
        let b = self.and_gate(c.negate(), e);
        self.or_gate(a, b)
    }

    fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.xor_gate(a, b);
        let sum = self.xor_gate(axb, cin);
        let ab = self.and_gate(a, b);
        let axb_c = self.and_gate(axb, cin);
        let carry = self.or_gate(ab, axb_c);
        (sum, carry)
    }

    fn add_vec(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> Vec<Lit> {
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(a[i], b[i], carry);
            out.push(s);
            carry = c;
        }
        out
    }

    /// Unsigned `a < b` as a literal (via subtraction borrow).
    fn ult(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        // a < b  <=>  a + ~b + 1 has carry-out 0.
        let nb: Vec<Lit> = b.iter().map(|l| l.negate()).collect();
        let mut carry = self.tru;
        for i in 0..a.len() {
            let (_, c) = self.full_adder(a[i], nb[i], carry);
            carry = c;
        }
        carry.negate()
    }

    /// Blasts a term to its bit vector (LSB first), memoized.
    pub fn blast(&mut self, id: TermId) -> Vec<Lit> {
        if let Some(b) = self.bits.get(&id) {
            return b.clone();
        }
        let w = self.pool.width(id) as usize;
        let result: Vec<Lit> = match self.pool.term(id).clone() {
            Term::Const { value, .. } => (0..w)
                .map(|i| self.lit_const((value >> i) & 1 == 1))
                .collect(),
            Term::Var { name, .. } => {
                if let Some(b) = self.var_bits.get(&name) {
                    b.clone()
                } else {
                    let bits: Vec<Lit> = (0..w).map(|_| self.fresh()).collect();
                    self.var_bits.insert(name.clone(), bits.clone());
                    bits
                }
            }
            Term::Unary { op, a } => {
                let av = self.blast(a);
                match op {
                    UnOp::Not => av.iter().map(|l| l.negate()).collect(),
                    UnOp::Neg => {
                        // -a = ~a + 1
                        let na: Vec<Lit> = av.iter().map(|l| l.negate()).collect();
                        let zeros: Vec<Lit> = vec![self.lit_const(false); w];
                        self.add_vec(&na, &zeros, self.tru)
                    }
                }
            }
            Term::Binary { op, a, b } => {
                let av = self.blast(a);
                let bv = self.blast(b);
                match op {
                    BinOp::Add => self.add_vec(&av, &bv, self.lit_const(false)),
                    BinOp::Sub => {
                        let nb: Vec<Lit> = bv.iter().map(|l| l.negate()).collect();
                        self.add_vec(&av, &nb, self.tru)
                    }
                    BinOp::Mul => {
                        let mut acc: Vec<Lit> = vec![self.lit_const(false); w];
                        for (i, &bi) in bv.iter().enumerate() {
                            // partial = (a << i) & replicate(bi)
                            let mut partial = vec![self.lit_const(false); w];
                            for j in 0..(w - i) {
                                partial[i + j] = self.and_gate(av[j], bi);
                            }
                            acc = self.add_vec(&acc, &partial, self.lit_const(false));
                        }
                        acc
                    }
                    BinOp::And => av
                        .iter()
                        .zip(&bv)
                        .map(|(&x, &y)| self.and_gate(x, y))
                        .collect(),
                    BinOp::Or => av
                        .iter()
                        .zip(&bv)
                        .map(|(&x, &y)| self.or_gate(x, y))
                        .collect(),
                    BinOp::Xor => av
                        .iter()
                        .zip(&bv)
                        .map(|(&x, &y)| self.xor_gate(x, y))
                        .collect(),
                    BinOp::Shl | BinOp::Lshr | BinOp::Ashr => self.barrel_shift(op, &av, &bv),
                    BinOp::Eq => {
                        let mut acc = self.tru;
                        for (x, y) in av.iter().zip(&bv) {
                            let eq = self.xor_gate(*x, *y).negate();
                            acc = self.and_gate(acc, eq);
                        }
                        vec![acc]
                    }
                    BinOp::Ult => vec![self.ult(&av, &bv)],
                    BinOp::Slt => {
                        // Flip sign bits, then unsigned compare.
                        let mut af = av.clone();
                        let mut bf = bv.clone();
                        let n = af.len();
                        af[n - 1] = af[n - 1].negate();
                        bf[n - 1] = bf[n - 1].negate();
                        vec![self.ult(&af, &bf)]
                    }
                }
            }
            Term::Ite { c, t, e } => {
                let cv = self.blast(c)[0];
                let tv = self.blast(t);
                let ev = self.blast(e);
                tv.iter()
                    .zip(&ev)
                    .map(|(&x, &y)| self.mux_gate(cv, x, y))
                    .collect()
            }
            Term::Extract { a, hi: _, lo } => {
                let av = self.blast(a);
                av[lo as usize..lo as usize + w].to_vec()
            }
            Term::Concat { hi, lo } => {
                let mut lv = self.blast(lo);
                lv.extend(self.blast(hi));
                lv
            }
            Term::ZExt { a, .. } => {
                let mut av = self.blast(a);
                while av.len() < w {
                    av.push(self.lit_const(false));
                }
                av
            }
        };
        debug_assert_eq!(result.len(), w);
        self.bits.insert(id, result.clone());
        result
    }

    fn barrel_shift(&mut self, op: BinOp, a: &[Lit], sh: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let fill_top = if op == BinOp::Ashr {
            a[w - 1]
        } else {
            self.lit_const(false)
        };
        let mut cur = a.to_vec();
        // Stages for shift-amount bits that are < bits needed to cover w.
        let stages = 64 - (w as u64 - 1).leading_zeros() as usize;
        for (s, &sbit) in sh.iter().enumerate().take(stages) {
            let amount = 1usize << s;
            let mut next = vec![self.lit_const(false); w];
            for i in 0..w {
                let shifted = match op {
                    BinOp::Shl => {
                        if i >= amount {
                            cur[i - amount]
                        } else {
                            self.lit_const(false)
                        }
                    }
                    BinOp::Lshr => {
                        if i + amount < w {
                            cur[i + amount]
                        } else {
                            self.lit_const(false)
                        }
                    }
                    BinOp::Ashr => {
                        if i + amount < w {
                            cur[i + amount]
                        } else {
                            fill_top
                        }
                    }
                    _ => unreachable!(),
                };
                next[i] = self.mux_gate(sbit, shifted, cur[i]);
            }
            cur = next;
        }
        // Any higher shift bit set => result is all-fill (0 or sign).
        let mut high = self.lit_const(false);
        for &sbit in sh.iter().skip(stages) {
            high = self.or_gate(high, sbit);
        }
        if high != self.lit_const(false) {
            let fill = if op == BinOp::Ashr {
                fill_top
            } else {
                self.lit_const(false)
            };
            cur = cur.iter().map(|&b| self.mux_gate(high, fill, b)).collect();
        }
        cur
    }

    /// Asserts that a 1-bit term is true.
    pub fn assert_true(&mut self, id: TermId) {
        debug_assert_eq!(self.pool.width(id), 1);
        let b = self.blast(id);
        self.sat.add_clause(&[b[0]]);
    }

    /// Solves; on SAT returns a model mapping variable names to values.
    pub fn solve(&mut self) -> Option<HashMap<String, u64>> {
        match self.sat.solve() {
            SatResult::Unsat => None,
            SatResult::Sat(assignment) => {
                let mut env = HashMap::new();
                for (name, bits) in &self.var_bits {
                    let mut v = 0u64;
                    for (i, l) in bits.iter().enumerate() {
                        let bit = assignment[l.var() as usize] ^ l.is_neg();
                        if bit {
                            v |= 1 << i;
                        }
                    }
                    env.insert(name.clone(), v);
                }
                Some(env)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    /// Checks a 1-bit formula for satisfiability and verifies the model
    /// by concrete evaluation.
    fn check(pool: &TermPool, assertion: TermId) -> Option<HashMap<String, u64>> {
        let mut b = Blaster::new(pool);
        b.assert_true(assertion);
        let model = b.solve()?;
        assert_eq!(
            pool.eval(assertion, &model),
            1,
            "model must satisfy the formula"
        );
        Some(model)
    }

    #[test]
    fn solve_linear_equation() {
        // x + 5 == 12  =>  x == 7
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let c5 = p.constant(5, 32);
        let c12 = p.constant(12, 32);
        let sum = p.binary(BinOp::Add, x, c5);
        let eq = p.binary(BinOp::Eq, sum, c12);
        let m = check(&p, eq).expect("sat");
        assert_eq!(m["x"], 7);
    }

    #[test]
    fn unsat_contradiction() {
        let mut p = TermPool::new();
        let x = p.var("x", 16);
        let c1 = p.constant(1, 16);
        let c2 = p.constant(2, 16);
        let e1 = p.binary(BinOp::Eq, x, c1);
        let e2 = p.binary(BinOp::Eq, x, c2);
        let both = p.and_cond(e1, e2);
        assert!(check(&p, both).is_none());
    }

    #[test]
    fn multiplication_inverts() {
        // x * 3 == 21 over 8 bits
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let c3 = p.constant(3, 8);
        let c21 = p.constant(21, 8);
        let prod = p.binary(BinOp::Mul, x, c3);
        let eq = p.binary(BinOp::Eq, prod, c21);
        let m = check(&p, eq).expect("sat");
        // 8-bit: x=7 or x=... 3x=21 mod 256: x=7 or 7+256/gcd(3,256)=no
        // other; 3 is invertible mod 256, so x must be 7... times inverse.
        assert_eq!((m["x"] * 3) & 0xff, 21);
    }

    #[test]
    fn unsigned_and_signed_comparisons_differ() {
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let c1 = p.constant(1, 8);
        // x < 1 unsigned and x != 0 is unsat.
        let ult = p.binary(BinOp::Ult, x, c1);
        let zero = p.constant(0, 8);
        let eq0 = p.binary(BinOp::Eq, x, zero);
        let ne0 = p.not_cond(eq0);
        let both = p.and_cond(ult, ne0);
        assert!(check(&p, both).is_none());
        // x < 1 signed with x != 0 is sat (e.g. x = -5).
        let slt = p.binary(BinOp::Slt, x, c1);
        let both = p.and_cond(slt, ne0);
        let m = check(&p, both).expect("sat");
        assert!(
            m["x"] >= 0x80 || m["x"] == 0,
            "negative 8-bit value, got {:#x}",
            m["x"]
        );
    }

    #[test]
    fn variable_shift_solves() {
        // (1 << s) == 32  =>  s == 5
        let mut p = TermPool::new();
        let s = p.var("s", 8);
        let one = p.constant(1, 8);
        let c32 = p.constant(32, 8);
        let sh = p.binary(BinOp::Shl, one, s);
        let eq = p.binary(BinOp::Eq, sh, c32);
        let m = check(&p, eq).expect("sat");
        assert_eq!(m["s"], 5);
    }

    #[test]
    fn ashr_fills_with_sign() {
        // (x >>> 4) == 0xF8  with 8-bit x  => x has sign bit set.
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let c4 = p.constant(4, 8);
        let cf8 = p.constant(0xf8, 8);
        let sh = p.binary(BinOp::Ashr, x, c4);
        let eq = p.binary(BinOp::Eq, sh, cf8);
        let m = check(&p, eq).expect("sat");
        assert!(m["x"] & 0x80 != 0);
        assert_eq!((m["x"] >> 4) | 0xf0, 0xf8 | 0xf0);
    }

    #[test]
    fn ite_constraints() {
        // (c ? x : y) == 9 && x == 1 && y == 9  =>  c must be false.
        let mut p = TermPool::new();
        let c = p.var("c", 1);
        let x = p.var("x", 8);
        let y = p.var("y", 8);
        let sel = p.ite(c, x, y);
        let c9 = p.constant(9, 8);
        let c1 = p.constant(1, 8);
        let e1 = p.binary(BinOp::Eq, sel, c9);
        let e2 = p.binary(BinOp::Eq, x, c1);
        let e3 = p.binary(BinOp::Eq, y, c9);
        let mut all = p.and_cond(e1, e2);
        all = p.and_cond(all, e3);
        let m = check(&p, all).expect("sat");
        assert_eq!(m["c"], 0);
    }

    #[test]
    fn extract_concat_roundtrip_constraint() {
        // {hi, lo} == 0xBEEF => hi == 0xBE, lo == 0xEF.
        let mut p = TermPool::new();
        let hi = p.var("hi", 8);
        let lo = p.var("lo", 8);
        let cc = p.concat(hi, lo);
        let beef = p.constant(0xbeef, 16);
        let eq = p.binary(BinOp::Eq, cc, beef);
        let m = check(&p, eq).expect("sat");
        assert_eq!(m["hi"], 0xbe);
        assert_eq!(m["lo"], 0xef);
    }

    #[test]
    fn random_differential_against_eval() {
        let mut rng = hardsnap_util::Rng::seed_from_u64(99);
        for _ in 0..20 {
            let mut p = TermPool::new();
            let x = p.var("x", 16);
            let y = p.var("y", 16);
            // Build a random expression tree of depth 3.
            let build = |p: &mut TermPool, rng: &mut hardsnap_util::Rng| {
                let ops = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                ];
                let mut t = if rng.gen_bool(0.5) { x } else { y };
                for _ in 0..3 {
                    let op = ops[rng.gen_range(0..ops.len())];
                    let rhs = match rng.gen_range(0..3) {
                        0 => x,
                        1 => y,
                        _ => p.constant(rng.gen::<u16>() as u64, 16),
                    };
                    t = p.binary(op, t, rhs);
                }
                t
            };
            let t = build(&mut p, &mut rng);
            // Pick concrete inputs, compute expected output, assert
            // equality, and confirm the solver finds a model.
            let cx = rng.gen::<u16>() as u64;
            let cy = rng.gen::<u16>() as u64;
            let mut env = HashMap::new();
            env.insert("x".to_string(), cx);
            env.insert("y".to_string(), cy);
            let expected = p.eval(t, &env);
            let cxx = p.constant(cx, 16);
            let cyy = p.constant(cy, 16);
            let cexp = p.constant(expected, 16);
            let ex = p.binary(BinOp::Eq, x, cxx);
            let ey = p.binary(BinOp::Eq, y, cyy);
            let et = p.binary(BinOp::Eq, t, cexp);
            let mut all = p.and_cond(ex, ey);
            all = p.and_cond(all, et);
            assert!(
                check(&p, all).is_some(),
                "consistent assignment must be sat"
            );
        }
    }
}
