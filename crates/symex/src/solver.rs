//! High-level bit-vector solver API over the bit-blaster and SAT core.
//!
//! This is the component the symbolic executor talks to: satisfiability
//! of path constraints, model (test-case) extraction, and bounded value
//! enumeration for the concretization policy (paper §III-B).

use crate::blast::Blaster;
use crate::expr::{BinOp, TermId, TermPool};
use std::collections::HashMap;
use std::time::Instant;

/// A satisfying assignment (variable name → value).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<String, u64>,
}

impl Model {
    /// Value of a variable (unconstrained variables default to 0, the
    /// same completion rule [`TermPool::eval`] uses).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Evaluates an arbitrary term under this model.
    pub fn eval(&self, pool: &TermPool, term: TermId) -> u64 {
        pool.eval(term, &self.values)
    }

    /// Iterates over assigned variables.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

impl From<HashMap<String, u64>> for Model {
    fn from(values: HashMap<String, u64>) -> Self {
        Model { values }
    }
}

/// Query outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryResult {
    /// Satisfiable with a model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
}

impl QueryResult {
    /// True if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, QueryResult::Sat(_))
    }
}

/// Cumulative solver statistics (reported by the evaluation harnesses).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Total queries issued.
    pub queries: u64,
    /// Of which satisfiable.
    pub sat: u64,
    /// Of which unsatisfiable.
    pub unsat: u64,
    /// Total solving time in microseconds.
    pub time_us: u64,
}

/// The bit-vector decision procedure (bit-blasting + CDCL).
#[derive(Clone, Debug, Default)]
pub struct BvSolver {
    /// Statistics accumulated across queries.
    pub stats: SolverStats,
}

impl BvSolver {
    /// Creates a solver.
    pub fn new() -> Self {
        BvSolver::default()
    }

    /// Checks the conjunction of 1-bit `assertions`.
    pub fn check(&mut self, pool: &TermPool, assertions: &[TermId]) -> QueryResult {
        let start = Instant::now();
        // Fast path: constant-false assertion.
        for &a in assertions {
            if pool.as_const(a) == Some(0) {
                self.stats.queries += 1;
                self.stats.unsat += 1;
                self.stats.time_us += start.elapsed().as_micros() as u64;
                return QueryResult::Unsat;
            }
        }
        let mut blaster = Blaster::new(pool);
        for &a in assertions {
            if pool.as_const(a) == Some(1) {
                continue;
            }
            blaster.assert_true(a);
        }
        let result = match blaster.solve() {
            Some(env) => {
                self.stats.sat += 1;
                QueryResult::Sat(Model { values: env })
            }
            None => {
                self.stats.unsat += 1;
                QueryResult::Unsat
            }
        };
        self.stats.queries += 1;
        self.stats.time_us += start.elapsed().as_micros() as u64;
        result
    }

    /// Checks `assertions ∧ extra`.
    pub fn check_with(
        &mut self,
        pool: &TermPool,
        assertions: &[TermId],
        extra: TermId,
    ) -> QueryResult {
        let mut all = assertions.to_vec();
        all.push(extra);
        self.check(pool, &all)
    }

    /// Enumerates up to `max` distinct values of `term` under
    /// `assertions` (the exhaustive concretization policy). Values are
    /// returned in discovery order.
    pub fn solutions(
        &mut self,
        pool: &mut TermPool,
        assertions: &[TermId],
        term: TermId,
        max: usize,
    ) -> Vec<u64> {
        let mut found = Vec::new();
        let mut constraints = assertions.to_vec();
        while found.len() < max {
            match self.check(pool, &constraints) {
                QueryResult::Unsat => break,
                QueryResult::Sat(model) => {
                    let v = model.eval(pool, term);
                    found.push(v);
                    let w = pool.width(term);
                    let cv = pool.constant(v, w);
                    let eq = pool.binary(BinOp::Eq, term, cv);
                    let ne = pool.not_cond(eq);
                    constraints.push(ne);
                }
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    #[test]
    fn check_sat_and_model() {
        let mut p = TermPool::new();
        let mut s = BvSolver::new();
        let x = p.var("x", 32);
        let c = p.constant(0x1000, 32);
        let lt = p.binary(BinOp::Ult, x, c);
        let c0 = p.constant(0xf00, 32);
        let gt = p.binary(BinOp::Ult, c0, x);
        match s.check(&p, &[lt, gt]) {
            QueryResult::Sat(m) => {
                let v = m.get("x");
                assert!(v > 0xf00 && v < 0x1000);
            }
            QueryResult::Unsat => panic!(),
        }
        assert_eq!(s.stats.queries, 1);
        assert_eq!(s.stats.sat, 1);
    }

    #[test]
    fn constant_false_shortcircuits() {
        let mut p = TermPool::new();
        let mut s = BvSolver::new();
        let f = p.fls();
        assert_eq!(s.check(&p, &[f]), QueryResult::Unsat);
        assert_eq!(s.stats.unsat, 1);
    }

    #[test]
    fn solutions_enumerates_bounded() {
        // x & 0xFC == 0x10  =>  x in {0x10, 0x11, 0x12, 0x13}
        let mut p = TermPool::new();
        let mut s = BvSolver::new();
        let x = p.var("x", 8);
        let mask = p.constant(0xfc, 8);
        let c10 = p.constant(0x10, 8);
        let masked = p.binary(BinOp::And, x, mask);
        let eq = p.binary(BinOp::Eq, masked, c10);
        let mut sols = s.solutions(&mut p, &[eq], x, 10);
        sols.sort_unstable();
        assert_eq!(sols, vec![0x10, 0x11, 0x12, 0x13]);
    }

    #[test]
    fn solutions_respects_max() {
        let mut p = TermPool::new();
        let mut s = BvSolver::new();
        let x = p.var("x", 8);
        let t = p.tru();
        let _ = t;
        let sols = s.solutions(&mut p, &[], x, 3);
        assert_eq!(sols.len(), 3);
        let unique: std::collections::HashSet<_> = sols.iter().collect();
        assert_eq!(unique.len(), 3, "values must be distinct");
    }

    #[test]
    fn model_eval_of_composite_terms() {
        let mut p = TermPool::new();
        let mut s = BvSolver::new();
        let x = p.var("x", 16);
        let c3 = p.constant(3, 16);
        let c30 = p.constant(30, 16);
        let e = p.binary(BinOp::Mul, x, c3);
        let eq = p.binary(BinOp::Eq, e, c30);
        match s.check(&p, &[eq]) {
            QueryResult::Sat(m) => {
                assert_eq!(m.eval(&p, e), 30);
            }
            QueryResult::Unsat => panic!(),
        }
    }
}
