//! # hardsnap-symex
//!
//! Symbolic execution engine for HS32 firmware — the reproduction's
//! stand-in for Inception's KLEE-based virtual machine, built from
//! scratch: hash-consed bit-vector terms ([`TermPool`]), a bit-blaster,
//! a CDCL SAT solver, a bit-vector decision procedure ([`BvSolver`]),
//! symbolic machine states ([`SymState`]) and the per-instruction
//! symbolic [`Executor`] with forking, KLEE-style memory-error
//! detectors, MMIO forwarding across the VM boundary ([`SymMmio`]) and
//! the user-selectable [`Concretization`] policy of the paper (§III-B).
//!
//! The scheduling loop that owns hardware snapshots (Algorithm 1) lives
//! in the `hardsnap` core crate.
//!
//! ## Example: finding the magic input
//!
//! ```
//! use hardsnap_symex::{Concretization, Executor, StepOutcome, NoSymMmio, BugKind};
//! let prog = hardsnap_isa::assemble(r#"
//!     .org 0x100
//!     entry:
//!         sym r1, #0
//!         movi r2, #1234
//!         bne r1, r2, ok
//!         fail
//!     ok: halt
//! "#).unwrap();
//! let mut ex = Executor::new(Concretization::Minimal);
//! let mut worklist = vec![ex.initial_state(prog.image.clone(), prog.entry)];
//! let mut hw = NoSymMmio;
//! let mut found = None;
//! while let Some(s) = worklist.pop() {
//!     match ex.step(s, &mut hw) {
//!         StepOutcome::ContinueWith(s) => worklist.push(s),
//!         StepOutcome::Fork(ss) => worklist.extend(ss),
//!         StepOutcome::Halted(_) => {}
//!         StepOutcome::Bug { report, continuation } => {
//!             found = Some(report);
//!             worklist.extend(continuation);
//!         }
//!     }
//! }
//! let bug = found.expect("bug found");
//! assert_eq!(bug.kind, BugKind::FailHit);
//! let (_, v) = bug.testcase.unwrap().iter().next().unwrap();
//! assert_eq!(v, 1234); // the engine synthesized the magic input
//! ```

#![warn(missing_docs)]

pub mod blast;
pub mod exec;
pub mod expr;
pub mod portable;
pub mod sat;
pub mod solver;
pub mod state;

pub use blast::Blaster;
pub use exec::{
    BugKind, BugReport, Concretization, ExecStats, Executor, NoSymMmio, StepOutcome, SymMmio,
};
pub use expr::{BinOp, Term, TermId, TermPool, UnOp};
pub use portable::{PortableState, PortableTerm};
pub use sat::{Lit, SatResult, SatSolver};
pub use solver::{BvSolver, Model, QueryResult, SolverStats};
pub use state::{StateId, SymMemory, SymState};
