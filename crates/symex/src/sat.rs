//! A CDCL SAT solver (two watched literals, first-UIP clause learning,
//! VSIDS-style activities, geometric restarts, phase saving).
//!
//! This is the decision-procedure substrate under the bit-vector solver
//! — the reproduction's stand-in for the STP/Z3 backend KLEE uses. It is
//! deliberately a classic, readable CDCL core; the formulas produced by
//! firmware path constraints are small by SAT standards.

/// A literal: variable index shifted left, low bit = negated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// Positive literal of variable `v`.
    pub fn pos(v: u32) -> Lit {
        Lit(v << 1)
    }

    /// Negative literal of variable `v`.
    pub fn neg(v: u32) -> Lit {
        Lit((v << 1) | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// True if this is the negated polarity.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl std::fmt::Debug for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", if self.is_neg() { "¬" } else { "" }, self.var())
    }
}

/// Solver outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable with the given assignment (index = variable).
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Val {
    True,
    False,
    Undef,
}

/// A CNF SAT solver instance. Add variables and clauses, then call
/// [`SatSolver::solve`].
pub struct SatSolver {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
    /// watches[lit] = clause indices watching `lit`.
    watches: Vec<Vec<u32>>,
    assign: Vec<Val>,
    /// Saved phase per variable.
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    act_inc: f64,
    unsat: bool,
}

impl Default for SatSolver {
    fn default() -> Self {
        SatSolver::new()
    }
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        SatSolver {
            num_vars: 0,
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: Vec::new(),
            act_inc: 1.0,
            unsat: false,
        }
    }

    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> u32 {
        let v = self.num_vars;
        self.num_vars += 1;
        self.assign.push(Val::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses (including learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause (empty clause makes the instance trivially unsat;
    /// duplicate and tautological literals are handled).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        if self.unsat {
            return;
        }
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        // Tautology?
        for w in c.windows(2) {
            if w[0].var() == w[1].var() {
                return; // x ∨ ¬x
            }
        }
        match c.len() {
            0 => self.unsat = true,
            1 => {
                // Unit at level 0.
                match self.value(c[0]) {
                    Val::True => {}
                    Val::False => self.unsat = true,
                    Val::Undef => self.enqueue(c[0], None),
                }
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[c[0].0 as usize].push(idx);
                self.watches[c[1].0 as usize].push(idx);
                self.clauses.push(c);
            }
        }
    }

    fn value(&self, l: Lit) -> Val {
        match self.assign[l.var() as usize] {
            Val::Undef => Val::Undef,
            Val::True => {
                if l.is_neg() {
                    Val::False
                } else {
                    Val::True
                }
            }
            Val::False => {
                if l.is_neg() {
                    Val::True
                } else {
                    Val::False
                }
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) {
        let v = l.var() as usize;
        self.assign[v] = if l.is_neg() { Val::False } else { Val::True };
        self.phase[v] = !l.is_neg();
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Propagates; returns the index of a conflicting clause if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.prop_head < self.trail.len() {
            let l = self.trail[self.prop_head];
            self.prop_head += 1;
            let false_lit = l.negate();
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.0 as usize]);
            let mut i = 0;
            let mut conflict = None;
            while i < watch_list.len() {
                let ci = watch_list[i] as usize;
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci][1], false_lit);
                let first = self.clauses[ci][0];
                if self.value(first) == Val::True {
                    i += 1;
                    continue;
                }
                // Find a replacement watch among the tail literals.
                let mut found = None;
                for k in 2..self.clauses[ci].len() {
                    if self.value(self.clauses[ci][k]) != Val::False {
                        found = Some(k);
                        break;
                    }
                }
                if let Some(k) = found {
                    self.clauses[ci].swap(1, k);
                    let new_watch = self.clauses[ci][1];
                    self.watches[new_watch.0 as usize].push(ci as u32);
                    watch_list.swap_remove(i);
                    continue;
                }
                if self.value(first) == Val::False {
                    conflict = Some(ci as u32);
                    break;
                }
                self.enqueue(first, Some(ci as u32));
                i += 1;
            }
            self.watches[false_lit.0 as usize] = watch_list;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump(&mut self, v: u32) {
        self.activity[v as usize] += self.act_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis; returns (learned clause, backjump
    /// level).
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit(0)]; // placeholder for UIP
        let mut seen = vec![false; self.num_vars as usize];
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut trail_idx = self.trail.len();

        loop {
            let clause = self.clauses[confl as usize].clone();
            let start = if p.is_none() { 0 } else { 1 };
            for &q in &clause[start..] {
                let v = q.var();
                if !seen[v as usize] && self.level[v as usize] > 0 {
                    seen[v as usize] = true;
                    self.bump(v);
                    if self.level[v as usize] == self.decision_level() {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve.
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if seen[l.var() as usize] {
                    p = Some(l);
                    break;
                }
            }
            counter -= 1;
            if counter == 0 {
                break;
            }
            seen[p.unwrap().var() as usize] = false;
            confl = self.reason[p.unwrap().var() as usize].expect("non-decision");
        }
        learned[0] = p.unwrap().negate();

        // Backjump level: second-highest level in the clause.
        let mut bj = 0;
        if learned.len() > 1 {
            let mut max_i = 1;
            for i in 2..learned.len() {
                if self.level[learned[i].var() as usize] > self.level[learned[max_i].var() as usize]
                {
                    max_i = i;
                }
            }
            learned.swap(1, max_i);
            bj = self.level[learned[1].var() as usize];
        }
        (learned, bj)
    }

    fn backtrack(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().unwrap();
            for l in self.trail.drain(lim..) {
                self.assign[l.var() as usize] = Val::Undef;
                self.reason[l.var() as usize] = None;
            }
        }
        self.prop_head = self.trail.len();
    }

    fn pick_branch(&self) -> Option<Lit> {
        let mut best: Option<u32> = None;
        for v in 0..self.num_vars {
            if self.assign[v as usize] == Val::Undef {
                match best {
                    None => best = Some(v),
                    Some(b) => {
                        if self.activity[v as usize] > self.activity[b as usize] {
                            best = Some(v);
                        }
                    }
                }
            }
        }
        best.map(|v| {
            if self.phase[v as usize] {
                Lit::pos(v)
            } else {
                Lit::neg(v)
            }
        })
    }

    /// Solves the instance.
    pub fn solve(&mut self) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        if self.propagate().is_some() {
            return SatResult::Unsat;
        }
        let mut conflicts_until_restart = 100u64;
        let mut conflicts = 0u64;
        loop {
            match self.propagate() {
                Some(confl) => {
                    conflicts += 1;
                    self.act_inc *= 1.05;
                    if self.decision_level() == 0 {
                        return SatResult::Unsat;
                    }
                    let (learned, bj) = self.analyze(confl);
                    self.backtrack(bj);
                    if learned.len() == 1 {
                        self.enqueue(learned[0], None);
                    } else {
                        let idx = self.clauses.len() as u32;
                        self.watches[learned[0].0 as usize].push(idx);
                        self.watches[learned[1].0 as usize].push(idx);
                        let unit = learned[0];
                        self.clauses.push(learned);
                        self.enqueue(unit, Some(idx));
                    }
                    if conflicts >= conflicts_until_restart {
                        conflicts = 0;
                        conflicts_until_restart = (conflicts_until_restart as f64 * 1.5) as u64;
                        self.backtrack(0);
                    }
                }
                None => match self.pick_branch() {
                    None => {
                        let model = self.assign.iter().map(|&v| v == Val::True).collect();
                        return SatResult::Sat(model);
                    }
                    Some(l) => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, None);
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(xs: &[i32]) -> Vec<Lit> {
        xs.iter()
            .map(|&x| {
                let v = (x.unsigned_abs() - 1) as u32;
                if x > 0 {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                }
            })
            .collect()
    }

    fn solver_with(nvars: u32, clauses: &[&[i32]]) -> SatSolver {
        let mut s = SatSolver::new();
        for _ in 0..nvars {
            s.new_var();
        }
        for c in clauses {
            s.add_clause(&lits(c));
        }
        s
    }

    fn check_model(clauses: &[&[i32]], model: &[bool]) {
        for c in clauses {
            assert!(
                c.iter().any(|&x| {
                    let v = (x.unsigned_abs() - 1) as usize;
                    if x > 0 {
                        model[v]
                    } else {
                        !model[v]
                    }
                }),
                "clause {c:?} unsatisfied by {model:?}"
            );
        }
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = solver_with(1, &[&[1]]);
        assert!(matches!(s.solve(), SatResult::Sat(m) if m[0]));
        let mut s = solver_with(1, &[&[1], &[-1]]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        let cls: &[&[i32]] = &[&[1], &[-1, 2], &[-2, 3], &[-3, 4]];
        let mut s = solver_with(4, cls);
        match s.solve() {
            SatResult::Sat(m) => {
                assert!(m[0] && m[1] && m[2] && m[3]);
                check_model(cls, &m);
            }
            SatResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_ij: pigeon i in hole j. vars: p11=1 p12=2 p21=3 p22=4 p31=5 p32=6
        let cls: &[&[i32]] = &[
            &[1, 2],
            &[3, 4],
            &[5, 6],
            &[-1, -3],
            &[-1, -5],
            &[-3, -5],
            &[-2, -4],
            &[-2, -6],
            &[-4, -6],
        ];
        let mut s = solver_with(6, cls);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn xor_chain_sat_with_model_check() {
        // (a xor b) and (b xor c) and a  => b=!a, c=b xor ... encode xors.
        // a xor b: (a|b)(!a|!b)
        let cls: &[&[i32]] = &[&[1, 2], &[-1, -2], &[2, 3], &[-2, -3], &[1]];
        let mut s = solver_with(3, cls);
        match s.solve() {
            SatResult::Sat(m) => {
                check_model(cls, &m);
                assert!(m[0] && !m[1] && m[2]);
            }
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = solver_with(2, &[&[1, 1, 2], &[1, -1]]);
        assert!(matches!(s.solve(), SatResult::Sat(_)));
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = SatSolver::new();
        s.new_var();
        s.add_clause(&[]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn random_3sat_instances_agree_with_brute_force() {
        let mut rng = hardsnap_util::Rng::seed_from_u64(7);
        for round in 0..60 {
            let nvars = rng.gen_range(3..=10u32);
            let nclauses = rng.gen_range(3..=40);
            let mut clauses: Vec<Vec<i32>> = Vec::new();
            for _ in 0..nclauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = rng.gen_range(1..=nvars as i32);
                    c.push(if rng.gen_bool(0.5) { v } else { -v });
                }
                clauses.push(c);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for bits in 0u32..(1 << nvars) {
                for c in &clauses {
                    let ok = c.iter().any(|&x| {
                        let v = x.unsigned_abs() - 1;
                        let val = (bits >> v) & 1 == 1;
                        if x > 0 {
                            val
                        } else {
                            !val
                        }
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
            let mut s = solver_with(nvars, &refs);
            match s.solve() {
                SatResult::Sat(m) => {
                    assert!(brute_sat, "round {round}: solver sat, brute unsat");
                    check_model(&refs, &m);
                }
                SatResult::Unsat => {
                    assert!(!brute_sat, "round {round}: solver unsat, brute sat");
                }
            }
        }
    }
}
