//! Pool-independent symbolic states for cross-thread transfer.
//!
//! [`TermId`]s are indices into one executor's private [`TermPool`], so
//! a [`SymState`] cannot cross a thread boundary on its own. A
//! [`PortableState`] is the closure of a state's live terms (registers,
//! memory overlay, path constraints) flattened into a self-contained
//! vector with *local* child indices; importing it into another pool
//! rebuilds the terms through the pool's smart constructors.
//!
//! The round trip is structure-preserving: every term in a pool was
//! itself produced by the smart constructors, so it is a fixed point of
//! them, and rebuilding structurally identical children yields
//! structurally identical parents. Executor and solver behaviour depend
//! only on term *structure* (never on raw [`TermId`] values), so a state
//! behaves identically after transfer — the property the parallel
//! engine's determinism guarantee rests on.

use crate::expr::{BinOp, Term, TermId, TermPool, UnOp};
use crate::state::{StateId, SymMemory, SymState};
use hardsnap_bus::MemoryMap;
use std::collections::HashMap;
use std::sync::Arc;

/// One flattened term node; child references are indices into the
/// containing [`PortableState::terms`] vector (always smaller than the
/// node's own index, i.e. the vector is topologically ordered).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PortableTerm {
    /// Constant.
    Const {
        /// Value (normalized to the width).
        value: u64,
        /// Width in bits.
        width: u32,
    },
    /// Free variable.
    Var {
        /// Unique name.
        name: String,
        /// Width in bits.
        width: u32,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand index.
        a: u32,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand index.
        a: u32,
        /// Right operand index.
        b: u32,
    },
    /// If-then-else.
    Ite {
        /// Condition index.
        c: u32,
        /// Then index.
        t: u32,
        /// Else index.
        e: u32,
    },
    /// Bit extraction.
    Extract {
        /// Source index.
        a: u32,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
    },
    /// Concatenation.
    Concat {
        /// More-significant index.
        hi: u32,
        /// Less-significant index.
        lo: u32,
    },
    /// Zero extension.
    ZExt {
        /// Source index.
        a: u32,
        /// Result width.
        width: u32,
    },
}

/// A [`SymState`] detached from its [`TermPool`]: safe to move between
/// threads (the concrete memory base stays shared via `Arc`).
#[derive(Clone, Debug)]
pub struct PortableState {
    /// State id.
    pub id: StateId,
    /// Register terms as indices into [`PortableState::terms`].
    pub regs: [u32; 16],
    /// Program counter.
    pub pc: u32,
    /// Saved PC for `iret`.
    pub epc: u32,
    /// Global interrupt enable.
    pub irq_enabled: bool,
    /// Servicing an interrupt.
    pub in_isr: bool,
    /// Executed `halt`.
    pub halted: bool,
    /// Shared concrete memory base image.
    pub mem_base: Arc<Vec<u8>>,
    /// Memory overlay as `(addr, term index)`, sorted by address.
    pub overlay: Vec<(u32, u32)>,
    /// Path constraints as term indices (in original order).
    pub constraints: Vec<u32>,
    /// Flattened term closure, topologically ordered.
    pub terms: Vec<PortableTerm>,
    /// Owned hardware snapshot id.
    pub hw_snapshot: Option<u64>,
    /// Retired instructions.
    pub instret: u64,
    /// Console bytes.
    pub console: Vec<u8>,
    /// `sym` hypercall count.
    pub sym_count: u32,
    /// Last checkpoint hint.
    pub last_checkpoint: Option<u16>,
    /// Memory map.
    pub map: MemoryMap,
    /// Fork counter (see [`SymState::next_fork_id`]).
    pub fork_nonce: u64,
}

impl PortableState {
    /// Flattens `state` out of `pool` into a self-contained value.
    pub fn export(pool: &TermPool, state: &SymState) -> PortableState {
        let mut overlay: Vec<(u32, TermId)> = state.mem.overlay_entries().collect();
        overlay.sort_unstable_by_key(|&(a, _)| a);

        // Collect the reachable closure. TermIds are topologically
        // ordered (children are interned before parents), so sorting the
        // closure by TermId gives a valid emission order.
        let mut seen: Vec<TermId> = Vec::new();
        let mut on_stack: HashMap<TermId, ()> = HashMap::new();
        let mut work: Vec<TermId> = Vec::new();
        let roots = state
            .regs
            .iter()
            .copied()
            .chain(overlay.iter().map(|&(_, t)| t))
            .chain(state.constraints.iter().copied());
        for r in roots {
            work.push(r);
        }
        while let Some(t) = work.pop() {
            if on_stack.insert(t, ()).is_some() {
                continue;
            }
            seen.push(t);
            match *pool.term(t) {
                Term::Const { .. } | Term::Var { .. } => {}
                Term::Unary { a, .. } | Term::Extract { a, .. } | Term::ZExt { a, .. } => {
                    work.push(a);
                }
                Term::Binary { a, b, .. } => {
                    work.push(a);
                    work.push(b);
                }
                Term::Ite { c, t, e } => {
                    work.push(c);
                    work.push(t);
                    work.push(e);
                }
                Term::Concat { hi, lo } => {
                    work.push(hi);
                    work.push(lo);
                }
            }
        }
        seen.sort_unstable();

        let mut local: HashMap<TermId, u32> = HashMap::with_capacity(seen.len());
        for (i, &t) in seen.iter().enumerate() {
            local.insert(t, i as u32);
        }
        let ix = |local: &HashMap<TermId, u32>, t: TermId| local[&t];
        let terms: Vec<PortableTerm> = seen
            .iter()
            .map(|&t| match pool.term(t) {
                Term::Const { value, width } => PortableTerm::Const {
                    value: *value,
                    width: *width,
                },
                Term::Var { name, width } => PortableTerm::Var {
                    name: name.clone(),
                    width: *width,
                },
                Term::Unary { op, a } => PortableTerm::Unary {
                    op: *op,
                    a: ix(&local, *a),
                },
                Term::Binary { op, a, b } => PortableTerm::Binary {
                    op: *op,
                    a: ix(&local, *a),
                    b: ix(&local, *b),
                },
                Term::Ite { c, t, e } => PortableTerm::Ite {
                    c: ix(&local, *c),
                    t: ix(&local, *t),
                    e: ix(&local, *e),
                },
                Term::Extract { a, hi, lo } => PortableTerm::Extract {
                    a: ix(&local, *a),
                    hi: *hi,
                    lo: *lo,
                },
                Term::Concat { hi, lo } => PortableTerm::Concat {
                    hi: ix(&local, *hi),
                    lo: ix(&local, *lo),
                },
                Term::ZExt { a, width } => PortableTerm::ZExt {
                    a: ix(&local, *a),
                    width: *width,
                },
            })
            .collect();

        PortableState {
            id: state.id,
            regs: state.regs.map(|r| ix(&local, r)),
            pc: state.pc,
            epc: state.epc,
            irq_enabled: state.irq_enabled,
            in_isr: state.in_isr,
            halted: state.halted,
            mem_base: state.mem.base_image(),
            overlay: overlay
                .into_iter()
                .map(|(a, t)| (a, ix(&local, t)))
                .collect(),
            constraints: state.constraints.iter().map(|&t| ix(&local, t)).collect(),
            terms,
            hw_snapshot: state.hw_snapshot,
            instret: state.instret,
            console: state.console.clone(),
            sym_count: state.sym_count,
            last_checkpoint: state.last_checkpoint,
            map: state.map.clone(),
            fork_nonce: state.fork_nonce,
        }
    }

    /// Rebuilds the state inside `pool` (typically another executor's).
    pub fn import(&self, pool: &mut TermPool) -> SymState {
        let mut ids: Vec<TermId> = Vec::with_capacity(self.terms.len());
        for t in &self.terms {
            let id = match t {
                PortableTerm::Const { value, width } => pool.constant(*value, *width),
                PortableTerm::Var { name, width } => pool.var(name, *width),
                PortableTerm::Unary { op, a } => pool.unary(*op, ids[*a as usize]),
                PortableTerm::Binary { op, a, b } => {
                    pool.binary(*op, ids[*a as usize], ids[*b as usize])
                }
                PortableTerm::Ite { c, t, e } => {
                    pool.ite(ids[*c as usize], ids[*t as usize], ids[*e as usize])
                }
                PortableTerm::Extract { a, hi, lo } => pool.extract(ids[*a as usize], *hi, *lo),
                PortableTerm::Concat { hi, lo } => {
                    pool.concat(ids[*hi as usize], ids[*lo as usize])
                }
                PortableTerm::ZExt { a, width } => pool.zext(ids[*a as usize], *width),
            };
            ids.push(id);
        }
        let mut mem = SymMemory::new(self.mem_base.clone());
        for &(addr, t) in &self.overlay {
            mem.store8(addr, ids[t as usize]);
        }
        SymState {
            id: self.id,
            regs: self.regs.map(|r| ids[r as usize]),
            pc: self.pc,
            epc: self.epc,
            irq_enabled: self.irq_enabled,
            in_isr: self.in_isr,
            halted: self.halted,
            mem,
            constraints: self.constraints.iter().map(|&t| ids[t as usize]).collect(),
            hw_snapshot: self.hw_snapshot,
            instret: self.instret,
            console: self.console.clone(),
            sym_count: self.sym_count,
            last_checkpoint: self.last_checkpoint,
            map: self.map.clone(),
            fork_nonce: self.fork_nonce,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Concretization, Executor, NoSymMmio, StepOutcome};
    use hardsnap_isa::assemble;

    #[test]
    fn roundtrip_preserves_scalars_and_term_structure() {
        let mut pool = TermPool::new();
        let mut s = SymState::initial(&mut pool, Arc::new(vec![0u8; 64]), 0x100);
        let x = pool.var("x", 32);
        let five = pool.constant(5, 32);
        let sum = pool.binary(BinOp::Add, x, five);
        s.set_reg(1, sum);
        let b = pool.extract(sum, 7, 0);
        s.mem.store8(3, b);
        let zero = pool.constant(0, 32);
        let c = pool.binary(BinOp::Eq, sum, zero);
        s.assume(c);
        s.pc = 0x104;
        s.sym_count = 2;
        s.fork_nonce = 7;

        let p = PortableState::export(&pool, &s);
        let mut pool2 = TermPool::new();
        let s2 = p.import(&mut pool2);

        assert_eq!(s2.id, s.id);
        assert_eq!(s2.pc, 0x104);
        assert_eq!(s2.sym_count, 2);
        assert_eq!(s2.fork_nonce, 7);
        assert_eq!(s2.constraints.len(), 1);
        // Same structure: evaluating under the same environment agrees.
        let mut env = HashMap::new();
        env.insert("x".to_string(), 37u64);
        assert_eq!(pool2.eval(s2.reg(1), &env), pool.eval(s.reg(1), &env));
        let m = s2.mem.load8(&mut pool2, 3);
        let m0 = s.mem.load8(&mut pool, 3);
        assert_eq!(pool2.eval(m, &env), pool.eval(m0, &env));
        assert_eq!(pool2.eval(s2.constraints[0], &env), 0);
    }

    #[test]
    fn import_into_populated_pool_is_structure_preserving() {
        // Exporting and re-importing into the *same* pool must map every
        // term back to itself (fixed point of the smart constructors).
        let mut pool = TermPool::new();
        let mut s = SymState::initial(&mut pool, Arc::new(vec![0u8; 16]), 0x100);
        let x = pool.var("x", 32);
        let y = pool.var("y", 32);
        let m = pool.binary(BinOp::Mul, x, y);
        let lo = pool.extract(m, 15, 0);
        let z = pool.zext(lo, 32);
        s.set_reg(2, z);
        let t = pool.binary(BinOp::Ult, z, x);
        s.assume(t);
        let p = PortableState::export(&pool, &s);
        let s2 = p.import(&mut pool);
        assert_eq!(s2.reg(2), s.reg(2));
        assert_eq!(s2.constraints, s.constraints);
    }

    #[test]
    fn executed_state_transfers_and_keeps_solving_identically() {
        let prog = assemble(
            r#"
            .org 0x100
            entry:
                sym r1, #0
                movi r2, #42
                beq r1, r2, hit
                halt
            hit:
                halt
            "#,
        )
        .unwrap();
        let mut ex = Executor::new(Concretization::Minimal);
        let mut s = ex.initial_state(prog.image.clone(), prog.entry);
        let mut hw = NoSymMmio;
        // Step to the fork.
        let forked = loop {
            match ex.step(s, &mut hw) {
                StepOutcome::ContinueWith(n) => s = n,
                StepOutcome::Fork(ss) => break ss,
                other => panic!("{other:?}"),
            }
        };
        // Transfer the taken path to a second executor and solve there.
        let taken = &forked[0];
        let p = PortableState::export(&ex.pool, taken);
        let mut ex2 = Executor::new(Concretization::Minimal);
        let t2 = p.import(&mut ex2.pool);
        let model = ex2.testcase(&t2).expect("path is feasible");
        let (_, v) = model.iter().next().expect("one input");
        assert_eq!(v, 42);
        // The original executor agrees.
        let m0 = ex.testcase(taken).expect("feasible");
        let (_, v0) = m0.iter().next().unwrap();
        assert_eq!(v0, 42);
    }
}
