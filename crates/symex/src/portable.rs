//! Pool-independent symbolic states for cross-thread transfer.
//!
//! [`TermId`]s are indices into one executor's private [`TermPool`], so
//! a [`SymState`] cannot cross a thread boundary on its own. A
//! [`PortableState`] is the closure of a state's live terms (registers,
//! memory overlay, path constraints) flattened into a self-contained
//! vector with *local* child indices; importing it into another pool
//! rebuilds the terms through the pool's smart constructors.
//!
//! The round trip is structure-preserving: every term in a pool was
//! itself produced by the smart constructors, so it is a fixed point of
//! them, and rebuilding structurally identical children yields
//! structurally identical parents. Executor and solver behaviour depend
//! only on term *structure* (never on raw [`TermId`] values), so a state
//! behaves identically after transfer — the property the parallel
//! engine's determinism guarantee rests on.

use crate::expr::{BinOp, Term, TermId, TermPool, UnOp};
use crate::state::{StateId, SymMemory, SymState};
use hardsnap_bus::MemoryMap;
use std::collections::HashMap;
use std::sync::Arc;

/// One flattened term node; child references are indices into the
/// containing [`PortableState::terms`] vector (always smaller than the
/// node's own index, i.e. the vector is topologically ordered).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PortableTerm {
    /// Constant.
    Const {
        /// Value (normalized to the width).
        value: u64,
        /// Width in bits.
        width: u32,
    },
    /// Free variable.
    Var {
        /// Unique name.
        name: String,
        /// Width in bits.
        width: u32,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand index.
        a: u32,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand index.
        a: u32,
        /// Right operand index.
        b: u32,
    },
    /// If-then-else.
    Ite {
        /// Condition index.
        c: u32,
        /// Then index.
        t: u32,
        /// Else index.
        e: u32,
    },
    /// Bit extraction.
    Extract {
        /// Source index.
        a: u32,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
    },
    /// Concatenation.
    Concat {
        /// More-significant index.
        hi: u32,
        /// Less-significant index.
        lo: u32,
    },
    /// Zero extension.
    ZExt {
        /// Source index.
        a: u32,
        /// Result width.
        width: u32,
    },
}

/// A [`SymState`] detached from its [`TermPool`]: safe to move between
/// threads (the concrete memory base stays shared via `Arc`).
#[derive(Clone, Debug)]
pub struct PortableState {
    /// State id.
    pub id: StateId,
    /// Register terms as indices into [`PortableState::terms`].
    pub regs: [u32; 16],
    /// Program counter.
    pub pc: u32,
    /// Saved PC for `iret`.
    pub epc: u32,
    /// Global interrupt enable.
    pub irq_enabled: bool,
    /// Servicing an interrupt.
    pub in_isr: bool,
    /// Executed `halt`.
    pub halted: bool,
    /// Shared concrete memory base image.
    pub mem_base: Arc<Vec<u8>>,
    /// Memory overlay as `(addr, term index)`, sorted by address.
    pub overlay: Vec<(u32, u32)>,
    /// Path constraints as term indices (in original order).
    pub constraints: Vec<u32>,
    /// Flattened term closure, topologically ordered.
    pub terms: Vec<PortableTerm>,
    /// Owned hardware snapshot id.
    pub hw_snapshot: Option<u64>,
    /// Retired instructions.
    pub instret: u64,
    /// Console bytes.
    pub console: Vec<u8>,
    /// `sym` hypercall count.
    pub sym_count: u32,
    /// Last checkpoint hint.
    pub last_checkpoint: Option<u16>,
    /// Memory map.
    pub map: MemoryMap,
    /// Fork counter (see [`SymState::next_fork_id`]).
    pub fork_nonce: u64,
}

impl PortableState {
    /// Flattens `state` out of `pool` into a self-contained value.
    pub fn export(pool: &TermPool, state: &SymState) -> PortableState {
        let mut overlay: Vec<(u32, TermId)> = state.mem.overlay_entries().collect();
        overlay.sort_unstable_by_key(|&(a, _)| a);

        // Collect the reachable closure. TermIds are topologically
        // ordered (children are interned before parents), so sorting the
        // closure by TermId gives a valid emission order.
        let mut seen: Vec<TermId> = Vec::new();
        let mut on_stack: HashMap<TermId, ()> = HashMap::new();
        let mut work: Vec<TermId> = Vec::new();
        let roots = state
            .regs
            .iter()
            .copied()
            .chain(overlay.iter().map(|&(_, t)| t))
            .chain(state.constraints.iter().copied());
        for r in roots {
            work.push(r);
        }
        while let Some(t) = work.pop() {
            if on_stack.insert(t, ()).is_some() {
                continue;
            }
            seen.push(t);
            match *pool.term(t) {
                Term::Const { .. } | Term::Var { .. } => {}
                Term::Unary { a, .. } | Term::Extract { a, .. } | Term::ZExt { a, .. } => {
                    work.push(a);
                }
                Term::Binary { a, b, .. } => {
                    work.push(a);
                    work.push(b);
                }
                Term::Ite { c, t, e } => {
                    work.push(c);
                    work.push(t);
                    work.push(e);
                }
                Term::Concat { hi, lo } => {
                    work.push(hi);
                    work.push(lo);
                }
            }
        }
        seen.sort_unstable();

        let mut local: HashMap<TermId, u32> = HashMap::with_capacity(seen.len());
        for (i, &t) in seen.iter().enumerate() {
            local.insert(t, i as u32);
        }
        let ix = |local: &HashMap<TermId, u32>, t: TermId| local[&t];
        let terms: Vec<PortableTerm> = seen
            .iter()
            .map(|&t| match pool.term(t) {
                Term::Const { value, width } => PortableTerm::Const {
                    value: *value,
                    width: *width,
                },
                Term::Var { name, width } => PortableTerm::Var {
                    name: name.clone(),
                    width: *width,
                },
                Term::Unary { op, a } => PortableTerm::Unary {
                    op: *op,
                    a: ix(&local, *a),
                },
                Term::Binary { op, a, b } => PortableTerm::Binary {
                    op: *op,
                    a: ix(&local, *a),
                    b: ix(&local, *b),
                },
                Term::Ite { c, t, e } => PortableTerm::Ite {
                    c: ix(&local, *c),
                    t: ix(&local, *t),
                    e: ix(&local, *e),
                },
                Term::Extract { a, hi, lo } => PortableTerm::Extract {
                    a: ix(&local, *a),
                    hi: *hi,
                    lo: *lo,
                },
                Term::Concat { hi, lo } => PortableTerm::Concat {
                    hi: ix(&local, *hi),
                    lo: ix(&local, *lo),
                },
                Term::ZExt { a, width } => PortableTerm::ZExt {
                    a: ix(&local, *a),
                    width: *width,
                },
            })
            .collect();

        PortableState {
            id: state.id,
            regs: state.regs.map(|r| ix(&local, r)),
            pc: state.pc,
            epc: state.epc,
            irq_enabled: state.irq_enabled,
            in_isr: state.in_isr,
            halted: state.halted,
            mem_base: state.mem.base_image(),
            overlay: overlay
                .into_iter()
                .map(|(a, t)| (a, ix(&local, t)))
                .collect(),
            constraints: state.constraints.iter().map(|&t| ix(&local, t)).collect(),
            terms,
            hw_snapshot: state.hw_snapshot,
            instret: state.instret,
            console: state.console.clone(),
            sym_count: state.sym_count,
            last_checkpoint: state.last_checkpoint,
            map: state.map.clone(),
            fork_nonce: state.fork_nonce,
        }
    }

    /// Rebuilds the state inside `pool` (typically another executor's).
    pub fn import(&self, pool: &mut TermPool) -> SymState {
        let mut ids: Vec<TermId> = Vec::with_capacity(self.terms.len());
        for t in &self.terms {
            let id = match t {
                PortableTerm::Const { value, width } => pool.constant(*value, *width),
                PortableTerm::Var { name, width } => pool.var(name, *width),
                PortableTerm::Unary { op, a } => pool.unary(*op, ids[*a as usize]),
                PortableTerm::Binary { op, a, b } => {
                    pool.binary(*op, ids[*a as usize], ids[*b as usize])
                }
                PortableTerm::Ite { c, t, e } => {
                    pool.ite(ids[*c as usize], ids[*t as usize], ids[*e as usize])
                }
                PortableTerm::Extract { a, hi, lo } => pool.extract(ids[*a as usize], *hi, *lo),
                PortableTerm::Concat { hi, lo } => {
                    pool.concat(ids[*hi as usize], ids[*lo as usize])
                }
                PortableTerm::ZExt { a, width } => pool.zext(ids[*a as usize], *width),
            };
            ids.push(id);
        }
        let mut mem = SymMemory::new(self.mem_base.clone());
        for &(addr, t) in &self.overlay {
            mem.store8(addr, ids[t as usize]);
        }
        SymState {
            id: self.id,
            regs: self.regs.map(|r| ids[r as usize]),
            pc: self.pc,
            epc: self.epc,
            irq_enabled: self.irq_enabled,
            in_isr: self.in_isr,
            halted: self.halted,
            mem,
            constraints: self.constraints.iter().map(|&t| ids[t as usize]).collect(),
            hw_snapshot: self.hw_snapshot,
            instret: self.instret,
            console: self.console.clone(),
            sym_count: self.sym_count,
            last_checkpoint: self.last_checkpoint,
            map: self.map.clone(),
            fork_nonce: self.fork_nonce,
        }
    }
}

// ---------------------------------------------------------------------
// Wire format
//
// Campaign checkpoints persist frontier states across process exits, so
// PortableState needs a byte encoding whose discriminants are stable —
// independent of enum layout — and whose decoder is total (any byte
// sequence yields Ok or a typed error, never a panic).
// ---------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.data.len() {
            return Err(format!("truncated state at offset {}", self.pos));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(
            self.take(2)?
                .try_into()
                .map_err(|_| "bad u16".to_string())?,
        ))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?
                .try_into()
                .map_err(|_| "bad u32".to_string())?,
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?
                .try_into()
                .map_err(|_| "bad u64".to_string())?,
        ))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        if len > 1 << 20 {
            return Err(format!("implausible string length {len}"));
        }
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| "non-UTF-8 string".to_string())
    }
}

fn unop_code(op: UnOp) -> u8 {
    match op {
        UnOp::Not => 0,
        UnOp::Neg => 1,
    }
}

fn unop_from(code: u8) -> Result<UnOp, String> {
    match code {
        0 => Ok(UnOp::Not),
        1 => Ok(UnOp::Neg),
        c => Err(format!("unknown unary op code {c}")),
    }
}

fn binop_code(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::And => 3,
        BinOp::Or => 4,
        BinOp::Xor => 5,
        BinOp::Shl => 6,
        BinOp::Lshr => 7,
        BinOp::Ashr => 8,
        BinOp::Eq => 9,
        BinOp::Ult => 10,
        BinOp::Slt => 11,
    }
}

fn binop_from(code: u8) -> Result<BinOp, String> {
    Ok(match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::And,
        4 => BinOp::Or,
        5 => BinOp::Xor,
        6 => BinOp::Shl,
        7 => BinOp::Lshr,
        8 => BinOp::Ashr,
        9 => BinOp::Eq,
        10 => BinOp::Ult,
        11 => BinOp::Slt,
        c => return Err(format!("unknown binary op code {c}")),
    })
}

impl PortableState {
    /// Serializes to a self-contained little-endian byte image with
    /// stable discriminants (safe to persist across builds).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.mem_base.len() + self.terms.len() * 8);
        out.extend_from_slice(&self.id.0.to_le_bytes());
        for r in self.regs {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&self.pc.to_le_bytes());
        out.extend_from_slice(&self.epc.to_le_bytes());
        let flags = u8::from(self.irq_enabled)
            | (u8::from(self.in_isr) << 1)
            | (u8::from(self.halted) << 2);
        out.push(flags);
        out.extend_from_slice(&(self.mem_base.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.mem_base);
        out.extend_from_slice(&(self.overlay.len() as u32).to_le_bytes());
        for &(a, t) in &self.overlay {
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&t.to_le_bytes());
        }
        out.extend_from_slice(&(self.constraints.len() as u32).to_le_bytes());
        for &c in &self.constraints {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&(self.terms.len() as u32).to_le_bytes());
        for t in &self.terms {
            match t {
                PortableTerm::Const { value, width } => {
                    out.push(0);
                    out.extend_from_slice(&value.to_le_bytes());
                    out.extend_from_slice(&width.to_le_bytes());
                }
                PortableTerm::Var { name, width } => {
                    out.push(1);
                    put_str(&mut out, name);
                    out.extend_from_slice(&width.to_le_bytes());
                }
                PortableTerm::Unary { op, a } => {
                    out.push(2);
                    out.push(unop_code(*op));
                    out.extend_from_slice(&a.to_le_bytes());
                }
                PortableTerm::Binary { op, a, b } => {
                    out.push(3);
                    out.push(binop_code(*op));
                    out.extend_from_slice(&a.to_le_bytes());
                    out.extend_from_slice(&b.to_le_bytes());
                }
                PortableTerm::Ite { c, t, e } => {
                    out.push(4);
                    out.extend_from_slice(&c.to_le_bytes());
                    out.extend_from_slice(&t.to_le_bytes());
                    out.extend_from_slice(&e.to_le_bytes());
                }
                PortableTerm::Extract { a, hi, lo } => {
                    out.push(5);
                    out.extend_from_slice(&a.to_le_bytes());
                    out.extend_from_slice(&hi.to_le_bytes());
                    out.extend_from_slice(&lo.to_le_bytes());
                }
                PortableTerm::Concat { hi, lo } => {
                    out.push(6);
                    out.extend_from_slice(&hi.to_le_bytes());
                    out.extend_from_slice(&lo.to_le_bytes());
                }
                PortableTerm::ZExt { a, width } => {
                    out.push(7);
                    out.extend_from_slice(&a.to_le_bytes());
                    out.extend_from_slice(&width.to_le_bytes());
                }
            }
        }
        match self.hw_snapshot {
            Some(id) => {
                out.push(1);
                out.extend_from_slice(&id.to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&self.instret.to_le_bytes());
        out.extend_from_slice(&(self.console.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.console);
        out.extend_from_slice(&self.sym_count.to_le_bytes());
        match self.last_checkpoint {
            Some(cp) => {
                out.push(1);
                out.extend_from_slice(&cp.to_le_bytes());
            }
            None => out.push(0),
        }
        let regions: Vec<_> = self.map.iter().collect();
        out.extend_from_slice(&(regions.len() as u32).to_le_bytes());
        for r in regions {
            put_str(&mut out, &r.name);
            out.extend_from_slice(&r.base.to_le_bytes());
            out.extend_from_slice(&r.size.to_le_bytes());
            out.push(match r.kind {
                hardsnap_bus::RegionKind::Ram => 0,
                hardsnap_bus::RegionKind::Rom => 1,
                hardsnap_bus::RegionKind::Mmio => 2,
            });
        }
        out.extend_from_slice(&self.fork_nonce.to_le_bytes());
        out
    }

    /// Deserializes an image produced by [`PortableState::to_bytes`].
    ///
    /// # Errors
    ///
    /// A description of the first structural problem found (truncation,
    /// unknown discriminant, dangling term index, invalid memory map).
    pub fn from_bytes(data: &[u8]) -> Result<PortableState, String> {
        let mut r = Reader { data, pos: 0 };
        let id = StateId(r.u64()?);
        let mut regs = [0u32; 16];
        for slot in &mut regs {
            *slot = r.u32()?;
        }
        let pc = r.u32()?;
        let epc = r.u32()?;
        let flags = r.u8()?;
        if flags & !0x7 != 0 {
            return Err(format!("unknown state flags {flags:#x}"));
        }
        let mem_len = r.u32()? as usize;
        if mem_len > 1 << 28 {
            return Err(format!("implausible memory size {mem_len}"));
        }
        let mem_base = Arc::new(r.take(mem_len)?.to_vec());
        let n_overlay = r.u32()? as usize;
        if n_overlay > 1 << 24 {
            return Err(format!("implausible overlay count {n_overlay}"));
        }
        let mut overlay = Vec::with_capacity(n_overlay);
        for _ in 0..n_overlay {
            let a = r.u32()?;
            let t = r.u32()?;
            overlay.push((a, t));
        }
        let n_constraints = r.u32()? as usize;
        if n_constraints > 1 << 24 {
            return Err(format!("implausible constraint count {n_constraints}"));
        }
        let mut constraints = Vec::with_capacity(n_constraints);
        for _ in 0..n_constraints {
            constraints.push(r.u32()?);
        }
        let n_terms = r.u32()? as usize;
        if n_terms > 1 << 26 {
            return Err(format!("implausible term count {n_terms}"));
        }
        let mut terms = Vec::with_capacity(n_terms);
        for i in 0..n_terms {
            // A well-formed closure is topologically ordered: children
            // strictly precede parents.
            let child = |t: u32| -> Result<u32, String> {
                if (t as usize) < i {
                    Ok(t)
                } else {
                    Err(format!("term {i} references non-preceding term {t}"))
                }
            };
            let term = match r.u8()? {
                0 => PortableTerm::Const {
                    value: r.u64()?,
                    width: r.u32()?,
                },
                1 => PortableTerm::Var {
                    name: r.string()?,
                    width: r.u32()?,
                },
                2 => PortableTerm::Unary {
                    op: unop_from(r.u8()?)?,
                    a: child(r.u32()?)?,
                },
                3 => PortableTerm::Binary {
                    op: binop_from(r.u8()?)?,
                    a: child(r.u32()?)?,
                    b: child(r.u32()?)?,
                },
                4 => PortableTerm::Ite {
                    c: child(r.u32()?)?,
                    t: child(r.u32()?)?,
                    e: child(r.u32()?)?,
                },
                5 => PortableTerm::Extract {
                    a: child(r.u32()?)?,
                    hi: r.u32()?,
                    lo: r.u32()?,
                },
                6 => PortableTerm::Concat {
                    hi: child(r.u32()?)?,
                    lo: child(r.u32()?)?,
                },
                7 => PortableTerm::ZExt {
                    a: child(r.u32()?)?,
                    width: r.u32()?,
                },
                c => return Err(format!("unknown term tag {c}")),
            };
            terms.push(term);
        }
        let term_ok = |t: u32| -> Result<u32, String> {
            if (t as usize) < terms.len() {
                Ok(t)
            } else {
                Err(format!("dangling term index {t}"))
            }
        };
        for slot in &mut regs {
            *slot = term_ok(*slot)?;
        }
        for (_, t) in &overlay {
            term_ok(*t)?;
        }
        for c in &constraints {
            term_ok(*c)?;
        }
        let hw_snapshot = match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            c => return Err(format!("bad option tag {c}")),
        };
        let instret = r.u64()?;
        let console_len = r.u32()? as usize;
        if console_len > 1 << 24 {
            return Err(format!("implausible console length {console_len}"));
        }
        let console = r.take(console_len)?.to_vec();
        let sym_count = r.u32()?;
        let last_checkpoint = match r.u8()? {
            0 => None,
            1 => Some(r.u16()?),
            c => return Err(format!("bad option tag {c}")),
        };
        let n_regions = r.u32()? as usize;
        if n_regions > 1 << 16 {
            return Err(format!("implausible region count {n_regions}"));
        }
        let mut map = MemoryMap::new();
        for _ in 0..n_regions {
            let name = r.string()?;
            let base = r.u32()?;
            let size = r.u32()?;
            let kind = match r.u8()? {
                0 => hardsnap_bus::RegionKind::Ram,
                1 => hardsnap_bus::RegionKind::Rom,
                2 => hardsnap_bus::RegionKind::Mmio,
                c => return Err(format!("unknown region kind {c}")),
            };
            map.add(hardsnap_bus::Region {
                name,
                base,
                size,
                kind,
            })?;
        }
        let fork_nonce = r.u64()?;
        if r.pos != data.len() {
            return Err(format!("trailing bytes after state (offset {})", r.pos));
        }
        Ok(PortableState {
            id,
            regs,
            pc,
            epc,
            irq_enabled: flags & 1 != 0,
            in_isr: flags & 2 != 0,
            halted: flags & 4 != 0,
            mem_base,
            overlay,
            constraints,
            terms,
            hw_snapshot,
            instret,
            console,
            sym_count,
            last_checkpoint,
            map,
            fork_nonce,
        })
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use crate::exec::{Concretization, Executor, NoSymMmio, StepOutcome};

    fn sample_state(ex: &mut Executor) -> SymState {
        let prog = hardsnap_isa::assemble(
            r#"
            .org 0x100
            entry:
                sym r1, #0
                movi r2, #42
                beq r1, r2, hit
                halt
            hit:
                halt
            "#,
        )
        .unwrap();
        let mut s = ex.initial_state(prog.image.clone(), prog.entry);
        let mut hw = NoSymMmio;
        loop {
            match ex.step(s, &mut hw) {
                StepOutcome::ContinueWith(n) => s = n,
                StepOutcome::Fork(mut ss) => break ss.remove(0),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn wire_roundtrip_is_identity_on_reimport() {
        let mut ex = Executor::new(Concretization::Minimal);
        let mut s = sample_state(&mut ex);
        s.hw_snapshot = Some(17);
        s.console = b"boot\n".to_vec();
        s.map = MemoryMap::default_soc();
        let p = PortableState::export(&ex.pool, &s);
        let bytes = p.to_bytes();
        let p2 = PortableState::from_bytes(&bytes).unwrap();
        assert_eq!(p2.id, p.id);
        assert_eq!(p2.regs, p.regs);
        assert_eq!(p2.pc, p.pc);
        assert_eq!(p2.overlay, p.overlay);
        assert_eq!(p2.constraints, p.constraints);
        assert_eq!(p2.terms, p.terms);
        assert_eq!(p2.hw_snapshot, Some(17));
        assert_eq!(p2.console, b"boot\n");
        assert_eq!(p2.map, p.map);
        assert_eq!(*p2.mem_base, *p.mem_base);
        // Re-serialization is byte-identical (deterministic format).
        assert_eq!(p2.to_bytes(), bytes);
        // And the reimported state solves identically.
        let mut ex2 = Executor::new(Concretization::Minimal);
        let s2 = p2.import(&mut ex2.pool);
        let model = ex2.testcase(&s2).expect("feasible");
        let (_, v) = model.iter().next().unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn wire_decoder_is_total_under_corruption() {
        let mut ex = Executor::new(Concretization::Minimal);
        let s = sample_state(&mut ex);
        let p = PortableState::export(&ex.pool, &s);
        let bytes = p.to_bytes();
        // Truncations never panic.
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            let _ = PortableState::from_bytes(&bytes[..cut]);
        }
        // Arbitrary single-byte corruption never panics (it may decode
        // to a different-but-structurally-valid state, which checksums
        // at the container layer catch).
        for i in (0..bytes.len()).step_by(3) {
            let mut bad = bytes.clone();
            bad[i] ^= 0xff;
            let _ = PortableState::from_bytes(&bad);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Concretization, Executor, NoSymMmio, StepOutcome};
    use hardsnap_isa::assemble;

    #[test]
    fn roundtrip_preserves_scalars_and_term_structure() {
        let mut pool = TermPool::new();
        let mut s = SymState::initial(&mut pool, Arc::new(vec![0u8; 64]), 0x100);
        let x = pool.var("x", 32);
        let five = pool.constant(5, 32);
        let sum = pool.binary(BinOp::Add, x, five);
        s.set_reg(1, sum);
        let b = pool.extract(sum, 7, 0);
        s.mem.store8(3, b);
        let zero = pool.constant(0, 32);
        let c = pool.binary(BinOp::Eq, sum, zero);
        s.assume(c);
        s.pc = 0x104;
        s.sym_count = 2;
        s.fork_nonce = 7;

        let p = PortableState::export(&pool, &s);
        let mut pool2 = TermPool::new();
        let s2 = p.import(&mut pool2);

        assert_eq!(s2.id, s.id);
        assert_eq!(s2.pc, 0x104);
        assert_eq!(s2.sym_count, 2);
        assert_eq!(s2.fork_nonce, 7);
        assert_eq!(s2.constraints.len(), 1);
        // Same structure: evaluating under the same environment agrees.
        let mut env = HashMap::new();
        env.insert("x".to_string(), 37u64);
        assert_eq!(pool2.eval(s2.reg(1), &env), pool.eval(s.reg(1), &env));
        let m = s2.mem.load8(&mut pool2, 3);
        let m0 = s.mem.load8(&mut pool, 3);
        assert_eq!(pool2.eval(m, &env), pool.eval(m0, &env));
        assert_eq!(pool2.eval(s2.constraints[0], &env), 0);
    }

    #[test]
    fn import_into_populated_pool_is_structure_preserving() {
        // Exporting and re-importing into the *same* pool must map every
        // term back to itself (fixed point of the smart constructors).
        let mut pool = TermPool::new();
        let mut s = SymState::initial(&mut pool, Arc::new(vec![0u8; 16]), 0x100);
        let x = pool.var("x", 32);
        let y = pool.var("y", 32);
        let m = pool.binary(BinOp::Mul, x, y);
        let lo = pool.extract(m, 15, 0);
        let z = pool.zext(lo, 32);
        s.set_reg(2, z);
        let t = pool.binary(BinOp::Ult, z, x);
        s.assume(t);
        let p = PortableState::export(&pool, &s);
        let s2 = p.import(&mut pool);
        assert_eq!(s2.reg(2), s.reg(2));
        assert_eq!(s2.constraints, s.constraints);
    }

    #[test]
    fn executed_state_transfers_and_keeps_solving_identically() {
        let prog = assemble(
            r#"
            .org 0x100
            entry:
                sym r1, #0
                movi r2, #42
                beq r1, r2, hit
                halt
            hit:
                halt
            "#,
        )
        .unwrap();
        let mut ex = Executor::new(Concretization::Minimal);
        let mut s = ex.initial_state(prog.image.clone(), prog.entry);
        let mut hw = NoSymMmio;
        // Step to the fork.
        let forked = loop {
            match ex.step(s, &mut hw) {
                StepOutcome::ContinueWith(n) => s = n,
                StepOutcome::Fork(ss) => break ss,
                other => panic!("{other:?}"),
            }
        };
        // Transfer the taken path to a second executor and solve there.
        let taken = &forked[0];
        let p = PortableState::export(&ex.pool, taken);
        let mut ex2 = Executor::new(Concretization::Minimal);
        let t2 = p.import(&mut ex2.pool);
        let model = ex2.testcase(&t2).expect("path is feasible");
        let (_, v) = model.iter().next().expect("one input");
        assert_eq!(v, 42);
        // The original executor agrees.
        let m0 = ex.testcase(taken).expect("feasible");
        let (_, v0) = m0.iter().next().unwrap();
        assert_eq!(v0, 42);
    }
}
