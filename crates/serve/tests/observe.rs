//! Observer-effect neutrality: watching the daemon must never change
//! what it computes, and a stalled watcher must never slow it down.
//!
//! * canonical digests are bit-identical whether the daemon runs
//!   unobserved, observed, observed-with-subscriber, or scraped over
//!   the Prometheus endpoint — across worker counts {1, 2, 4};
//! * a subscriber that never reads sheds events into its bounded
//!   queue (counted) while the runner finishes unimpeded.

use hardsnap_serve::{Daemon, DaemonConfig, EventBody, JobSpec, JobState};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn state_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hardsnap-observe-{}-{name}", std::process::id()))
}

fn tmp(name: &str) -> PathBuf {
    let dir = state_dir(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn daemon(name: &str, observe: bool) -> Arc<Daemon> {
    Daemon::new(DaemonConfig {
        state_dir: tmp(name),
        pool_replicas: 4,
        queue_max: 8,
        observe,
        ..DaemonConfig::default()
    })
    .unwrap()
}

fn spec(workers: usize) -> JobSpec {
    JobSpec {
        name: format!("w{workers}"),
        firmware: "demo:4".into(),
        workers,
        leg_instructions: 64,
        ..JobSpec::default()
    }
}

fn run_one(d: &Arc<Daemon>, workers: usize) -> String {
    let id = d.submit(spec(workers)).unwrap();
    assert!(d.wait_idle(Duration::from_secs(120)));
    let s = &d.status(Some(id))[0];
    assert_eq!(s.state, JobState::Done);
    s.digest.clone().expect("terminal job has a digest")
}

#[test]
fn observation_leaves_digests_bit_identical() {
    for workers in [1usize, 2, 4] {
        let baseline = run_one(&daemon(&format!("base-{workers}"), false), workers);

        // Observed, with a live subscriber draining events and the
        // metrics endpoint being scraped mid-run.
        let d = daemon(&format!("obs-{workers}"), true);
        let sub = d.subscribe();
        let drainer = {
            let sub = Arc::new(sub);
            let s = Arc::clone(&sub);
            let t = std::thread::spawn(move || {
                let mut events = Vec::new();
                while let Some(ev) = s.recv_timeout(Duration::from_millis(200)) {
                    let terminal = matches!(ev.body, EventBody::Terminal { .. });
                    events.push(ev);
                    if terminal {
                        break;
                    }
                }
                events
            });
            t
        };
        let _ = d.metrics_snapshot(); // scrape before
        let observed = run_one(&d, workers);
        let snap = d.metrics_snapshot(); // scrape after
        assert_eq!(
            observed, baseline,
            "telemetry/subscribers must not perturb the digest (workers={workers})"
        );
        let events = drainer.join().unwrap();
        // The stream saw the full lifecycle: admitted → started →
        // heartbeat(s) → terminal.
        assert!(events
            .iter()
            .any(|e| matches!(e.body, EventBody::Admitted { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.body, EventBody::Started { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.body, EventBody::Heartbeat { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.body, EventBody::Terminal { .. })));
        // And the aggregated snapshot carries both daemon counters and
        // merged engine telemetry.
        assert!(snap.counter("serve.jobs_admitted") >= 1);
        assert!(snap.counter("serve.jobs_completed") >= 1);
        assert!(
            snap.counter("quanta") > 0 || snap.counter("snapshots_saved") > 0,
            "observed run must surface engine telemetry in the merged snapshot"
        );
        let _ = std::fs::remove_dir_all(state_dir(&format!("base-{workers}")));
        let _ = std::fs::remove_dir_all(state_dir(&format!("obs-{workers}")));
    }
}

#[test]
fn stalled_subscriber_never_blocks_the_runner() {
    let d = Daemon::new(DaemonConfig {
        state_dir: tmp("stalled"),
        pool_replicas: 2,
        queue_max: 8,
        observe: true,
        event_queue_cap: 4, // absurdly small: guaranteed overflow
        ..DaemonConfig::default()
    })
    .unwrap();
    // The subscriber exists but never reads a single event.
    let sub = d.subscribe();
    for i in 0..3 {
        d.submit(JobSpec {
            name: format!("j{i}"),
            firmware: "demo:4".into(),
            leg_instructions: 32, // many legs => many events
            ..JobSpec::default()
        })
        .unwrap();
    }
    // The whole fleet drains despite the wedged consumer.
    assert!(
        d.wait_idle(Duration::from_secs(120)),
        "a stalled subscriber must not stall the runner"
    );
    assert!(
        sub.dropped() > 0,
        "a 4-slot queue under 3 multi-leg jobs must have shed events"
    );
    assert!(sub.backlog() <= 4, "queue must stay within its bound");
    // The shed count is visible in the aggregated metrics too.
    let snap = d.metrics_snapshot();
    assert!(snap.counter("serve.events_dropped") > 0);
    assert_eq!(
        snap.counter("serve.events_dropped"),
        sub.dropped(),
        "global drop counter equals the single subscriber's loss"
    );
    let _ = std::fs::remove_dir_all(state_dir("stalled"));
}

#[test]
fn per_job_artifacts_land_at_terminal_commit() {
    let d = daemon("artifacts", true);
    let id = d.submit(spec(1)).unwrap();
    assert!(d.wait_idle(Duration::from_secs(120)));
    let dir = state_dir("artifacts").join("jobs").join(id.to_string());
    let metrics = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
    let v = hardsnap_util::json::parse(&metrics).unwrap();
    hardsnap_telemetry::MetricsSnapshot::from_value(&v).expect("metrics.json validates");
    let trace = std::fs::read_to_string(dir.join("trace.json")).unwrap();
    let tv = hardsnap_util::json::parse(&trace).unwrap();
    assert!(
        tv.get("traceEvents").is_some(),
        "trace.json is Chrome trace format"
    );
    let _ = std::fs::remove_dir_all(state_dir("artifacts"));
}
