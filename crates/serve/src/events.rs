//! Typed lifecycle/progress events and the daemon's event bus.
//!
//! Every observable thing a job does — admission, start, each leg's
//! heartbeat, checkpoints, spill/page-in activity, fault recovery,
//! quarantine, watchdog cancellation, the terminal verdict — is a
//! typed [`EventBody`] published on the daemon-wide [`EventBus`] and
//! streamed to `subscribe` clients as NDJSON.
//!
//! ## The observer must never perturb the observed
//!
//! The bus is **bounded and non-blocking by construction**: each
//! subscriber owns a fixed-capacity queue, and `publish` never waits —
//! a full queue sheds its *oldest* entry and counts the drop (per
//! subscriber and globally). A stalled `top` session therefore costs
//! the runner one mutex poke per event, never a stall, and canonical
//! digests stay bit-identical whether zero or many clients watch (the
//! observer-effect test pins this). Sequence numbers let a client
//! detect exactly what it missed.

use crate::ServeError;
use hardsnap_util::json::Value;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What happened, with its per-kind payload. All counts in per-leg
/// events (`Spill`, `FaultRecovered`, `Quarantine`) are **deltas for
/// that leg**; `Heartbeat` carries cumulative progress.
#[derive(Clone, Debug, PartialEq)]
pub enum EventBody {
    /// The job passed admission and was journaled.
    Admitted {
        /// Daemon-assigned job id.
        id: u64,
        /// The spec's label.
        name: String,
        /// Replicas the job will consume.
        workers: u64,
        /// Priority lane the job queued in (0 = lowest).
        lane: u64,
    },
    /// The scheduler granted replicas; the leg loop is starting.
    Started {
        /// Job id.
        id: u64,
        /// Replica provenance: `"warm"` (leased from the warm pool) or
        /// `"cold"` (built from scratch). Latency metadata only — both
        /// sources yield bit-identical power-on state and digests.
        source: String,
    },
    /// One leg (scheduling quantum of the leg loop) finished.
    Heartbeat {
        /// Job id.
        id: u64,
        /// Cumulative instructions executed.
        instructions: u64,
        /// Cumulative hardware virtual time, ns.
        vtime_ns: u64,
        /// Cumulative scheduler quanta.
        quanta: u64,
        /// Paths completed.
        paths: u64,
        /// Bugs found so far.
        bugs: u64,
        /// Budget consumed: max over all configured budgets, in
        /// permille (1000 = exhausted; 0 = unbudgeted).
        budget_permille: u64,
    },
    /// A crash-atomic checkpoint was written at a leg boundary.
    Checkpoint {
        /// Job id.
        id: u64,
        /// Cumulative instructions at the checkpoint.
        instructions: u64,
    },
    /// The job's snapshot store spilled or paged this leg.
    Spill {
        /// Job id.
        id: u64,
        /// Snapshots spilled to disk this leg.
        spills: u64,
        /// Snapshots paged back in this leg.
        page_ins: u64,
    },
    /// The supervisor recovered from transport faults this leg.
    FaultRecovered {
        /// Job id.
        id: u64,
        /// Operations that succeeded after at least one retry.
        recovered: u64,
    },
    /// Replicas were quarantined and rebuilt this leg.
    Quarantine {
        /// Job id.
        id: u64,
        /// Replicas quarantined this leg.
        quarantined: u64,
    },
    /// The watchdog force-cancelled the job (wall deadline + grace).
    WatchdogCancel {
        /// Job id.
        id: u64,
    },
    /// The job reached a terminal verdict and `result.json` landed.
    Terminal {
        /// Job id.
        id: u64,
        /// Verdict wire name (`completed`, `over-budget`, ...).
        verdict: String,
        /// Stop reason wire name, when known.
        stop: Option<String>,
        /// Canonical digest (hex), when the run produced one.
        digest: Option<String>,
        /// CI exit code for the verdict.
        exit_code: u64,
    },
}

impl EventBody {
    /// Stable wire tag for the event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            EventBody::Admitted { .. } => "admitted",
            EventBody::Started { .. } => "started",
            EventBody::Heartbeat { .. } => "heartbeat",
            EventBody::Checkpoint { .. } => "checkpoint",
            EventBody::Spill { .. } => "spill",
            EventBody::FaultRecovered { .. } => "fault-recovered",
            EventBody::Quarantine { .. } => "quarantine",
            EventBody::WatchdogCancel { .. } => "watchdog-cancel",
            EventBody::Terminal { .. } => "terminal",
        }
    }

    /// The job this event concerns.
    pub fn job_id(&self) -> u64 {
        match self {
            EventBody::Admitted { id, .. }
            | EventBody::Started { id, .. }
            | EventBody::Heartbeat { id, .. }
            | EventBody::Checkpoint { id, .. }
            | EventBody::Spill { id, .. }
            | EventBody::FaultRecovered { id, .. }
            | EventBody::Quarantine { id, .. }
            | EventBody::WatchdogCancel { id }
            | EventBody::Terminal { id, .. } => *id,
        }
    }
}

/// One published event: a sequenced, timestamped [`EventBody`] plus
/// the subscriber's cumulative drop count at delivery time (how many
/// events this particular subscriber has lost so far — 0 means the
/// stream is gapless).
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Bus-wide monotonic sequence number (gaps = drops).
    pub seq: u64,
    /// Milliseconds since the daemon started.
    pub ts_ms: u64,
    /// Events dropped for this subscriber before this one.
    pub dropped: u64,
    /// The payload.
    pub body: EventBody,
}

fn num(v: u64) -> Value {
    Value::Num(v as f64)
}

impl Event {
    /// Serializes as a flat object: `seq`, `ts_ms`, `dropped`,
    /// `event` (the kind tag) plus the kind's fields.
    pub fn to_value(&self) -> Value {
        let mut m = BTreeMap::from([
            ("seq".into(), num(self.seq)),
            ("ts_ms".into(), num(self.ts_ms)),
            ("dropped".into(), num(self.dropped)),
            ("event".into(), Value::Str(self.body.kind().into())),
            ("id".into(), num(self.body.job_id())),
        ]);
        match &self.body {
            EventBody::Admitted {
                name,
                workers,
                lane,
                ..
            } => {
                m.insert("name".into(), Value::Str(name.clone()));
                m.insert("workers".into(), num(*workers));
                m.insert("lane".into(), num(*lane));
            }
            EventBody::Started { source, .. } => {
                m.insert("source".into(), Value::Str(source.clone()));
            }
            EventBody::WatchdogCancel { .. } => {}
            EventBody::Heartbeat {
                instructions,
                vtime_ns,
                quanta,
                paths,
                bugs,
                budget_permille,
                ..
            } => {
                m.insert("instructions".into(), num(*instructions));
                m.insert("vtime_ns".into(), num(*vtime_ns));
                m.insert("quanta".into(), num(*quanta));
                m.insert("paths".into(), num(*paths));
                m.insert("bugs".into(), num(*bugs));
                m.insert("budget_permille".into(), num(*budget_permille));
            }
            EventBody::Checkpoint { instructions, .. } => {
                m.insert("instructions".into(), num(*instructions));
            }
            EventBody::Spill {
                spills, page_ins, ..
            } => {
                m.insert("spills".into(), num(*spills));
                m.insert("page_ins".into(), num(*page_ins));
            }
            EventBody::FaultRecovered { recovered, .. } => {
                m.insert("recovered".into(), num(*recovered));
            }
            EventBody::Quarantine { quarantined, .. } => {
                m.insert("quarantined".into(), num(*quarantined));
            }
            EventBody::Terminal {
                verdict,
                stop,
                digest,
                exit_code,
                ..
            } => {
                m.insert("verdict".into(), Value::Str(verdict.clone()));
                if let Some(s) = stop {
                    m.insert("stop".into(), Value::Str(s.clone()));
                }
                if let Some(d) = digest {
                    m.insert("digest".into(), Value::Str(d.clone()));
                }
                m.insert("exit_code".into(), num(*exit_code));
            }
        }
        Value::Obj(m)
    }

    /// Parses an event object, validating the kind tag and every
    /// required field.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] naming the malformed field.
    pub fn from_value(v: &Value) -> Result<Event, ServeError> {
        let Value::Obj(m) = v else {
            return Err(ServeError::Protocol("event must be an object".into()));
        };
        let u = |key: &str| -> Result<u64, ServeError> {
            m.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| ServeError::Protocol(format!("event field '{key}' must be a u64")))
        };
        let opt_s = |key: &str| m.get(key).and_then(Value::as_str).map(str::to_string);
        let kind = m
            .get("event")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::Protocol("event needs an 'event' kind tag".into()))?;
        let id = u("id")?;
        let body = match kind {
            "admitted" => EventBody::Admitted {
                id,
                name: opt_s("name").unwrap_or_default(),
                workers: u("workers")?,
                // Optional for wire compat with pre-lane daemons.
                lane: m
                    .get("lane")
                    .and_then(Value::as_u64)
                    .unwrap_or(crate::job::DEFAULT_LANE),
            },
            "started" => EventBody::Started {
                id,
                source: opt_s("source").unwrap_or_default(),
            },
            "heartbeat" => EventBody::Heartbeat {
                id,
                instructions: u("instructions")?,
                vtime_ns: u("vtime_ns")?,
                quanta: u("quanta")?,
                paths: u("paths")?,
                bugs: u("bugs")?,
                budget_permille: u("budget_permille")?,
            },
            "checkpoint" => EventBody::Checkpoint {
                id,
                instructions: u("instructions")?,
            },
            "spill" => EventBody::Spill {
                id,
                spills: u("spills")?,
                page_ins: u("page_ins")?,
            },
            "fault-recovered" => EventBody::FaultRecovered {
                id,
                recovered: u("recovered")?,
            },
            "quarantine" => EventBody::Quarantine {
                id,
                quarantined: u("quarantined")?,
            },
            "watchdog-cancel" => EventBody::WatchdogCancel { id },
            "terminal" => EventBody::Terminal {
                id,
                verdict: opt_s("verdict")
                    .ok_or_else(|| ServeError::Protocol("terminal event needs 'verdict'".into()))?,
                stop: opt_s("stop"),
                digest: opt_s("digest"),
                exit_code: u("exit_code")?,
            },
            other => {
                return Err(ServeError::Protocol(format!(
                    "unknown event kind '{other}'"
                )))
            }
        };
        Ok(Event {
            seq: u("seq")?,
            ts_ms: u("ts_ms")?,
            dropped: u("dropped")?,
            body,
        })
    }
}

struct SubQueue {
    cap: usize,
    state: Mutex<VecDeque<Event>>,
    cv: Condvar,
    dropped: AtomicU64,
    closed: AtomicBool,
}

/// Handle to one subscriber's bounded queue. Dropping it detaches the
/// subscriber; the bus prunes it on the next publish.
pub struct Subscription {
    q: Arc<SubQueue>,
}

impl Subscription {
    /// Waits up to `timeout` for the next event. `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Event> {
        let mut g = self.q.state.lock().unwrap();
        if g.is_empty() {
            let (guard, _) = self.q.cv.wait_timeout(g, timeout).unwrap();
            g = guard;
        }
        g.pop_front().map(|mut ev| {
            ev.dropped = self.q.dropped.load(Ordering::Relaxed);
            ev
        })
    }

    /// Events this subscriber has lost to its bounded queue so far.
    pub fn dropped(&self) -> u64 {
        self.q.dropped.load(Ordering::Relaxed)
    }

    /// Events currently waiting in the queue.
    pub fn backlog(&self) -> usize {
        self.q.state.lock().unwrap().len()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.q.closed.store(true, Ordering::Relaxed);
    }
}

/// Daemon-wide fan-out of [`Event`]s to bounded subscriber queues.
/// `publish` never blocks: a full subscriber sheds its oldest event.
pub struct EventBus {
    subs: Mutex<Vec<Arc<SubQueue>>>,
    next_seq: AtomicU64,
    published: AtomicU64,
    dropped: AtomicU64,
}

impl EventBus {
    /// An empty bus.
    pub fn new() -> EventBus {
        EventBus {
            subs: Mutex::new(Vec::new()),
            next_seq: AtomicU64::new(0),
            published: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Registers a subscriber with a queue bounded at `cap` events.
    pub fn subscribe(&self, cap: usize) -> Subscription {
        let q = Arc::new(SubQueue {
            cap: cap.max(1),
            state: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            dropped: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        });
        self.subs.lock().unwrap().push(Arc::clone(&q));
        Subscription { q }
    }

    /// Publishes one event to every live subscriber. Returns the
    /// assigned sequence number and how many subscriber-queue drops
    /// this publish caused. Never blocks on a slow consumer: the only
    /// waits are uncontended O(1) queue pokes.
    pub fn publish(&self, ts_ms: u64, body: EventBody) -> (u64, u64) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.published.fetch_add(1, Ordering::Relaxed);
        let ev = Event {
            seq,
            ts_ms,
            dropped: 0,
            body,
        };
        let mut dropped_now = 0;
        let mut subs = self.subs.lock().unwrap();
        subs.retain(|q| !q.closed.load(Ordering::Relaxed));
        for q in subs.iter() {
            let mut g = q.state.lock().unwrap();
            if g.len() == q.cap {
                g.pop_front();
                q.dropped.fetch_add(1, Ordering::Relaxed);
                dropped_now += 1;
            }
            g.push_back(ev.clone());
            drop(g);
            q.cv.notify_one();
        }
        self.dropped.fetch_add(dropped_now, Ordering::Relaxed);
        (seq, dropped_now)
    }

    /// Live subscriber count.
    pub fn subscriber_count(&self) -> usize {
        let mut subs = self.subs.lock().unwrap();
        subs.retain(|q| !q.closed.load(Ordering::Relaxed));
        subs.len()
    }

    /// Total events published.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Total events shed across all subscriber queues.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Default for EventBus {
    fn default() -> Self {
        EventBus::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardsnap_util::json::parse;

    fn all_bodies() -> Vec<EventBody> {
        vec![
            EventBody::Admitted {
                id: 1,
                name: "j".into(),
                workers: 2,
                lane: 5,
            },
            EventBody::Started {
                id: 1,
                source: "warm".into(),
            },
            EventBody::Heartbeat {
                id: 1,
                instructions: 128,
                vtime_ns: 9000,
                quanta: 4,
                paths: 2,
                bugs: 1,
                budget_permille: 500,
            },
            EventBody::Checkpoint {
                id: 1,
                instructions: 128,
            },
            EventBody::Spill {
                id: 1,
                spills: 3,
                page_ins: 2,
            },
            EventBody::FaultRecovered {
                id: 1,
                recovered: 5,
            },
            EventBody::Quarantine {
                id: 1,
                quarantined: 1,
            },
            EventBody::WatchdogCancel { id: 1 },
            EventBody::Terminal {
                id: 1,
                verdict: "completed".into(),
                stop: Some("complete".into()),
                digest: Some("0x00000000deadbeef".into()),
                exit_code: 0,
            },
        ]
    }

    #[test]
    fn every_event_kind_roundtrips() {
        for (i, body) in all_bodies().into_iter().enumerate() {
            let ev = Event {
                seq: i as u64,
                ts_ms: 42,
                dropped: 0,
                body,
            };
            let json = ev.to_value().to_json();
            let back = Event::from_value(&parse(&json).unwrap()).unwrap();
            assert_eq!(back, ev, "roundtrip failed for {json}");
        }
    }

    #[test]
    fn from_value_rejects_malformed() {
        let missing_kind = parse("{\"seq\": 0, \"ts_ms\": 0, \"dropped\": 0, \"id\": 1}").unwrap();
        assert!(Event::from_value(&missing_kind).is_err());
        let bad_kind =
            parse("{\"seq\": 0, \"ts_ms\": 0, \"dropped\": 0, \"id\": 1, \"event\": \"nope\"}")
                .unwrap();
        assert!(Event::from_value(&bad_kind).is_err());
        let missing_field = parse(
            "{\"seq\": 0, \"ts_ms\": 0, \"dropped\": 0, \"id\": 1, \"event\": \"heartbeat\"}",
        )
        .unwrap();
        match Event::from_value(&missing_field) {
            Err(ServeError::Protocol(m)) => assert!(m.contains("instructions")),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn bus_bounds_slow_subscribers_and_counts_drops() {
        let bus = EventBus::new();
        let slow = bus.subscribe(4);
        let fast = bus.subscribe(64);
        for i in 0..10 {
            bus.publish(
                i,
                EventBody::Started {
                    id: i,
                    source: "cold".into(),
                },
            );
        }
        // The slow queue kept only the newest 4; 6 were shed.
        assert_eq!(slow.backlog(), 4);
        assert_eq!(slow.dropped(), 6);
        assert_eq!(fast.dropped(), 0);
        assert_eq!(bus.dropped(), 6);
        assert_eq!(bus.published(), 10);
        // The first delivered event reports the drop count and the
        // post-gap sequence number.
        let ev = slow.recv_timeout(Duration::from_millis(10)).unwrap();
        assert_eq!(ev.seq, 6);
        assert_eq!(ev.dropped, 6);
    }

    #[test]
    fn dropped_subscription_is_pruned() {
        let bus = EventBus::new();
        let sub = bus.subscribe(8);
        assert_eq!(bus.subscriber_count(), 1);
        drop(sub);
        assert_eq!(bus.subscriber_count(), 0);
        bus.publish(
            0,
            EventBody::Started {
                id: 1,
                source: "cold".into(),
            },
        );
        assert_eq!(bus.dropped(), 0, "no live queue, nothing shed");
    }
}
