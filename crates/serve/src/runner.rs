//! Job execution: the leg loop that turns a [`JobSpec`] into a terminal
//! [`Verdict`].
//!
//! A job never runs as one monolithic engine invocation. It runs as a
//! sequence of **legs**: each leg is a fresh engine (fresh replica
//! allocation) that resumes the job's campaign checkpoint, executes at
//! most `leg_instructions` more instructions, and re-checkpoints with
//! the crash-atomic campaign format. The checkpoint directory is
//! therefore *always* within one leg of the job's true progress — a
//! `kill -9` of the daemon loses at most one leg, and the restart path
//! is the same code path as an ordinary leg boundary. Budgets (virtual
//! time, quanta, wall-clock, instructions) and the cancel token are
//! enforced by the engine *between quanta*, so every stop — including a
//! watchdog cancellation — leaves a valid partial result and a
//! resumable checkpoint.
//!
//! Flaky detection re-executes a *completed* job `repeat` times total,
//! each attempt on a freshly forked replica (quarantined by
//! construction: nothing is shared with the baseline run) with a
//! re-seeded fault plan, and compares canonical digests. Any divergence
//! is a robustness bug in the analysis stack — recovery was supposed to
//! make fault schedules invisible.

use crate::job::{JobSpec, Verdict};
use crate::ServeError;
use hardsnap::campaign::MANIFEST;
use hardsnap::{
    load_campaign, resume_parallel, resume_sequential, snapshot_parallel, snapshot_sequential,
    CancelToken, ConsistencyMode, Engine, EngineConfig, FaultPlan, FaultyTarget, HwTarget,
    ParallelEngine, RunResult, Searcher, SnapshotStore, StopReason,
};
use hardsnap_sim::{SimEngine, SimTarget};
use std::path::Path;
use std::time::{Duration, Instant};

/// Default instructions per leg when the spec leaves `leg_instructions`
/// at 0. Small enough that a crash loses little; large enough that
/// checkpoint I/O stays a rounding error.
pub const DEFAULT_LEG_INSTRUCTIONS: u64 = 4096;

/// Golden-ratio multiplier used to re-seed fault plans across flaky
/// repeat attempts.
const SEED_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Terminal outcome of [`run_job`].
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Terminal verdict.
    pub verdict: Verdict,
    /// Why the baseline run stopped.
    pub stop: StopReason,
    /// Canonical digest of the baseline result.
    pub digest: u64,
    /// Cumulative instructions executed (including resumed carry).
    pub instructions: u64,
    /// Paths completed.
    pub paths: u64,
    /// Bugs found.
    pub bugs: u64,
}

/// Fault seed for repeat attempt `attempt` (0 = the baseline run).
/// Re-seeding the fault plan is the whole point of the flaky detector:
/// a *stable* job digests identically under every fault schedule.
pub fn attempt_seed(spec: &JobSpec, attempt: u32) -> u64 {
    if attempt == 0 {
        spec.fault_seed
    } else {
        (spec.fault_seed ^ u64::from(attempt).wrapping_mul(SEED_MIX)).max(1)
    }
}

fn job_err(e: impl std::fmt::Display) -> ServeError {
    ServeError::Job(e.to_string())
}

/// Assembles the job's firmware. `demo` / `demo:K` is the built-in
/// branching firmware (2^K paths); anything else is read as an assembly
/// file path.
fn assemble(spec: &JobSpec) -> Result<hardsnap_isa::Program, ServeError> {
    let fw = spec.firmware.as_str();
    let src = match fw.strip_prefix("demo") {
        Some("") => hardsnap::firmware::branching_firmware(3),
        Some(rest) => match rest.strip_prefix(':').map(str::parse) {
            Some(Ok(k)) => hardsnap::firmware::branching_firmware(k),
            _ => return Err(ServeError::Job(format!("bad firmware spec '{fw}'"))),
        },
        None => std::fs::read_to_string(fw)
            .map_err(|e| ServeError::Job(format!("firmware '{fw}': {e}")))?,
    };
    hardsnap_isa::assemble(&src).map_err(|e| ServeError::Job(format!("{fw}:{e}")))
}

/// Where a job's replicas come from.
///
/// `Cold` constructs the built-in SoC from scratch every leg (Verilog
/// parse + elaboration + bytecode compile). `Warm` forks power-on
/// replicas from a leased warm-pool prototype, sharing its compiled
/// design — same semantics, none of the construction cost.
/// [`HwTarget::fork_clean`] yields power-on state exactly like a fresh
/// construction does, so the two sources are digest-equivalent by
/// construction (pinned by the pool tests and `exp_sched`).
pub enum ReplicaSource<'a> {
    /// Build every replica from scratch.
    Cold,
    /// Fork replicas from this armed prototype.
    Warm(&'a dyn HwTarget),
}

impl ReplicaSource<'_> {
    /// Builds one replica for `spec`, wrapped in a deterministic fault
    /// injector when the spec asks for faults.
    fn build(&self, spec: &JobSpec, attempt: u32) -> Result<Box<dyn HwTarget>, ServeError> {
        let target: Box<dyn HwTarget> = match self {
            ReplicaSource::Cold => {
                let soc = hardsnap_periph::soc().map_err(job_err)?;
                Box::new(SimTarget::with_engine(soc, SimEngine::Bytecode).map_err(job_err)?)
            }
            ReplicaSource::Warm(proto) => proto.fork_clean().map_err(job_err)?,
        };
        if spec.fault_rate > 0.0 {
            let plan = FaultPlan::uniform(attempt_seed(spec, attempt), spec.fault_rate);
            Ok(Box::new(FaultyTarget::new(target, plan)))
        } else {
            Ok(target)
        }
    }
}

fn base_config(
    spec: &JobSpec,
    cancel: &CancelToken,
    deadline: Option<Instant>,
    observe: bool,
) -> EngineConfig {
    // Telemetry is observe-only: turning it on changes no engine
    // decision, so observed and unobserved runs digest identically
    // (pinned by the observer-effect tests).
    let mut telemetry = hardsnap_telemetry::TelemetryConfig::default();
    if observe {
        telemetry.enabled = true;
    }
    EngineConfig {
        mode: ConsistencyMode::HardSnap,
        searcher: Searcher::RoundRobin,
        telemetry,
        delta_snapshots: spec.delta_snapshots,
        max_vtime_ns: if spec.max_vtime_ns > 0 {
            spec.max_vtime_ns
        } else {
            u64::MAX
        },
        max_quanta: if spec.max_quanta > 0 {
            spec.max_quanta
        } else {
            u64::MAX
        },
        snapshot_mem_budget: if spec.snapshot_mem_budget > 0 {
            Some(spec.snapshot_mem_budget as usize)
        } else {
            None
        },
        wall_deadline: deadline,
        cancel: cancel.clone(),
        ..EngineConfig::default()
    }
}

/// Runs one leg: fresh engine, resume-or-load, bounded run, checkpoint.
fn run_leg(
    spec: &JobSpec,
    dir: &Path,
    config: EngineConfig,
    attempt: u32,
    source: &ReplicaSource<'_>,
) -> Result<RunResult, ServeError> {
    let resume = dir.join(MANIFEST).exists();
    let program = assemble(spec)?;
    let target = source.build(spec, attempt)?;
    let result = if spec.workers > 1 {
        let mut engine =
            ParallelEngine::new(target.as_ref(), spec.workers, config).map_err(job_err)?;
        if resume {
            resume_parallel(dir, &mut engine).map_err(job_err)?;
        } else {
            engine.load_firmware(&program);
        }
        let r = engine.run();
        if !matches!(r.stop, StopReason::Complete | StopReason::Paths) {
            snapshot_parallel(dir, &mut engine, &r).map_err(job_err)?;
        }
        r
    } else {
        let mut engine = Engine::new(target, config);
        if resume {
            resume_sequential(dir, &mut engine).map_err(job_err)?;
        } else {
            engine.load_firmware(&program);
        }
        let r = engine.run();
        if !matches!(r.stop, StopReason::Complete | StopReason::Paths) {
            snapshot_sequential(dir, &mut engine, &r).map_err(job_err)?;
        }
        r
    };
    Ok(result)
}

/// Runs the baseline campaign as a sequence of checkpointed legs until
/// a terminal stop. Returns the final cumulative [`RunResult`].
fn run_legs(
    spec: &JobSpec,
    dir: &Path,
    cancel: &CancelToken,
    deadline: Option<Instant>,
    observe: bool,
    source: &ReplicaSource<'_>,
    on_leg: &mut dyn FnMut(&RunResult),
) -> Result<RunResult, ServeError> {
    let leg = if spec.leg_instructions > 0 {
        spec.leg_instructions
    } else {
        DEFAULT_LEG_INSTRUCTIONS
    };
    let spec_cap = if spec.max_instructions > 0 {
        spec.max_instructions
    } else {
        u64::MAX
    };
    // Recovery: a pre-existing checkpoint (daemon restart) tells us how
    // many instructions are already in the bag, so the first leg's
    // clamp lands on the same boundary an uninterrupted run would.
    let mut carried: u64 = if dir.join(MANIFEST).exists() {
        load_campaign(dir, &SnapshotStore::new())
            .map_err(job_err)?
            .instructions
    } else {
        0
    };
    loop {
        let mut config = base_config(spec, cancel, deadline, observe);
        config.max_instructions = spec_cap.min(carried.saturating_add(leg));
        let result = run_leg(spec, dir, config, 0, source)?;
        carried = result.instructions;
        on_leg(&result);
        // An Instructions stop below the job's own cap is just a leg
        // boundary; everything else is terminal for the baseline.
        let terminal = !matches!(result.stop, StopReason::Instructions) || carried >= spec_cap;
        if terminal {
            return Ok(result);
        }
    }
}

/// One uninterrupted repeat attempt on a quarantined (freshly forked)
/// replica with a re-seeded fault plan. No checkpointing: the attempt
/// is compared by digest and discarded.
fn run_attempt(
    spec: &JobSpec,
    cancel: &CancelToken,
    attempt: u32,
    source: &ReplicaSource<'_>,
) -> Result<RunResult, ServeError> {
    let program = assemble(spec)?;
    let target = source.build(spec, attempt)?;
    // Repeat attempts are digest-compared and discarded; they never
    // need telemetry.
    let mut config = base_config(spec, cancel, None, false);
    if spec.max_instructions > 0 {
        config.max_instructions = spec.max_instructions;
    }
    let result = if spec.workers > 1 {
        let mut engine =
            ParallelEngine::new(target.as_ref(), spec.workers, config).map_err(job_err)?;
        engine.load_firmware(&program);
        engine.run()
    } else {
        let mut engine = Engine::new(target, config);
        engine.load_firmware(&program);
        engine.run()
    };
    Ok(result)
}

/// First completed-path state id present in one result but not the
/// other (0 when the divergence is only in coverage or bug sets).
fn divergence_state_id(a: &RunResult, b: &RunResult) -> u64 {
    let ids = |r: &RunResult| {
        let mut v: Vec<u64> = r.completed.iter().map(|s| s.id.0).collect();
        v.sort_unstable();
        v
    };
    let (ia, ib) = (ids(a), ids(b));
    ia.iter()
        .find(|id| !ib.contains(id))
        .or_else(|| ib.iter().find(|id| !ia.contains(id)))
        .copied()
        .unwrap_or(0)
}

/// Executes a job to its terminal verdict.
///
/// `dir` is the job's checkpoint directory (created on first
/// checkpoint); it may already hold a campaign from a previous daemon
/// incarnation, in which case the job resumes seamlessly. `on_leg` is
/// called after every leg with the cumulative partial result so the
/// daemon can publish live progress. With `observe` the engine's
/// telemetry recorder is enabled for each leg (per-leg
/// [`RunResult::telemetry`] snapshots become available) — observe-only,
/// digests are unaffected.
///
/// # Errors
///
/// [`ServeError::Job`] on a bad spec or an engine/campaign failure.
pub fn run_job(
    spec: &JobSpec,
    dir: &Path,
    cancel: &CancelToken,
    observe: bool,
    on_leg: &mut dyn FnMut(&RunResult),
) -> Result<Outcome, ServeError> {
    run_job_with_source(spec, dir, cancel, observe, &ReplicaSource::Cold, on_leg)
}

/// [`run_job`] with an explicit replica source: `Cold` builds each
/// replica from scratch, `Warm` forks them from a leased warm-pool
/// prototype. The source affects only construction latency — never the
/// canonical digest.
///
/// # Errors
///
/// [`ServeError::Job`] on a bad spec or an engine/campaign failure.
pub fn run_job_with_source(
    spec: &JobSpec,
    dir: &Path,
    cancel: &CancelToken,
    observe: bool,
    source: &ReplicaSource<'_>,
    on_leg: &mut dyn FnMut(&RunResult),
) -> Result<Outcome, ServeError> {
    let deadline = (spec.wall_ms > 0).then(|| Instant::now() + Duration::from_millis(spec.wall_ms));
    let baseline = run_legs(spec, dir, cancel, deadline, observe, source, on_leg)?;
    let stop = baseline.stop;
    let mut verdict = match stop {
        StopReason::Complete | StopReason::Paths => Verdict::Completed,
        StopReason::Cancelled => Verdict::Cancelled,
        StopReason::WallClock
        | StopReason::VirtualTime
        | StopReason::Quanta
        | StopReason::Instructions => Verdict::OverBudget(stop),
    };
    let digest = baseline.canonical_digest();
    // Flaky detection: only a *completed* baseline is worth repeating —
    // a budget-cut prefix legitimately depends on where the cut fell.
    if verdict == Verdict::Completed && spec.repeat >= 2 {
        verdict = Verdict::Stable {
            attempts: spec.repeat,
        };
        for attempt in 1..spec.repeat {
            let rerun = run_attempt(spec, cancel, attempt, source)?;
            if rerun.stop == StopReason::Cancelled {
                verdict = Verdict::Cancelled;
                break;
            }
            if rerun.canonical_digest() != digest {
                verdict = Verdict::Flaky {
                    divergence_state_id: divergence_state_id(&baseline, &rerun),
                };
                break;
            }
        }
    }
    Ok(Outcome {
        verdict,
        stop,
        digest,
        instructions: baseline.instructions,
        paths: baseline.metrics.paths_completed,
        bugs: baseline.bugs.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hardsnap-runner-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn demo_spec() -> JobSpec {
        JobSpec {
            firmware: "demo:3".into(),
            leg_instructions: 64,
            ..JobSpec::default()
        }
    }

    #[test]
    fn legged_run_matches_uninterrupted_digest() {
        let dir = tmp("legged");
        let cancel = CancelToken::new();
        let legged = run_job(&demo_spec(), &dir, &cancel, false, &mut |_| {}).unwrap();
        assert_eq!(legged.verdict, Verdict::Completed);

        let mut one_shot = demo_spec();
        one_shot.leg_instructions = 0; // one huge leg
        let whole = run_job(&one_shot, &tmp("whole"), &cancel, false, &mut |_| {}).unwrap();
        assert_eq!(
            legged.digest, whole.digest,
            "legging must not change semantics"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn vtime_budget_trips_over_budget_and_resumes() {
        let dir = tmp("vtime");
        let cancel = CancelToken::new();
        let mut spec = demo_spec();
        spec.max_vtime_ns = 1_000; // absurdly tight: trips on the first quantum
        let out = run_job(&spec, &dir, &cancel, false, &mut |_| {}).unwrap();
        assert_eq!(out.verdict, Verdict::OverBudget(StopReason::VirtualTime));
        assert!(
            dir.join(MANIFEST).exists(),
            "over-budget job must leave a checkpoint"
        );

        // Raise the budget and resume from the same directory: the
        // finished digest must equal an uninterrupted run's.
        spec.max_vtime_ns = 0;
        let resumed = run_job(&spec, &dir, &cancel, false, &mut |_| {}).unwrap();
        assert_eq!(resumed.verdict, Verdict::Completed);
        let whole = run_job(
            &demo_spec(),
            &tmp("vtime-whole"),
            &cancel,
            false,
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(resumed.digest, whole.digest);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_job_keeps_a_resumable_checkpoint() {
        let dir = tmp("cancel");
        let cancel = CancelToken::new();
        cancel.cancel(); // pre-cancelled: stops at the first boundary
        let out = run_job(&demo_spec(), &dir, &cancel, false, &mut |_| {}).unwrap();
        assert_eq!(out.verdict, Verdict::Cancelled);
        assert!(dir.join(MANIFEST).exists());

        let fresh = CancelToken::new();
        let resumed = run_job(&demo_spec(), &dir, &fresh, false, &mut |_| {}).unwrap();
        assert_eq!(resumed.verdict, Verdict::Completed);
        let whole = run_job(
            &demo_spec(),
            &tmp("cancel-whole"),
            &fresh,
            false,
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(resumed.digest, whole.digest);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn low_fault_rate_is_stable_high_rate_is_flaky() {
        let cancel = CancelToken::new();
        let mut spec = demo_spec();
        spec.fault_rate = 0.05;
        spec.repeat = 3;
        let out = run_job(&spec, &tmp("stable"), &cancel, false, &mut |_| {}).unwrap();
        assert_eq!(
            out.verdict,
            Verdict::Stable { attempts: 3 },
            "recovery must hide low-rate faults"
        );

        // At a 60% fault rate the supervisor's retry budget is
        // routinely exhausted, states get killed, and the surviving
        // path set depends on the fault schedule: flaky by design.
        spec.fault_rate = 0.6;
        let out = run_job(&spec, &tmp("flaky"), &cancel, false, &mut |_| {}).unwrap();
        assert!(
            matches!(out.verdict, Verdict::Flaky { .. }),
            "expected flaky at 60% fault rate, got {:?}",
            out.verdict
        );
    }
}
