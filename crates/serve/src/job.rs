//! Job specifications, budgets and verdicts — the unit of work the
//! daemon schedules, journals and reports.

use crate::ServeError;
use hardsnap::StopReason;
use hardsnap_util::json::Value;
use std::collections::BTreeMap;

/// Highest priority lane (lanes are `0..=MAX_LANE`, higher = sooner).
pub const MAX_LANE: u64 = 7;
/// Lane a submission lands in when it names none.
pub const DEFAULT_LANE: u64 = 3;

/// What a client asks the daemon to run: one analysis campaign over the
/// built-in SoC, with hard budgets. Every budget of 0 means
/// "unbudgeted" on the wire (and maps to `u64::MAX` engine-side), so a
/// minimal submission is just a firmware spec.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Human-readable label.
    pub name: String,
    /// Firmware spec: `demo:K` (the built-in branching firmware with
    /// 2^K paths).
    pub firmware: String,
    /// Worker threads = target replicas this job consumes from the
    /// daemon's pool (admission weight). Clamped to ≥ 1.
    pub workers: usize,
    /// Fault-injection rate on the replica link (0.0 = honest).
    pub fault_rate: f64,
    /// Fault plan seed.
    pub fault_seed: u64,
    /// Delta (O(changed)) snapshot captures.
    pub delta_snapshots: bool,
    /// Instruction budget (0 = unlimited).
    pub max_instructions: u64,
    /// Hardware virtual-time budget in ns (0 = unlimited).
    pub max_vtime_ns: u64,
    /// Scheduling-quantum budget (0 = unlimited).
    pub max_quanta: u64,
    /// Wall-clock deadline in ms from job start (0 = none). Enforced by
    /// the engine at quantum boundaries and by the daemon's watchdog.
    pub wall_ms: u64,
    /// Resident-byte budget for the job's snapshot store (0 = none).
    pub snapshot_mem_budget: u64,
    /// Flaky detection: after the job completes, re-execute it this
    /// many times total with re-seeded fault plans and compare
    /// canonical digests (0 or 1 = off).
    pub repeat: u32,
    /// Instructions per leg between crash-safe checkpoints (0 = the
    /// default, 4096). Smaller legs bound how much work a `kill -9`
    /// can lose.
    pub leg_instructions: u64,
    /// Priority lane, `0..=7` (higher = scheduled sooner; aging
    /// guarantees low lanes still run). Affects *when* the job starts,
    /// never its canonical digest.
    pub priority: u64,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            name: String::new(),
            firmware: "demo:3".into(),
            workers: 1,
            fault_rate: 0.0,
            fault_seed: 1,
            delta_snapshots: false,
            max_instructions: 0,
            max_vtime_ns: 0,
            max_quanta: 0,
            wall_ms: 0,
            snapshot_mem_budget: 0,
            repeat: 0,
            leg_instructions: 0,
            priority: DEFAULT_LANE,
        }
    }
}

fn get_u64(m: &BTreeMap<String, Value>, key: &str) -> Result<u64, ServeError> {
    match m.get(key) {
        None => Ok(0),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| ServeError::Protocol(format!("job field '{key}' must be a u64"))),
    }
}

impl JobSpec {
    /// Serializes to a JSON object (the `job.json` journal record and
    /// the `submit` payload).
    pub fn to_value(&self) -> Value {
        Value::Obj(BTreeMap::from([
            ("name".into(), Value::Str(self.name.clone())),
            ("firmware".into(), Value::Str(self.firmware.clone())),
            ("workers".into(), Value::Num(self.workers as f64)),
            ("fault_rate".into(), Value::Num(self.fault_rate)),
            ("fault_seed".into(), Value::Num(self.fault_seed as f64)),
            ("delta_snapshots".into(), Value::Bool(self.delta_snapshots)),
            (
                "max_instructions".into(),
                Value::Num(self.max_instructions as f64),
            ),
            ("max_vtime_ns".into(), Value::Num(self.max_vtime_ns as f64)),
            ("max_quanta".into(), Value::Num(self.max_quanta as f64)),
            ("wall_ms".into(), Value::Num(self.wall_ms as f64)),
            (
                "snapshot_mem_budget".into(),
                Value::Num(self.snapshot_mem_budget as f64),
            ),
            ("repeat".into(), Value::Num(f64::from(self.repeat))),
            (
                "leg_instructions".into(),
                Value::Num(self.leg_instructions as f64),
            ),
            ("priority".into(), Value::Num(self.priority as f64)),
        ]))
    }

    /// Parses a JSON object back into a spec. Unknown keys are ignored
    /// (forward compatibility); missing budgets default to unbudgeted.
    pub fn from_value(v: &Value) -> Result<JobSpec, ServeError> {
        let Value::Obj(m) = v else {
            return Err(ServeError::Protocol("job must be a JSON object".into()));
        };
        let s = |key: &str| -> String {
            m.get(key)
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string()
        };
        let firmware = s("firmware");
        if firmware.is_empty() {
            return Err(ServeError::Protocol("job needs a 'firmware' spec".into()));
        }
        Ok(JobSpec {
            name: s("name"),
            firmware,
            workers: (get_u64(m, "workers")? as usize).max(1),
            fault_rate: m
                .get("fault_rate")
                .and_then(Value::as_f64)
                .unwrap_or(0.0)
                .clamp(0.0, 1.0),
            fault_seed: get_u64(m, "fault_seed")?.max(1),
            delta_snapshots: m
                .get("delta_snapshots")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            max_instructions: get_u64(m, "max_instructions")?,
            max_vtime_ns: get_u64(m, "max_vtime_ns")?,
            max_quanta: get_u64(m, "max_quanta")?,
            wall_ms: get_u64(m, "wall_ms")?,
            snapshot_mem_budget: get_u64(m, "snapshot_mem_budget")?,
            repeat: get_u64(m, "repeat")? as u32,
            leg_instructions: get_u64(m, "leg_instructions")?,
            priority: match m.get("priority") {
                None => DEFAULT_LANE,
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| {
                        ServeError::Protocol("job field 'priority' must be a u64".into())
                    })?
                    .min(MAX_LANE),
            },
        })
    }
}

/// Terminal verdict of a job.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// Ran to completion (frontier drained) inside every budget.
    Completed,
    /// A budget tripped; the job was cancelled at a quantum boundary
    /// and its checkpoint is resumable with a raised budget.
    OverBudget(StopReason),
    /// Cancelled by a client (or the watchdog); checkpoint resumable.
    Cancelled,
    /// `repeat` re-executions all produced the same canonical digest.
    Stable {
        /// Total executions compared.
        attempts: u32,
    },
    /// Re-executions diverged: the analysis result depends on the fault
    /// schedule — a robustness bug.
    Flaky {
        /// First completed-path state id present in one attempt but not
        /// another (0 when only coverage/bug sets differ).
        divergence_state_id: u64,
    },
    /// The job failed outright (bad spec, engine error).
    Error(String),
}

impl Verdict {
    /// Stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Completed => "completed",
            Verdict::OverBudget(_) => "over-budget",
            Verdict::Cancelled => "cancelled",
            Verdict::Stable { .. } => "stable",
            Verdict::Flaky { .. } => "flaky",
            Verdict::Error(_) => "error",
        }
    }

    /// CI-friendly process exit code: 0 completed/stable, 3 flaky,
    /// 4 cancelled/over-budget, 1 error. (2 is `Saturated`, reported at
    /// submission time, not as a verdict.)
    pub fn exit_code(&self) -> u8 {
        match self {
            Verdict::Completed | Verdict::Stable { .. } => 0,
            Verdict::Flaky { .. } => 3,
            Verdict::Cancelled | Verdict::OverBudget(_) => 4,
            Verdict::Error(_) => 1,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, journaled, waiting for replicas.
    Queued,
    /// Executing on the pool.
    Running,
    /// Terminal; see the summary's verdict.
    Done,
}

impl JobState {
    /// Stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
        }
    }
}

/// Everything `status` reports about one job (and what `result.json`
/// persists for a terminal one).
#[derive(Clone, Debug)]
pub struct JobSummary {
    /// Daemon-assigned id (admission order).
    pub id: u64,
    /// The spec's label.
    pub name: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Terminal verdict (`None` while queued/running).
    pub verdict: Option<Verdict>,
    /// Why the final run stopped.
    pub stop: Option<StopReason>,
    /// Canonical digest of the (possibly partial) result, hex.
    pub digest: Option<String>,
    /// Instructions executed so far / in total.
    pub instructions: u64,
    /// Hardware virtual time consumed so far, ns.
    pub vtime_ns: u64,
    /// Scheduling quanta consumed so far.
    pub quanta: u64,
    /// Paths completed.
    pub paths: u64,
    /// Bugs found.
    pub bugs: u64,
    /// Budget consumed: the max over all configured budgets
    /// (instructions, virtual time, quanta, wall clock) in permille —
    /// 1000 means a budget is exhausted, 0 means unbudgeted or idle.
    pub budget_permille: u64,
    /// Milliseconds spent queued before the first replica was free
    /// (live and still growing while the job is queued).
    pub queue_wait_ms: u64,
    /// Milliseconds of execution (absent until terminal).
    pub run_ms: u64,
    /// Priority lane the job was admitted into (`0..=7`).
    pub lane: u64,
    /// Replica provenance once scheduled: `"warm"` (leased a pre-armed
    /// pool prototype) or `"cold"` (built from scratch). `None` while
    /// queued.
    pub provenance: Option<String>,
}

impl JobSummary {
    /// Serializes for the wire and for `result.json`.
    pub fn to_value(&self) -> Value {
        let mut m = BTreeMap::from([
            ("id".into(), Value::Num(self.id as f64)),
            ("name".into(), Value::Str(self.name.clone())),
            ("state".into(), Value::Str(self.state.as_str().into())),
            ("instructions".into(), Value::Num(self.instructions as f64)),
            ("vtime_ns".into(), Value::Num(self.vtime_ns as f64)),
            ("quanta".into(), Value::Num(self.quanta as f64)),
            ("paths".into(), Value::Num(self.paths as f64)),
            ("bugs".into(), Value::Num(self.bugs as f64)),
            (
                "budget_permille".into(),
                Value::Num(self.budget_permille as f64),
            ),
            (
                "queue_wait_ms".into(),
                Value::Num(self.queue_wait_ms as f64),
            ),
            ("run_ms".into(), Value::Num(self.run_ms as f64)),
            ("lane".into(), Value::Num(self.lane as f64)),
        ]);
        if let Some(p) = &self.provenance {
            m.insert("provenance".into(), Value::Str(p.clone()));
        }
        if let Some(v) = &self.verdict {
            m.insert("verdict".into(), Value::Str(v.as_str().into()));
            m.insert("exit_code".into(), Value::Num(f64::from(v.exit_code())));
            match v {
                Verdict::Stable { attempts } => {
                    m.insert("attempts".into(), Value::Num(f64::from(*attempts)));
                }
                Verdict::Flaky {
                    divergence_state_id,
                } => {
                    m.insert(
                        "divergence_state_id".into(),
                        Value::Num(*divergence_state_id as f64),
                    );
                }
                Verdict::Error(msg) => {
                    m.insert("error".into(), Value::Str(msg.clone()));
                }
                _ => {}
            }
        }
        if let Some(stop) = self.stop {
            m.insert("stop".into(), Value::Str(stop.as_str().into()));
        }
        if let Some(d) = &self.digest {
            m.insert("digest".into(), Value::Str(d.clone()));
        }
        Value::Obj(m)
    }

    /// Parses a summary (client side, and `result.json` recovery).
    pub fn from_value(v: &Value) -> Result<JobSummary, ServeError> {
        let Value::Obj(m) = v else {
            return Err(ServeError::Protocol("job summary must be an object".into()));
        };
        let state = match m.get("state").and_then(Value::as_str) {
            Some("queued") => JobState::Queued,
            Some("running") => JobState::Running,
            Some("done") => JobState::Done,
            other => {
                return Err(ServeError::Protocol(format!(
                    "bad job state {other:?} in summary"
                )))
            }
        };
        let stop = m
            .get("stop")
            .and_then(Value::as_str)
            .and_then(StopReason::parse);
        let verdict = match m.get("verdict").and_then(Value::as_str) {
            None => None,
            Some("completed") => Some(Verdict::Completed),
            Some("over-budget") => Some(Verdict::OverBudget(
                stop.unwrap_or(StopReason::Instructions),
            )),
            Some("cancelled") => Some(Verdict::Cancelled),
            Some("stable") => Some(Verdict::Stable {
                attempts: get_u64(m, "attempts")? as u32,
            }),
            Some("flaky") => Some(Verdict::Flaky {
                divergence_state_id: get_u64(m, "divergence_state_id")?,
            }),
            Some("error") => Some(Verdict::Error(
                m.get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
            )),
            Some(other) => {
                return Err(ServeError::Protocol(format!("unknown verdict '{other}'")));
            }
        };
        Ok(JobSummary {
            id: get_u64(m, "id")?,
            name: m
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            state,
            verdict,
            stop,
            digest: m.get("digest").and_then(Value::as_str).map(str::to_string),
            instructions: get_u64(m, "instructions")?,
            vtime_ns: get_u64(m, "vtime_ns")?,
            quanta: get_u64(m, "quanta")?,
            paths: get_u64(m, "paths")?,
            bugs: get_u64(m, "bugs")?,
            budget_permille: get_u64(m, "budget_permille")?,
            queue_wait_ms: get_u64(m, "queue_wait_ms")?,
            run_ms: get_u64(m, "run_ms")?,
            // Absent in pre-lane summaries (forward compat): default lane.
            lane: match m.get("lane") {
                None => DEFAULT_LANE,
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| {
                        ServeError::Protocol("summary field 'lane' must be a u64".into())
                    })?
                    .min(MAX_LANE),
            },
            provenance: m
                .get("provenance")
                .and_then(Value::as_str)
                .map(str::to_string),
        })
    }
}

/// Daemon-wide occupancy figures, reported alongside job summaries by
/// the `status` verb so `hardsnap-cli status`/`top` can show fleet
/// health without a second round-trip.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Jobs waiting for replicas.
    pub queue_depth: u64,
    /// Total replicas in the pool.
    pub pool_replicas: u64,
    /// Replicas currently granted to running jobs.
    pub pool_busy: u64,
    /// Live `subscribe` clients.
    pub subscribers: u64,
    /// Events published on the bus since daemon start.
    pub events_published: u64,
    /// Events shed by bounded subscriber queues since daemon start.
    pub events_dropped: u64,
    /// Configured warm-pool size (0 = no warm pool).
    pub warm_target: u64,
    /// Warm replicas armed and ready to lease.
    pub warm_ready: u64,
    /// Warm replicas currently leased to running jobs.
    pub warm_leased: u64,
    /// Warm replicas being built or re-armed in the background.
    pub warm_arming: u64,
}

impl DaemonStats {
    /// Serializes for the `status` response.
    pub fn to_value(&self) -> Value {
        Value::Obj(BTreeMap::from([
            ("queue_depth".into(), Value::Num(self.queue_depth as f64)),
            (
                "pool_replicas".into(),
                Value::Num(self.pool_replicas as f64),
            ),
            ("pool_busy".into(), Value::Num(self.pool_busy as f64)),
            ("subscribers".into(), Value::Num(self.subscribers as f64)),
            (
                "events_published".into(),
                Value::Num(self.events_published as f64),
            ),
            (
                "events_dropped".into(),
                Value::Num(self.events_dropped as f64),
            ),
            ("warm_target".into(), Value::Num(self.warm_target as f64)),
            ("warm_ready".into(), Value::Num(self.warm_ready as f64)),
            ("warm_leased".into(), Value::Num(self.warm_leased as f64)),
            ("warm_arming".into(), Value::Num(self.warm_arming as f64)),
        ]))
    }

    /// Parses the `daemon` object of a `status` response.
    pub fn from_value(v: &Value) -> Result<DaemonStats, ServeError> {
        let Value::Obj(m) = v else {
            return Err(ServeError::Protocol(
                "daemon stats must be an object".into(),
            ));
        };
        Ok(DaemonStats {
            queue_depth: get_u64(m, "queue_depth")?,
            pool_replicas: get_u64(m, "pool_replicas")?,
            pool_busy: get_u64(m, "pool_busy")?,
            subscribers: get_u64(m, "subscribers")?,
            events_published: get_u64(m, "events_published")?,
            events_dropped: get_u64(m, "events_dropped")?,
            warm_target: get_u64(m, "warm_target")?,
            warm_ready: get_u64(m, "warm_ready")?,
            warm_leased: get_u64(m, "warm_leased")?,
            warm_arming: get_u64(m, "warm_arming")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest_hex;

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = JobSpec {
            name: "t".into(),
            firmware: "demo:4".into(),
            workers: 2,
            fault_rate: 0.05,
            fault_seed: 7,
            delta_snapshots: true,
            max_instructions: 1000,
            max_vtime_ns: 5_000_000,
            max_quanta: 64,
            wall_ms: 2_000,
            snapshot_mem_budget: 1 << 20,
            repeat: 3,
            leg_instructions: 128,
            priority: 6,
        };
        let json = spec.to_value().to_json();
        let back = JobSpec::from_value(&hardsnap_util::json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, spec);
        // A pre-lane submission (no 'priority' key) lands in the
        // default lane; an out-of-range lane clamps.
        let old =
            JobSpec::from_value(&hardsnap_util::json::parse("{\"firmware\": \"demo:3\"}").unwrap())
                .unwrap();
        assert_eq!(old.priority, DEFAULT_LANE);
        let high = JobSpec::from_value(
            &hardsnap_util::json::parse("{\"firmware\": \"demo:3\", \"priority\": 99}").unwrap(),
        )
        .unwrap();
        assert_eq!(high.priority, MAX_LANE);
    }

    #[test]
    fn summary_roundtrips_with_verdicts() {
        for verdict in [
            Verdict::Completed,
            Verdict::OverBudget(StopReason::VirtualTime),
            Verdict::Cancelled,
            Verdict::Stable { attempts: 3 },
            Verdict::Flaky {
                divergence_state_id: 9,
            },
            Verdict::Error("boom".into()),
        ] {
            let s = JobSummary {
                id: 4,
                name: "j".into(),
                state: JobState::Done,
                verdict: Some(verdict.clone()),
                stop: Some(StopReason::VirtualTime),
                digest: Some(digest_hex(0xdead_beef)),
                instructions: 10,
                vtime_ns: 900,
                quanta: 3,
                paths: 2,
                bugs: 1,
                budget_permille: 250,
                queue_wait_ms: 5,
                run_ms: 20,
                lane: 6,
                provenance: Some("warm".into()),
            };
            let json = s.to_value().to_json();
            let back = JobSummary::from_value(&hardsnap_util::json::parse(&json).unwrap()).unwrap();
            assert_eq!(back.verdict, Some(verdict));
            assert_eq!(back.digest, s.digest);
            assert_eq!(back.stop, s.stop);
            assert_eq!(back.vtime_ns, s.vtime_ns);
            assert_eq!(back.quanta, s.quanta);
            assert_eq!(back.budget_permille, s.budget_permille);
            assert_eq!(back.lane, 6);
            assert_eq!(back.provenance.as_deref(), Some("warm"));
        }
    }

    #[test]
    fn daemon_stats_roundtrip() {
        let stats = DaemonStats {
            queue_depth: 2,
            pool_replicas: 4,
            pool_busy: 3,
            subscribers: 1,
            events_published: 100,
            events_dropped: 7,
            warm_target: 4,
            warm_ready: 2,
            warm_leased: 1,
            warm_arming: 1,
        };
        let json = stats.to_value().to_json();
        let back = DaemonStats::from_value(&hardsnap_util::json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, stats);
    }
}
