//! `hardsnap-serve` — the campaign daemon.
//!
//! ```text
//! hardsnap-serve [--state-dir DIR] [--socket PATH] [--pool N]
//!                [--queue-max N] [--stdio]
//! ```
//!
//! On start the daemon recovers its state directory: terminal jobs are
//! reported as-is, unfinished jobs re-enqueue and resume from their
//! last crash-atomic checkpoint. `--stdio` serves a single NDJSON
//! session on stdin/stdout instead of binding the unix socket (handy
//! for scripting and tests).

use hardsnap_serve::{Daemon, DaemonConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hardsnap-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = DaemonConfig::default();
    let mut socket: Option<PathBuf> = None;
    let mut stdio = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--state-dir" => cfg.state_dir = PathBuf::from(value("--state-dir")?),
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--pool" => cfg.pool_replicas = value("--pool")?.parse()?,
            "--queue-max" => cfg.queue_max = value("--queue-max")?.parse()?,
            "--stdio" => stdio = true,
            "--help" | "-h" => {
                println!(
                    "usage: hardsnap-serve [--state-dir DIR] [--socket PATH] \
                     [--pool N] [--queue-max N] [--stdio]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag '{other}'").into()),
        }
    }
    let socket = socket.unwrap_or_else(|| cfg.state_dir.join("serve.sock"));
    let daemon = Daemon::new(cfg)?;
    let resumed = daemon.recover()?;
    if resumed > 0 {
        eprintln!("hardsnap-serve: resumed {resumed} unfinished job(s)");
    }
    daemon.spawn_watchdog(Duration::from_millis(50));
    if stdio {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let mut r = stdin.lock();
        let mut w = stdout.lock();
        daemon.serve_stream(&mut r, &mut w)?;
    } else {
        eprintln!("hardsnap-serve: listening on {}", socket.display());
        daemon.serve_unix(&socket)?;
    }
    // Give just-cancelled jobs a moment to checkpoint before exit; a
    // hard kill is also fine — that is the whole point of the journal.
    daemon.wait_idle(Duration::from_millis(500));
    Ok(())
}
