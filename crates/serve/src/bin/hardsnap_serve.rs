//! `hardsnap-serve` — the campaign daemon.
//!
//! ```text
//! hardsnap-serve [--state-dir DIR] [--socket PATH] [--pool N]
//!                [--queue-max N] [--warm-pool N] [--baseline FILE]
//!                [--sched fifo|lanes] [--aging-ms MS]
//!                [--metrics-addr HOST:PORT] [--no-observe] [--stdio]
//! ```
//!
//! On start the daemon recovers its state directory: terminal jobs are
//! reported as-is, unfinished jobs re-enqueue and resume from their
//! last crash-atomic checkpoint. `--stdio` serves a single NDJSON
//! session on stdin/stdout instead of binding the unix socket (handy
//! for scripting and tests). `--metrics-addr` additionally serves
//! Prometheus text exposition over plain TCP (the bound address is
//! printed, so `:0` works for tests). On SIGTERM or panic the daemon
//! dumps its flight recorder to `<state-dir>/flight.json` before
//! winding down.
//!
//! `--warm-pool N` keeps N pre-built replicas armed against a baseline
//! snapshot (`--baseline FILE`, or one synthesized at start) so jobs
//! start by forking a warm prototype instead of cold-booting the SoC.
//! `--sched` picks the queue policy: `lanes` (default — priority lanes
//! with aging and packing) or `fifo` (strict admission order).

use hardsnap_serve::{Daemon, DaemonConfig, SchedPolicy};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

static SIGTERM_SEEN: AtomicBool = AtomicBool::new(false);
/// The live daemon, stashed for the panic hook's flight dump.
static DAEMON: OnceLock<Arc<Daemon>> = OnceLock::new();

extern "C" fn on_sigterm(_sig: i32) {
    // Async-signal-safe: just set the flag; a watcher thread acts.
    SIGTERM_SEEN.store(true, Ordering::SeqCst);
}

fn install_sigterm_handler() {
    // libc is already linked by std; declaring `signal` avoids any
    // dependency. SIGTERM = 15 on every platform this daemon targets.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hardsnap-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = DaemonConfig::default();
    let mut socket: Option<PathBuf> = None;
    let mut metrics_addr: Option<String> = None;
    let mut stdio = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--state-dir" => cfg.state_dir = PathBuf::from(value("--state-dir")?),
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--pool" => cfg.pool_replicas = value("--pool")?.parse()?,
            "--queue-max" => cfg.queue_max = value("--queue-max")?.parse()?,
            "--warm-pool" => cfg.warm_pool = value("--warm-pool")?.parse()?,
            "--baseline" => cfg.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--sched" => {
                let name = value("--sched")?;
                cfg.sched = SchedPolicy::parse(&name)
                    .ok_or_else(|| format!("--sched must be 'fifo' or 'lanes', got '{name}'"))?;
            }
            "--aging-ms" => cfg.aging_ms = value("--aging-ms")?.parse()?,
            "--metrics-addr" => metrics_addr = Some(value("--metrics-addr")?),
            "--no-observe" => cfg.observe = false,
            "--stdio" => stdio = true,
            "--help" | "-h" => {
                println!(
                    "usage: hardsnap-serve [--state-dir DIR] [--socket PATH] \
                     [--pool N] [--queue-max N] [--warm-pool N] [--baseline FILE] \
                     [--sched fifo|lanes] [--aging-ms MS] \
                     [--metrics-addr HOST:PORT] [--no-observe] [--stdio]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag '{other}'").into()),
        }
    }
    let socket = socket.unwrap_or_else(|| cfg.state_dir.join("serve.sock"));
    let daemon = Daemon::new(cfg)?;
    let _ = DAEMON.set(Arc::clone(&daemon));

    // A panic anywhere in the process leaves a post-mortem trail.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Some(d) = DAEMON.get() {
            if let Ok(path) = d.dump_flight_to_file() {
                eprintln!(
                    "hardsnap-serve: flight recorder dumped to {}",
                    path.display()
                );
            }
        }
        default_hook(info);
    }));

    // SIGTERM: dump the flight recorder, then wind down cleanly.
    install_sigterm_handler();
    {
        let d = Arc::clone(&daemon);
        std::thread::spawn(move || loop {
            if SIGTERM_SEEN.load(Ordering::SeqCst) {
                if let Ok(path) = d.dump_flight_to_file() {
                    eprintln!(
                        "hardsnap-serve: SIGTERM — flight recorder dumped to {}",
                        path.display()
                    );
                }
                d.request_shutdown();
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }

    let resumed = daemon.recover()?;
    if resumed > 0 {
        eprintln!("hardsnap-serve: resumed {resumed} unfinished job(s)");
    }
    daemon.spawn_watchdog(Duration::from_millis(50));
    if let Some(addr) = metrics_addr {
        let bound = daemon.spawn_metrics_http(&addr)?;
        // Machine-parseable (the CI gate scrapes it): keep this format.
        eprintln!("hardsnap-serve: metrics on http://{bound}/metrics");
    }
    if stdio {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let mut r = stdin.lock();
        let mut w = stdout.lock();
        daemon.serve_stream(&mut r, &mut w)?;
    } else {
        eprintln!("hardsnap-serve: listening on {}", socket.display());
        daemon.serve_unix(&socket)?;
    }
    // Give just-cancelled jobs a moment to checkpoint before exit; a
    // hard kill is also fine — that is the whole point of the journal.
    daemon.wait_idle(Duration::from_millis(500));
    Ok(())
}
