//! # hardsnap-serve
//!
//! The campaign service: a daemon that multiplexes many concurrent
//! analysis campaigns over a **bounded pool of target replicas**, the
//! operational layer the paper's multi-target orchestration (§III-B)
//! implies but never builds. One lab has a handful of boards; a CI
//! fleet has many queued firmware images. This crate arbitrates between
//! them:
//!
//! * **Jobs with hard budgets** — virtual time, scheduling quanta,
//!   instruction count, a wall-clock deadline and a snapshot-store byte
//!   budget, all enforced *cooperatively*: a watchdog cancels (never
//!   kills) an over-budget job at a quantum boundary via
//!   [`hardsnap::CancelToken`], so the partial [`hardsnap::RunResult`]
//!   and its campaign checkpoint stay valid and resumable.
//! * **Admission control** — a job is admitted only when the replica
//!   pool and the bounded queue have room; otherwise the submission is
//!   rejected with the typed [`ServeError::Saturated`], never silently
//!   dropped or unboundedly queued.
//! * **Crash safety** — every accepted job is journaled to the state
//!   directory before it is acknowledged, and every leg of progress is
//!   checkpointed with the crash-atomic campaign format
//!   (tmp + rename + fsync). `kill -9` the daemon at any instant,
//!   restart it, and every in-flight campaign resumes and finishes with
//!   a canonical digest **bit-identical** to an uninterrupted run.
//! * **Flaky-run detection** — a completed job can be re-executed
//!   `repeat` times with re-seeded fault plans on its own replica
//!   allocation; digest divergence is reported as `flaky` (with the
//!   first diverging state id) vs `stable`, with CI-friendly exit
//!   codes.
//!
//! The wire protocol is newline-delimited JSON over a unix socket (or
//! stdio), built on the in-tree [`hardsnap_util::json`] reader/writer —
//! the workspace stays fully offline, no serde. 64-bit digests travel
//! as hex *strings* (`"0x…"`): JSON numbers are f64 and exact only to
//! 2^53.

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod events;
pub mod job;
pub mod pool;
pub mod proto;
pub mod runner;

pub use client::{Client, EventStream};
pub use daemon::{Daemon, DaemonConfig, SchedPolicy};
pub use events::{Event, EventBody, EventBus, Subscription};
pub use job::{DaemonStats, JobSpec, JobState, JobSummary, Verdict};
pub use pool::{Lease, PoolConfig, PoolStats, WarmPool};
pub use proto::{Request, Response};
pub use runner::ReplicaSource;

use std::fmt;
use std::path::Path;

/// Errors from the campaign service, client or daemon side.
#[derive(Debug)]
pub enum ServeError {
    /// The daemon cannot admit the job: the replica pool plus the
    /// bounded submission queue are full (or the job wants more
    /// replicas than the pool holds). The typed face of back-pressure —
    /// callers retry later or scale the pool; nothing was enqueued.
    Saturated {
        /// Why admission failed, human-readable.
        reason: String,
    },
    /// Filesystem or socket failure.
    Io(String),
    /// A malformed request, response or job file.
    Protocol(String),
    /// A job-level failure (bad firmware spec, engine error).
    Job(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Saturated { reason } => write!(f, "saturated: {reason}"),
            ServeError::Io(m) => write!(f, "serve I/O: {m}"),
            ServeError::Protocol(m) => write!(f, "serve protocol: {m}"),
            ServeError::Job(m) => write!(f, "job: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Writes `bytes` to `path` crash-atomically (tmp sibling + fsync +
/// rename + directory fsync), the same discipline as campaign
/// checkpoints: a crash leaves the old file or the complete new one,
/// never a torn hybrid.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), ServeError> {
    use std::io::Write as _;
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| ServeError::Io(format!("{}: {e}", path.display()));
    {
        let mut f = std::fs::File::create(&tmp).map_err(io)?;
        f.write_all(bytes).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    std::fs::rename(&tmp, path).map_err(io)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Formats a 64-bit digest for the wire (hex string, exact — JSON
/// numbers are f64).
pub fn digest_hex(d: u64) -> String {
    format!("{d:#018x}")
}
