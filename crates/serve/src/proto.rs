//! Wire protocol: newline-delimited JSON, one request per line, one
//! response per line, over a unix socket or stdio.
//!
//! Requests are objects with an `op` discriminator; responses with an
//! `ok` discriminator. The codec is deliberately tiny and built on the
//! in-tree [`hardsnap_util::json`] — the workspace stays offline.

use crate::events::Event;
use crate::job::{DaemonStats, JobSpec, JobSummary};
use crate::ServeError;
use hardsnap_util::json::{parse, Value};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};

/// A client request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Submit a job for admission.
    Submit(JobSpec),
    /// Report one job (`Some(id)`) or all jobs (`None`).
    Status(Option<u64>),
    /// Cooperatively cancel a job: its token is flipped and it stops at
    /// the next quantum boundary with a valid checkpoint.
    Cancel(u64),
    /// Switch this connection to a live event stream: the daemon acks
    /// with `subscribed`, then pushes one [`Event`] per line (with
    /// blank keep-alive lines while idle) until the client disconnects.
    Subscribe,
    /// Fetch the daemon-wide aggregated metrics snapshot.
    Metrics,
    /// Dump the in-memory flight recorder.
    DumpFlight,
    /// Liveness probe.
    Ping,
    /// Stop accepting work and exit once the socket loop drains.
    Shutdown,
}

impl Request {
    /// Serializes for the wire.
    pub fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        match self {
            Request::Submit(spec) => {
                m.insert("op".into(), Value::Str("submit".into()));
                m.insert("job".into(), spec.to_value());
            }
            Request::Status(id) => {
                m.insert("op".into(), Value::Str("status".into()));
                if let Some(id) = id {
                    m.insert("id".into(), Value::Num(*id as f64));
                }
            }
            Request::Cancel(id) => {
                m.insert("op".into(), Value::Str("cancel".into()));
                m.insert("id".into(), Value::Num(*id as f64));
            }
            Request::Subscribe => {
                m.insert("op".into(), Value::Str("subscribe".into()));
            }
            Request::Metrics => {
                m.insert("op".into(), Value::Str("metrics".into()));
            }
            Request::DumpFlight => {
                m.insert("op".into(), Value::Str("dump-flight".into()));
            }
            Request::Ping => {
                m.insert("op".into(), Value::Str("ping".into()));
            }
            Request::Shutdown => {
                m.insert("op".into(), Value::Str("shutdown".into()));
            }
        }
        Value::Obj(m)
    }

    /// Parses a request object.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] on anything malformed.
    pub fn from_value(v: &Value) -> Result<Request, ServeError> {
        let Value::Obj(m) = v else {
            return Err(ServeError::Protocol("request must be an object".into()));
        };
        let id = || {
            m.get("id")
                .and_then(Value::as_u64)
                .ok_or_else(|| ServeError::Protocol("request needs a numeric 'id'".into()))
        };
        match m.get("op").and_then(Value::as_str) {
            Some("submit") => {
                let job = m
                    .get("job")
                    .ok_or_else(|| ServeError::Protocol("submit needs a 'job' object".into()))?;
                Ok(Request::Submit(JobSpec::from_value(job)?))
            }
            Some("status") => Ok(Request::Status(m.get("id").and_then(Value::as_u64))),
            Some("cancel") => Ok(Request::Cancel(id()?)),
            Some("subscribe") => Ok(Request::Subscribe),
            Some("metrics") => Ok(Request::Metrics),
            Some("dump-flight") => Ok(Request::DumpFlight),
            Some("ping") => Ok(Request::Ping),
            Some("shutdown") => Ok(Request::Shutdown),
            other => Err(ServeError::Protocol(format!("unknown op {other:?}"))),
        }
    }
}

/// A daemon response.
#[derive(Clone, Debug)]
pub enum Response {
    /// The job was admitted, journaled and queued.
    Submitted {
        /// Daemon-assigned job id.
        id: u64,
    },
    /// Job summaries (one, or the whole table), plus daemon occupancy.
    Status {
        /// Job summaries.
        jobs: Vec<JobSummary>,
        /// Daemon-wide occupancy (absent in old result files).
        daemon: Option<DaemonStats>,
    },
    /// The cancel request was delivered.
    Cancelled {
        /// The cancelled job's id.
        id: u64,
    },
    /// The connection switched to event streaming.
    Subscribed,
    /// One pushed lifecycle event (streaming connections only).
    Event(Event),
    /// The aggregated metrics snapshot
    /// (schema `hardsnap-telemetry-v1`).
    Metrics(Value),
    /// The flight-recorder dump (schema `hardsnap-flight-v1`).
    Flight(Value),
    /// Liveness reply.
    Pong,
    /// The daemon acknowledged shutdown.
    ShuttingDown,
    /// The request failed; `kind` is machine-matchable
    /// (`saturated` / `io` / `protocol` / `job` / `unknown-job`).
    Error {
        /// Machine-matchable error class.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Wraps a [`ServeError`] for the wire, preserving its type.
    pub fn from_error(e: &ServeError) -> Response {
        let kind = match e {
            ServeError::Saturated { .. } => "saturated",
            ServeError::Io(_) => "io",
            ServeError::Protocol(_) => "protocol",
            ServeError::Job(_) => "job",
        };
        Response::Error {
            kind: kind.into(),
            message: e.to_string(),
        }
    }

    /// Serializes for the wire.
    pub fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        let ok = !matches!(self, Response::Error { .. });
        m.insert("ok".into(), Value::Bool(ok));
        match self {
            Response::Submitted { id } => {
                m.insert("kind".into(), Value::Str("submitted".into()));
                m.insert("id".into(), Value::Num(*id as f64));
            }
            Response::Status { jobs, daemon } => {
                m.insert("kind".into(), Value::Str("status".into()));
                m.insert(
                    "jobs".into(),
                    Value::Arr(jobs.iter().map(JobSummary::to_value).collect()),
                );
                if let Some(stats) = daemon {
                    m.insert("daemon".into(), stats.to_value());
                }
            }
            Response::Cancelled { id } => {
                m.insert("kind".into(), Value::Str("cancelled".into()));
                m.insert("id".into(), Value::Num(*id as f64));
            }
            Response::Subscribed => {
                m.insert("kind".into(), Value::Str("subscribed".into()));
            }
            Response::Event(ev) => {
                m.insert("kind".into(), Value::Str("event".into()));
                if let Value::Obj(fields) = ev.to_value() {
                    m.extend(fields);
                }
            }
            Response::Metrics(v) => {
                m.insert("kind".into(), Value::Str("metrics".into()));
                m.insert("metrics".into(), v.clone());
            }
            Response::Flight(v) => {
                m.insert("kind".into(), Value::Str("flight".into()));
                m.insert("flight".into(), v.clone());
            }
            Response::Pong => {
                m.insert("kind".into(), Value::Str("pong".into()));
            }
            Response::ShuttingDown => {
                m.insert("kind".into(), Value::Str("shutting-down".into()));
            }
            Response::Error { kind, message } => {
                m.insert("kind".into(), Value::Str(kind.clone()));
                m.insert("message".into(), Value::Str(message.clone()));
            }
        }
        Value::Obj(m)
    }

    /// Parses a response object (client side).
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] on anything malformed.
    pub fn from_value(v: &Value) -> Result<Response, ServeError> {
        let Value::Obj(m) = v else {
            return Err(ServeError::Protocol("response must be an object".into()));
        };
        let ok = m.get("ok").and_then(Value::as_bool).unwrap_or(false);
        let kind = m.get("kind").and_then(Value::as_str).unwrap_or("");
        if !ok {
            return Ok(Response::Error {
                kind: kind.to_string(),
                message: m
                    .get("message")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            });
        }
        let id = || {
            m.get("id")
                .and_then(Value::as_u64)
                .ok_or_else(|| ServeError::Protocol("response needs a numeric 'id'".into()))
        };
        match kind {
            "submitted" => Ok(Response::Submitted { id: id()? }),
            "cancelled" => Ok(Response::Cancelled { id: id()? }),
            "subscribed" => Ok(Response::Subscribed),
            "event" => Ok(Response::Event(Event::from_value(v)?)),
            "metrics" => Ok(Response::Metrics(m.get("metrics").cloned().ok_or_else(
                || ServeError::Protocol("metrics response needs 'metrics'".into()),
            )?)),
            "flight" => Ok(Response::Flight(m.get("flight").cloned().ok_or_else(
                || ServeError::Protocol("flight response needs 'flight'".into()),
            )?)),
            "pong" => Ok(Response::Pong),
            "shutting-down" => Ok(Response::ShuttingDown),
            "status" => {
                let jobs = match m.get("jobs") {
                    Some(Value::Arr(items)) => items
                        .iter()
                        .map(JobSummary::from_value)
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => {
                        return Err(ServeError::Protocol(
                            "status response needs a 'jobs' array".into(),
                        ))
                    }
                };
                let daemon = match m.get("daemon") {
                    Some(stats) => Some(DaemonStats::from_value(stats)?),
                    None => None,
                };
                Ok(Response::Status { jobs, daemon })
            }
            other => Err(ServeError::Protocol(format!(
                "unknown response kind '{other}'"
            ))),
        }
    }

    /// Converts an error response back into the typed [`ServeError`]
    /// it was on the daemon side (so `Saturated` survives the wire).
    pub fn into_result(self) -> Result<Response, ServeError> {
        match self {
            Response::Error { kind, message } => Err(match kind.as_str() {
                "saturated" => ServeError::Saturated { reason: message },
                "io" => ServeError::Io(message),
                "job" | "unknown-job" => ServeError::Job(message),
                _ => ServeError::Protocol(message),
            }),
            other => Ok(other),
        }
    }
}

/// Writes one message as a single JSON line and flushes.
///
/// # Errors
///
/// [`ServeError::Io`] on a broken stream.
pub fn write_line(w: &mut dyn Write, v: &Value) -> Result<(), ServeError> {
    let mut line = v.to_json();
    line.push('\n');
    w.write_all(line.as_bytes())
        .and_then(|()| w.flush())
        .map_err(|e| ServeError::Io(format!("write: {e}")))
}

/// Reads one JSON line. `Ok(None)` at end of stream.
///
/// # Errors
///
/// [`ServeError::Io`] on a broken stream, [`ServeError::Protocol`] on
/// bad JSON.
pub fn read_line(r: &mut dyn BufRead) -> Result<Option<Value>, ServeError> {
    let mut line = String::new();
    loop {
        line.clear();
        let n = r
            .read_line(&mut line)
            .map_err(|e| ServeError::Io(format!("read: {e}")))?;
        if n == 0 {
            return Ok(None);
        }
        if line.trim().is_empty() {
            continue; // tolerate blank keep-alive lines
        }
        return parse(line.trim())
            .map(Some)
            .map_err(|e| ServeError::Protocol(format!("bad JSON line: {e}")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Submit(JobSpec::default()),
            Request::Status(None),
            Request::Status(Some(7)),
            Request::Cancel(3),
            Request::Subscribe,
            Request::Metrics,
            Request::DumpFlight,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            let json = req.to_value().to_json();
            let back = Request::from_value(&parse(&json).unwrap()).unwrap();
            assert_eq!(back.to_value().to_json(), json);
        }
    }

    #[test]
    fn saturated_survives_the_wire_as_a_typed_error() {
        let resp = Response::from_error(&ServeError::Saturated {
            reason: "pool full".into(),
        });
        let json = resp.to_value().to_json();
        let back = Response::from_value(&parse(&json).unwrap()).unwrap();
        match back.into_result() {
            Err(ServeError::Saturated { reason }) => assert!(reason.contains("pool full")),
            other => panic!("expected Saturated, got {other:?}"),
        }
    }

    #[test]
    fn event_and_status_responses_roundtrip() {
        let ev = Event {
            seq: 3,
            ts_ms: 99,
            dropped: 1,
            body: crate::events::EventBody::Started {
                id: 7,
                source: "warm".into(),
            },
        };
        let json = Response::Event(ev.clone()).to_value().to_json();
        match Response::from_value(&parse(&json).unwrap()).unwrap() {
            Response::Event(back) => assert_eq!(back, ev),
            other => panic!("expected event, got {other:?}"),
        }
        let status = Response::Status {
            jobs: Vec::new(),
            daemon: Some(DaemonStats {
                queue_depth: 1,
                pool_replicas: 4,
                pool_busy: 2,
                subscribers: 1,
                events_published: 10,
                events_dropped: 0,
                warm_target: 2,
                warm_ready: 1,
                warm_leased: 1,
                warm_arming: 0,
            }),
        };
        let json = status.to_value().to_json();
        match Response::from_value(&parse(&json).unwrap()).unwrap() {
            Response::Status { jobs, daemon } => {
                assert!(jobs.is_empty());
                assert_eq!(daemon.unwrap().pool_busy, 2);
            }
            other => panic!("expected status, got {other:?}"),
        }
    }

    #[test]
    fn read_line_skips_blanks_and_ends_cleanly() {
        let data = b"\n  \n{\"op\":\"ping\"}\n";
        let mut r = std::io::BufReader::new(&data[..]);
        let v = read_line(&mut r).unwrap().unwrap();
        assert!(matches!(Request::from_value(&v).unwrap(), Request::Ping));
        assert!(read_line(&mut r).unwrap().is_none());
    }
}
