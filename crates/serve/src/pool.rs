//! The warm replica pool: pre-built, pre-armed targets leased to jobs
//! so turnaround skips the cold-boot cost.
//!
//! Cold-booting a replica means re-parsing the SoC's Verilog,
//! re-elaborating, and re-compiling the bytecode engine — by far the
//! largest fixed cost of a short job. The pool pays that cost once per
//! replica, **off the job critical path**: background armer threads
//! build prototypes at daemon start and restore each one to a
//! designated *baseline* snapshot with
//! [`hardsnap::replica::arm_baseline`] (shape admission check first,
//! then a lazy O(changed) restore). A job that leases a warm prototype
//! forks its per-leg replicas from it via [`HwTarget::fork_clean`] —
//! sharing the compiled design, which is the entire win — and the
//! lease's drop handler re-arms the prototype in the background so the
//! pool refills without delaying the next job.
//!
//! ## Digest invariance
//!
//! [`HwTarget::fork_clean`] yields a *power-on* replica regardless of
//! the prototype's current state, exactly what a cold boot constructs —
//! so a leg forked from a leased prototype and a cold-booted leg are
//! semantically identical and every job digests bit-identically whether
//! it hit or missed the pool (pinned by the pool tests and `exp_sched`).
//!
//! ## Shape gate
//!
//! The baseline file's META section carries the design `shape_hash`.
//! Arming checks it against the prototype's live shape *before* any
//! payload I/O; a baseline from a different design disables the pool
//! (every lease then misses and jobs cold-boot — correctness never
//! depends on the pool). An operator can point `--baseline` at a
//! snapshot unpacked from a `hardsnap-cli snapshot pack` archive, which
//! performs the same gate at transfer time.

use crate::ServeError;
use hardsnap::replica::arm_baseline;
use hardsnap::HwTarget;
use hardsnap_bus::persist::SnapshotFile;
use hardsnap_sim::{SimEngine, SimTarget};
use hardsnap_telemetry::{Counter, Metric, Recorder};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Pool tuning, derived from the daemon's config.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Warm replicas to keep armed (0 = pool disabled).
    pub replicas: usize,
    /// Baseline snapshot to arm against; `None` synthesizes one from a
    /// freshly built prototype's post-reset state.
    pub baseline: Option<PathBuf>,
    /// Where a synthesized baseline lands (`<state_dir>/baseline.hsnap`).
    pub state_dir: PathBuf,
}

/// Live occupancy, for gauges and `top`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Configured pool size.
    pub target: u64,
    /// Armed replicas ready to lease.
    pub ready: u64,
    /// Replicas currently leased to running jobs.
    pub leased: u64,
    /// Replicas being built or re-armed in the background.
    pub arming: u64,
    /// Replicas retired after an arm failure.
    pub retired: u64,
    /// True when the pool refuses to lease (shape mismatch or build
    /// failure); every lease then misses and jobs cold-boot.
    pub disabled: bool,
}

struct PoolState {
    ready: Vec<Box<dyn HwTarget>>,
    leased: usize,
    arming: usize,
    retired: usize,
    disabled: bool,
    /// Why the pool disabled itself, for the log.
    disabled_reason: Option<String>,
    baseline: Option<Arc<SnapshotFile>>,
}

struct Shared {
    state: Mutex<PoolState>,
    changed: Condvar,
    rec: Recorder,
    target: usize,
}

impl Shared {
    /// Arms (or re-arms) `proto` against the pool baseline and returns
    /// it to the ready set; retires it on failure. Runs on armer /
    /// lease-return threads, never on a job's critical path.
    fn arm_and_stash(self: &Arc<Shared>, mut proto: Box<dyn HwTarget>, rearm: bool) {
        let baseline = self.state.lock().unwrap().baseline.clone();
        let Some(file) = baseline else {
            // Disabled before this replica finished building.
            let mut g = self.state.lock().unwrap();
            g.arming = g.arming.saturating_sub(1);
            g.retired += 1;
            self.changed.notify_all();
            return;
        };
        let t0 = Instant::now();
        let armed = arm_baseline(proto.as_mut(), &file);
        self.rec
            .observe(Metric::ServePoolRearmUs, t0.elapsed().as_micros() as u64);
        let mut g = self.state.lock().unwrap();
        g.arming = g.arming.saturating_sub(1);
        match armed {
            Ok(_) => {
                if rearm {
                    self.rec.count(Counter::ServePoolRearms);
                }
                g.ready.push(proto);
            }
            Err(e) => {
                self.rec.count(Counter::ServePoolRearmFails);
                g.retired += 1;
                eprintln!("hardsnap-serve: warm-pool arm failed, replica retired: {e}");
            }
        }
        drop(g);
        self.changed.notify_all();
    }
}

/// The pool. The daemon owns one when `--warm-pool` is nonzero.
pub struct WarmPool {
    shared: Arc<Shared>,
}

/// A leased warm prototype. The job forks per-leg replicas from it;
/// dropping the lease re-arms the prototype in the background and
/// returns it to the pool.
pub struct Lease {
    proto: Option<Box<dyn HwTarget>>,
    shared: Arc<Shared>,
}

impl Lease {
    /// The armed prototype to fork replicas from.
    pub fn prototype(&self) -> &dyn HwTarget {
        self.proto.as_deref().expect("lease holds its prototype")
    }

    /// Mutable access, for tests that dirty a prototype to prove the
    /// re-arm path restores it.
    pub fn prototype_mut(&mut self) -> &mut dyn HwTarget {
        self.proto
            .as_deref_mut()
            .expect("lease holds its prototype")
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let Some(proto) = self.proto.take() else {
            return;
        };
        let shared = Arc::clone(&self.shared);
        {
            let mut g = shared.state.lock().unwrap();
            g.leased -= 1;
            g.arming += 1;
        }
        std::thread::spawn(move || shared.arm_and_stash(proto, true));
    }
}

/// Builds one bare prototype: the built-in SoC on the bytecode engine.
/// This is the expensive step the pool amortizes.
fn build_prototype() -> Result<Box<dyn HwTarget>, ServeError> {
    let soc = hardsnap_periph::soc().map_err(|e| ServeError::Job(e.to_string()))?;
    Ok(Box::new(
        SimTarget::with_engine(soc, SimEngine::Bytecode)
            .map_err(|e| ServeError::Job(e.to_string()))?,
    ))
}

impl WarmPool {
    /// Spawns the armer threads and returns immediately; replicas
    /// become leasable as they finish arming (watch with
    /// [`WarmPool::wait_ready`]).
    ///
    /// The first armer resolves the baseline: an explicit
    /// `cfg.baseline` file is opened and shape-checked against a
    /// freshly built prototype (mismatch disables the pool — typed,
    /// logged, jobs fall back to cold boots); with no explicit file the
    /// prototype's post-reset state is captured to
    /// `<state_dir>/baseline.hsnap` and used.
    pub fn new(cfg: PoolConfig, rec: Recorder) -> Arc<WarmPool> {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                ready: Vec::new(),
                leased: 0,
                arming: cfg.replicas,
                retired: 0,
                disabled: false,
                disabled_reason: None,
                baseline: None,
            }),
            changed: Condvar::new(),
            rec,
            target: cfg.replicas,
        });
        if cfg.replicas > 0 {
            let seed = Arc::clone(&shared);
            std::thread::spawn(move || {
                // First prototype doubles as the baseline resolver so the
                // shape gate runs exactly once, against real live state.
                let proto = match build_prototype() {
                    Ok(p) => p,
                    Err(e) => {
                        Self::disable(&seed, format!("prototype build failed: {e}"));
                        return;
                    }
                };
                let file = match Self::resolve_baseline(&cfg, proto.as_ref()) {
                    Ok(f) => Arc::new(f),
                    Err(e) => {
                        Self::disable(&seed, e);
                        return;
                    }
                };
                seed.state.lock().unwrap().baseline = Some(Arc::clone(&file));
                for _ in 1..cfg.replicas {
                    let shared = Arc::clone(&seed);
                    std::thread::spawn(move || match build_prototype() {
                        Ok(p) => shared.arm_and_stash(p, false),
                        Err(e) => {
                            let mut g = shared.state.lock().unwrap();
                            g.arming = g.arming.saturating_sub(1);
                            g.retired += 1;
                            drop(g);
                            shared.changed.notify_all();
                            eprintln!("hardsnap-serve: warm-pool build failed: {e}");
                        }
                    });
                }
                seed.arm_and_stash(proto, false);
            });
        }
        Arc::new(WarmPool { shared })
    }

    fn disable(shared: &Arc<Shared>, reason: String) {
        let mut g = shared.state.lock().unwrap();
        g.disabled = true;
        g.retired += g.arming;
        g.arming = 0;
        eprintln!("hardsnap-serve: warm pool disabled: {reason}");
        g.disabled_reason = Some(reason);
        drop(g);
        shared.changed.notify_all();
    }

    fn resolve_baseline(cfg: &PoolConfig, proto: &dyn HwTarget) -> Result<SnapshotFile, String> {
        match &cfg.baseline {
            Some(path) => {
                let file = SnapshotFile::open(path)
                    .map_err(|e| format!("baseline {}: {e}", path.display()))?;
                let meta = file.meta().map_err(|e| format!("baseline META: {e}"))?;
                meta.check_shape(proto.snapshot_shape())
                    .map_err(|e| format!("baseline {}: {e}", path.display()))?;
                Ok(file)
            }
            None => {
                let path = cfg.state_dir.join("baseline.hsnap");
                let mut fresh = proto
                    .fork_clean()
                    .map_err(|e| format!("baseline fork: {e}"))?;
                hardsnap::replica::synthesize_baseline(fresh.as_mut(), &path)
                    .map_err(|e| format!("baseline synthesis: {e}"))?;
                SnapshotFile::open(&path).map_err(|e| format!("baseline reopen: {e}"))
            }
        }
    }

    /// Leases an armed prototype, or `None` (counted as a pool miss)
    /// when the pool is disabled or momentarily empty — the caller then
    /// cold-boots, so a miss costs latency, never correctness.
    pub fn try_lease(&self) -> Option<Lease> {
        let mut g = self.shared.state.lock().unwrap();
        if g.disabled {
            self.shared.rec.count(Counter::ServePoolMisses);
            return None;
        }
        match g.ready.pop() {
            Some(proto) => {
                g.leased += 1;
                self.shared.rec.count(Counter::ServePoolHits);
                Some(Lease {
                    proto: Some(proto),
                    shared: Arc::clone(&self.shared),
                })
            }
            None => {
                self.shared.rec.count(Counter::ServePoolMisses);
                None
            }
        }
    }

    /// Live occupancy.
    pub fn stats(&self) -> PoolStats {
        let g = self.shared.state.lock().unwrap();
        PoolStats {
            target: self.shared.target as u64,
            ready: g.ready.len() as u64,
            leased: g.leased as u64,
            arming: g.arming as u64,
            retired: g.retired as u64,
            disabled: g.disabled,
        }
    }

    /// Blocks until at least `n` replicas are ready (or arming can no
    /// longer reach `n`, or the timeout lapses). Returns whether `n`
    /// are ready — startup/bench helper, never on a job path.
    pub fn wait_ready(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.shared.state.lock().unwrap();
        loop {
            if g.ready.len() >= n {
                return true;
            }
            // Can the pool still get there?
            if g.disabled || g.ready.len() + g.arming + g.leased < n {
                return false;
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self
                .shared
                .changed
                .wait_timeout(g, left.min(Duration::from_millis(50)))
                .unwrap();
            g = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardsnap_bus::persist::PersistError;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hardsnap-pool-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn pool(name: &str, replicas: usize, baseline: Option<PathBuf>) -> Arc<WarmPool> {
        WarmPool::new(
            PoolConfig {
                replicas,
                baseline,
                state_dir: tmp(name),
            },
            Recorder::enabled(0, "pool-test"),
        )
    }

    #[test]
    fn arms_leases_and_rearms() {
        let p = pool("basic", 2, None);
        assert!(p.wait_ready(2, Duration::from_secs(60)), "{:?}", p.stats());

        let mut lease = p.try_lease().expect("armed pool must lease");
        assert_eq!(p.stats().leased, 1);
        // Dirty the prototype: the re-arm path must restore the baseline.
        lease.prototype_mut().reset();
        let fork = lease.prototype().fork_clean().unwrap();
        assert_eq!(
            fork.snapshot_shape(),
            lease.prototype().snapshot_shape(),
            "fork shares the design shape"
        );
        drop(lease);

        // The returned replica re-arms in the background.
        assert!(p.wait_ready(2, Duration::from_secs(60)), "{:?}", p.stats());
        let s = p.stats();
        assert_eq!(s.ready, 2);
        assert_eq!(s.leased, 0);
        assert!(!s.disabled);
    }

    #[test]
    fn empty_pool_misses_and_never_blocks() {
        let p = pool("empty", 0, None);
        assert!(p.try_lease().is_none());
        let s = p.stats();
        assert_eq!(s.target, 0);
        assert_eq!(s.ready, 0);
    }

    #[test]
    fn mismatched_baseline_disables_the_pool() {
        // A baseline captured from a different design: the shape gate
        // must disable the pool and every lease must miss (cold-boot
        // fallback), not corrupt jobs.
        let dir = tmp("mismatch");
        let path = dir.join("wrong.hsnap");
        let small = hardsnap_periph::timer().unwrap();
        let mut other: Box<dyn HwTarget> =
            Box::new(SimTarget::with_engine(small, SimEngine::Bytecode).unwrap());
        hardsnap::replica::synthesize_baseline(other.as_mut(), &path).unwrap();
        // Sanity: the gate itself is the typed ShapeMismatch.
        let file = SnapshotFile::open(&path).unwrap();
        let proto = build_prototype().unwrap();
        assert!(matches!(
            file.meta().unwrap().check_shape(proto.snapshot_shape()),
            Err(PersistError::ShapeMismatch { .. })
        ));

        let p = pool("mismatch-pool", 2, Some(path));
        assert!(
            !p.wait_ready(1, Duration::from_secs(60)),
            "mismatched baseline must never arm"
        );
        let s = p.stats();
        assert!(s.disabled);
        assert_eq!(s.ready, 0);
        assert!(p.try_lease().is_none(), "disabled pool only misses");
    }
}
