//! Client side of the campaign service: a thin NDJSON request/response
//! wrapper over a unix-socket connection, plus polling helpers the CLI
//! verbs (`submit --wait`, CI gates) build on.

use crate::events::{Event, EventBody};
use crate::job::{DaemonStats, JobSpec, JobState, JobSummary};
use crate::proto::{read_line, write_line, Request, Response};
use crate::ServeError;
use hardsnap_util::json::Value;
use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A connected client. One request in flight at a time (the protocol
/// is strictly lockstep).
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    /// The socket this client connected to — `wait` opens a second,
    /// subscribed connection to it.
    socket: PathBuf,
}

impl Client {
    /// Connects to the daemon's unix socket.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the socket is absent or refuses.
    pub fn connect(socket: &Path) -> Result<Client, ServeError> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| ServeError::Io(format!("connect {}: {e}", socket.display())))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ServeError::Io(format!("clone stream: {e}")))?,
        );
        Ok(Client {
            reader,
            writer: stream,
            socket: socket.to_path_buf(),
        })
    }

    /// Connects, retrying for up to `timeout` — for racing a daemon
    /// that is still binding its socket.
    ///
    /// # Errors
    ///
    /// The last connection error once the timeout elapses.
    pub fn connect_retry(socket: &Path, timeout: Duration) -> Result<Client, ServeError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(socket) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// Sends one request and reads its response, converting daemon-side
    /// errors back into their typed [`ServeError`] (so `Saturated`
    /// survives the wire).
    ///
    /// # Errors
    ///
    /// Transport errors, protocol errors, or the daemon's typed error.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        write_line(&mut self.writer, &req.to_value())?;
        let v = read_line(&mut self.reader)?
            .ok_or_else(|| ServeError::Io("daemon closed the connection".into()))?;
        Response::from_value(&v)?.into_result()
    }

    /// Submits a job; returns its daemon-assigned id.
    ///
    /// # Errors
    ///
    /// [`ServeError::Saturated`] when the daemon cannot admit it.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, ServeError> {
        match self.request(&Request::Submit(spec.clone()))? {
            Response::Submitted { id } => Ok(id),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to submit: {other:?}"
            ))),
        }
    }

    /// Fetches summaries for one job or all jobs.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn status(&mut self, id: Option<u64>) -> Result<Vec<JobSummary>, ServeError> {
        self.status_full(id).map(|(jobs, _)| jobs)
    }

    /// Fetches job summaries plus the daemon-wide occupancy stats.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn status_full(
        &mut self,
        id: Option<u64>,
    ) -> Result<(Vec<JobSummary>, Option<DaemonStats>), ServeError> {
        match self.request(&Request::Status(id))? {
            Response::Status { jobs, daemon } => Ok((jobs, daemon)),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to status: {other:?}"
            ))),
        }
    }

    /// Fetches the daemon's aggregated metrics snapshot as a raw JSON
    /// value (schema `hardsnap-telemetry-v1`).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn metrics(&mut self) -> Result<Value, ServeError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(v) => Ok(v),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to metrics: {other:?}"
            ))),
        }
    }

    /// Dumps the daemon's flight recorder (schema `hardsnap-flight-v1`).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn dump_flight(&mut self) -> Result<Value, ServeError> {
        match self.request(&Request::DumpFlight)? {
            Response::Flight(v) => Ok(v),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to dump-flight: {other:?}"
            ))),
        }
    }

    /// Switches this connection into a live event stream. Consumes the
    /// client — the connection can no longer carry lockstep requests.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures during the subscribe handshake.
    pub fn subscribe(mut self) -> Result<EventStream, ServeError> {
        match self.request(&Request::Subscribe)? {
            Response::Subscribed => Ok(EventStream {
                reader: self.reader,
                _writer: self.writer,
                deadline: None,
            }),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to subscribe: {other:?}"
            ))),
        }
    }

    /// Requests cooperative cancellation of a job.
    ///
    /// # Errors
    ///
    /// [`ServeError::Job`] for an unknown id.
    pub fn cancel(&mut self, id: u64) -> Result<(), ServeError> {
        match self.request(&Request::Cancel(id))? {
            Response::Cancelled { .. } => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to cancel: {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures (a dead daemon).
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to ping: {other:?}"
            ))),
        }
    }

    /// Asks the daemon to stop accepting work and exit.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to shutdown: {other:?}"
            ))),
        }
    }

    /// Blocks until the job is terminal or `timeout` elapses.
    ///
    /// Event-driven: opens a second, subscribed connection and sleeps
    /// on the daemon's event stream until the job's `terminal` event
    /// arrives — no busy-polling, sub-millisecond reaction. The
    /// status-poll loop remains as the fallback when the subscription
    /// cannot be established or the stream dies mid-wait.
    ///
    /// # Errors
    ///
    /// [`ServeError::Job`] on timeout or if the job vanishes.
    pub fn wait(&mut self, id: u64, timeout: Duration) -> Result<JobSummary, ServeError> {
        let deadline = Instant::now() + timeout;
        if let Ok(mut stream) = Client::connect(&self.socket).and_then(Client::subscribe) {
            stream.set_deadline(Some(deadline));
            let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
            // Re-check status only after the subscription is live:
            // a job that terminalized before this line cannot emit
            // another terminal event, so checking later would hang.
            if let Some(s) = self.check_done(id)? {
                return Ok(s);
            }
            loop {
                if Instant::now() >= deadline {
                    break;
                }
                match stream.next_event() {
                    Ok(Some(ev)) => {
                        let terminal =
                            ev.body.job_id() == id && matches!(ev.body, EventBody::Terminal { .. });
                        // A gapped stream may have shed our terminal
                        // event — any reported drop forces a re-check.
                        if terminal || ev.dropped > 0 {
                            if let Some(s) = self.check_done(id)? {
                                return Ok(s);
                            }
                        }
                    }
                    Ok(None) | Err(_) => break, // stream gone → poll fallback
                }
            }
        }
        self.wait_poll(id, deadline)
    }

    /// One status probe: `Some` iff the job is terminal.
    fn check_done(&mut self, id: u64) -> Result<Option<JobSummary>, ServeError> {
        let mut jobs = self.status(Some(id))?;
        match jobs.pop() {
            Some(s) if s.state == JobState::Done => Ok(Some(s)),
            Some(_) => Ok(None),
            None => Err(ServeError::Job(format!("unknown job {id}"))),
        }
    }

    /// The poll fallback: probes `status` every 50 ms until terminal
    /// or `deadline`.
    fn wait_poll(&mut self, id: u64, deadline: Instant) -> Result<JobSummary, ServeError> {
        loop {
            if let Some(s) = self.check_done(id)? {
                return Ok(s);
            }
            if Instant::now() >= deadline {
                return Err(ServeError::Job(format!("timed out waiting for job {id}")));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

/// A subscribed connection: reads pushed [`Event`]s until the daemon
/// shuts down or the stream drops. Keep-alive blank lines are skipped
/// transparently by the codec.
pub struct EventStream {
    reader: BufReader<UnixStream>,
    _writer: UnixStream,
    deadline: Option<Instant>,
}

impl EventStream {
    /// Reads the next event. `Ok(None)` when the daemon closed the
    /// stream.
    ///
    /// Blank keep-alive lines are skipped, but each skip re-checks the
    /// deadline set by [`EventStream::set_deadline`] — an idle daemon
    /// sends keep-alives faster than any sane read timeout, so the
    /// socket-level timeout alone cannot bound this call.
    ///
    /// # Errors
    ///
    /// Transport errors (including a read timeout, if one was set),
    /// malformed events, and an elapsed deadline.
    pub fn next_event(&mut self) -> Result<Option<Event>, ServeError> {
        use std::io::BufRead;
        let mut line = String::new();
        loop {
            if let Some(dl) = self.deadline {
                if Instant::now() >= dl {
                    return Err(ServeError::Io("event-stream deadline elapsed".into()));
                }
            }
            line.clear();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| ServeError::Io(format!("read: {e}")))?;
            if n == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue; // keep-alive
            }
            let v = hardsnap_util::json::parse(line.trim())
                .map_err(|e| ServeError::Protocol(format!("bad JSON line: {e}")))?;
            return match Response::from_value(&v)? {
                Response::Event(ev) => Ok(Some(ev)),
                Response::ShuttingDown => Ok(None),
                other => Err(ServeError::Protocol(format!(
                    "unexpected message on event stream: {other:?}"
                ))),
            };
        }
    }

    /// Bounds the *total* time future `next_event` calls may spend,
    /// keep-alives included (None = no bound). Pair with a socket read
    /// timeout so a silent, dead stream cannot block past it either.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Bounds how long `next_event` may block (None = forever).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the socket rejects the option.
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> Result<(), ServeError> {
        self.reader
            .get_ref()
            .set_read_timeout(t)
            .map_err(|e| ServeError::Io(format!("set_read_timeout: {e}")))
    }
}
