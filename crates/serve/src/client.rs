//! Client side of the campaign service: a thin NDJSON request/response
//! wrapper over a unix-socket connection, plus polling helpers the CLI
//! verbs (`submit --wait`, CI gates) build on.

use crate::job::{JobSpec, JobState, JobSummary};
use crate::proto::{read_line, write_line, Request, Response};
use crate::ServeError;
use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// A connected client. One request in flight at a time (the protocol
/// is strictly lockstep).
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to the daemon's unix socket.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the socket is absent or refuses.
    pub fn connect(socket: &Path) -> Result<Client, ServeError> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| ServeError::Io(format!("connect {}: {e}", socket.display())))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ServeError::Io(format!("clone stream: {e}")))?,
        );
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Connects, retrying for up to `timeout` — for racing a daemon
    /// that is still binding its socket.
    ///
    /// # Errors
    ///
    /// The last connection error once the timeout elapses.
    pub fn connect_retry(socket: &Path, timeout: Duration) -> Result<Client, ServeError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(socket) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// Sends one request and reads its response, converting daemon-side
    /// errors back into their typed [`ServeError`] (so `Saturated`
    /// survives the wire).
    ///
    /// # Errors
    ///
    /// Transport errors, protocol errors, or the daemon's typed error.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        write_line(&mut self.writer, &req.to_value())?;
        let v = read_line(&mut self.reader)?
            .ok_or_else(|| ServeError::Io("daemon closed the connection".into()))?;
        Response::from_value(&v)?.into_result()
    }

    /// Submits a job; returns its daemon-assigned id.
    ///
    /// # Errors
    ///
    /// [`ServeError::Saturated`] when the daemon cannot admit it.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, ServeError> {
        match self.request(&Request::Submit(spec.clone()))? {
            Response::Submitted { id } => Ok(id),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to submit: {other:?}"
            ))),
        }
    }

    /// Fetches summaries for one job or all jobs.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn status(&mut self, id: Option<u64>) -> Result<Vec<JobSummary>, ServeError> {
        match self.request(&Request::Status(id))? {
            Response::Status(jobs) => Ok(jobs),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to status: {other:?}"
            ))),
        }
    }

    /// Requests cooperative cancellation of a job.
    ///
    /// # Errors
    ///
    /// [`ServeError::Job`] for an unknown id.
    pub fn cancel(&mut self, id: u64) -> Result<(), ServeError> {
        match self.request(&Request::Cancel(id))? {
            Response::Cancelled { .. } => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to cancel: {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures (a dead daemon).
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to ping: {other:?}"
            ))),
        }
    }

    /// Asks the daemon to stop accepting work and exit.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to shutdown: {other:?}"
            ))),
        }
    }

    /// Polls `status` until the job is terminal or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`ServeError::Job`] on timeout or if the job vanishes.
    pub fn wait(&mut self, id: u64, timeout: Duration) -> Result<JobSummary, ServeError> {
        let deadline = Instant::now() + timeout;
        loop {
            let mut jobs = self.status(Some(id))?;
            match jobs.pop() {
                Some(s) if s.state == JobState::Done => return Ok(s),
                Some(_) => {}
                None => return Err(ServeError::Job(format!("unknown job {id}"))),
            }
            if Instant::now() >= deadline {
                return Err(ServeError::Job(format!(
                    "timed out waiting for job {id} after {timeout:?}"
                )));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}
