//! The campaign daemon: admission control, budget-aware priority
//! scheduling over a bounded replica pool, a warm replica pool for
//! fast job starts, watchdog cancellation, crash-safe journaling and
//! restart recovery.
//!
//! ## State machine
//!
//! `submit` → admission check (pool + bounded queue) → journal
//! `jobs/<id>/job.json` (crash-atomic, **before** the ack) → `Queued` →
//! scheduler grants `workers` replicas → `Running` (leg loop in
//! [`crate::runner`], checkpointing `jobs/<id>/checkpoint/` every leg)
//! → terminal verdict → `result.json` (crash-atomic) → `Done`.
//!
//! ## Scheduling
//!
//! Two policies ([`SchedPolicy`]):
//!
//! * **`Fifo`** — strict admission order, head-of-line blocks. The
//!   reference policy: simple, starvation-free, and the digest oracle
//!   for the invariance tests.
//! * **`Lanes`** (default) — each job queues in a priority lane (its
//!   spec's `priority`, 0–7). The scheduler ranks waiting jobs by
//!   *effective priority* `lane × aging_ms + waited_ms`, so a high
//!   lane wins now but every lane's urgency grows with wall time — a
//!   lane-0 job outranks a fresh lane-7 job after `7 × aging_ms` of
//!   waiting, so no job starves. **Packing:** a narrow job may bypass
//!   an unseatable wide job ranked above it — unless that wide job has
//!   waited ≥ 4×`aging_ms`, at which point packing stops and the pool
//!   drains until the starved job seats (bounded bypass, not livelock).
//!
//! Either way, scheduling decides *when* a job runs, never *what* it
//! computes: per-job canonical digests are bit-identical under any
//! policy and any interleaving (pinned by tests and `exp_sched`).
//!
//! ## Warm replica pool
//!
//! With `warm_pool > 0` the daemon keeps a [`crate::pool::WarmPool`]
//! of pre-built, baseline-armed prototypes. The scheduler leases one
//! at seat time (provenance `"warm"`); the job forks its per-leg
//! replicas from the prototype, skipping the SoC parse + elaborate +
//! bytecode compile that dominates cold start. A miss (pool empty or
//! disabled) falls back to a cold boot — latency, never correctness.
//!
//! ## Crash safety
//!
//! Every transition the daemon must not forget is a crash-atomic file
//! write, ordered so a `kill -9` at any instant leaves a recoverable
//! state directory:
//!
//! * a job with `job.json` but no `result.json` is re-enqueued on
//!   restart and resumes from its last checkpointed leg;
//! * a job with `result.json` is terminal and is reported as-is;
//! * a half-written anything cannot exist (tmp + rename + fsync).
//!
//! Because the leg runner re-derives all progress from the checkpoint,
//! a recovered campaign finishes with a canonical digest bit-identical
//! to an uninterrupted run — the property `exp_serve` and the CI serve
//! gate assert end to end.

use crate::events::{EventBody, EventBus, Subscription};
use crate::job::{DaemonStats, JobSpec, JobState, JobSummary, Verdict, MAX_LANE};
use crate::pool::{PoolConfig, WarmPool};
use crate::proto::{read_line, write_line, Request, Response};
use crate::runner::{self, ReplicaSource};
use crate::{digest_hex, write_atomic, ServeError};
use hardsnap::{CancelToken, StopReason};
use hardsnap_telemetry::{
    prometheus_text, Counter, FlightRecorder, Metric, MetricsSnapshot, Recorder,
};
use hardsnap_util::json::{parse, Value};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Cap on merged per-job spans kept in memory: beyond this, the oldest
/// spans are shed (counters and histograms are unaffected — only the
/// Chrome trace loses tail history).
const JOB_SPAN_CAP: usize = 65_536;

/// Which order the scheduler grants replicas in. Never affects any
/// job's canonical digest — only when it runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Strict admission order; an unseatable head blocks the queue.
    /// The reference ordering for digest-invariance checks.
    Fifo,
    /// Priority lanes with aging and bounded packing (see the module
    /// docs). The default.
    Lanes,
}

impl SchedPolicy {
    /// Stable wire/CLI name.
    pub fn as_str(&self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Lanes => "lanes",
        }
    }

    /// Parses a CLI name (`fifo` | `lanes`).
    pub fn parse(s: &str) -> Option<SchedPolicy> {
        match s {
            "fifo" => Some(SchedPolicy::Fifo),
            "lanes" => Some(SchedPolicy::Lanes),
            _ => None,
        }
    }
}

/// Daemon tuning.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// State directory: `jobs/<id>/{job.json, checkpoint/, result.json}`.
    pub state_dir: PathBuf,
    /// Total target replicas in the pool. A job consumes `workers`
    /// replicas while running.
    pub pool_replicas: usize,
    /// Bounded submission queue: jobs admitted but not yet granted
    /// replicas. Submissions past this bound get
    /// [`ServeError::Saturated`].
    pub queue_max: usize,
    /// Grace period past a job's wall deadline before the watchdog
    /// force-cancels it (the engine normally stops itself at the first
    /// quantum boundary past the deadline; the watchdog is the backstop
    /// for a wedged leg).
    pub watchdog_grace: Duration,
    /// Enable per-job engine telemetry (per-leg metric snapshots, the
    /// `metrics` verb's per-job detail, `jobs/<id>/metrics.json` and
    /// the Chrome trace). Observe-only: digests are unaffected either
    /// way.
    pub observe: bool,
    /// Bound on each `subscribe` client's event queue. A subscriber
    /// that falls further behind sheds its oldest events (counted);
    /// the runner never blocks on it.
    pub event_queue_cap: usize,
    /// Flight-recorder ring size (most recent events kept for the
    /// post-mortem `flight.json`).
    pub flight_capacity: usize,
    /// Warm replicas to keep pre-armed (0 = no warm pool; jobs always
    /// cold-boot).
    pub warm_pool: usize,
    /// Baseline snapshot the warm pool arms against; `None` synthesizes
    /// one from a fresh prototype's post-reset state.
    pub baseline: Option<PathBuf>,
    /// Scheduling policy (see [`SchedPolicy`]).
    pub sched: SchedPolicy,
    /// Lane aging quantum, ms: one lane level of priority equals this
    /// much waiting. Smaller = fairness dominates sooner.
    pub aging_ms: u64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            state_dir: PathBuf::from("hardsnap-serve-state"),
            pool_replicas: 4,
            queue_max: 8,
            watchdog_grace: Duration::from_millis(250),
            observe: true,
            event_queue_cap: 1024,
            flight_capacity: 4096,
            warm_pool: 0,
            baseline: None,
            sched: SchedPolicy::Lanes,
            aging_ms: 500,
        }
    }
}

struct Job {
    spec: JobSpec,
    state: JobState,
    verdict: Option<Verdict>,
    stop: Option<StopReason>,
    digest: Option<u64>,
    instructions: u64,
    vtime_ns: u64,
    quanta: u64,
    paths: u64,
    bugs: u64,
    /// Per-leg engine telemetry merged over the job's lifetime (empty
    /// when the daemon runs unobserved).
    telemetry: MetricsSnapshot,
    cancel: CancelToken,
    submitted_at: Instant,
    started_at: Option<Instant>,
    /// Absolute wall deadline (watchdog backstop); `None` = none.
    deadline: Option<Instant>,
    queue_wait_ms: u64,
    run_ms: u64,
    /// Priority lane (clamped spec priority).
    lane: u64,
    /// `"warm"` / `"cold"` once seated; `None` while queued.
    provenance: Option<String>,
    /// Warm-pool lease, held from seat time until the run thread
    /// finishes (its drop re-arms the replica in the background).
    lease: Option<crate::pool::Lease>,
}

/// `used/cap` in permille, saturating at 1000; 0 for unbudgeted.
fn frac_permille(used: u64, cap: u64) -> u64 {
    if cap == 0 {
        0
    } else {
        (used.saturating_mul(1000) / cap).min(1000)
    }
}

impl Job {
    /// Budget consumed: the max over every configured budget, permille.
    fn budget_permille(&self) -> u64 {
        let wall_used = match (self.spec.wall_ms, self.started_at) {
            (ms, Some(t)) if ms > 0 && self.state == JobState::Running => {
                t.elapsed().as_millis() as u64
            }
            (ms, _) if ms > 0 => self.run_ms,
            _ => 0,
        };
        frac_permille(self.instructions, self.spec.max_instructions)
            .max(frac_permille(self.vtime_ns, self.spec.max_vtime_ns))
            .max(frac_permille(self.quanta, self.spec.max_quanta))
            .max(frac_permille(wall_used, self.spec.wall_ms))
    }

    fn summary(&self, id: u64) -> JobSummary {
        JobSummary {
            id,
            name: self.spec.name.clone(),
            state: self.state.clone(),
            verdict: self.verdict.clone(),
            stop: self.stop,
            digest: self.digest.map(digest_hex),
            instructions: self.instructions,
            vtime_ns: self.vtime_ns,
            quanta: self.quanta,
            paths: self.paths,
            bugs: self.bugs,
            budget_permille: self.budget_permille(),
            // Live while queued (so `top` can show queue age), frozen
            // at seat time otherwise.
            queue_wait_ms: if self.state == JobState::Queued {
                self.submitted_at.elapsed().as_millis() as u64
            } else {
                self.queue_wait_ms
            },
            run_ms: self.run_ms,
            lane: self.lane,
            provenance: self.provenance.clone(),
        }
    }
}

struct Inner {
    jobs: BTreeMap<u64, Job>,
    /// FIFO of `Queued` job ids waiting for replicas.
    queue: VecDeque<u64>,
    /// Replicas currently granted to `Running` jobs.
    running_replicas: usize,
    next_id: u64,
    shutting_down: bool,
}

/// The campaign service. Wrap in an [`Arc`] and share between the
/// socket loop, job threads and the watchdog.
pub struct Daemon {
    cfg: DaemonConfig,
    inner: Mutex<Inner>,
    /// Signalled on every job state change (used by `wait_idle` and
    /// tests).
    changed: Condvar,
    rec: Recorder,
    /// Fan-out of lifecycle events to `subscribe` clients.
    bus: EventBus,
    /// Ring of recent events for the post-mortem `flight.json`.
    flight: FlightRecorder,
    /// Warm replica pool (`Some` when `warm_pool > 0`).
    pool: Option<Arc<WarmPool>>,
    /// Daemon birth; event timestamps are ms since this instant.
    started: Instant,
}

impl Daemon {
    /// Creates the daemon, its state directory, and an enabled
    /// telemetry recorder for admission/queue metrics.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the state directory cannot be created.
    pub fn new(cfg: DaemonConfig) -> Result<Arc<Daemon>, ServeError> {
        std::fs::create_dir_all(cfg.state_dir.join("jobs"))
            .map_err(|e| ServeError::Io(format!("{}: {e}", cfg.state_dir.display())))?;
        let flight_capacity = cfg.flight_capacity;
        let rec = Recorder::enabled(0, "serve");
        // The pool arms its replicas on background threads; Daemon::new
        // never waits for them.
        let pool = (cfg.warm_pool > 0).then(|| {
            WarmPool::new(
                PoolConfig {
                    replicas: cfg.warm_pool,
                    baseline: cfg.baseline.clone(),
                    state_dir: cfg.state_dir.clone(),
                },
                rec.clone(),
            )
        });
        Ok(Arc::new(Daemon {
            cfg,
            inner: Mutex::new(Inner {
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                running_replicas: 0,
                next_id: 1,
                shutting_down: false,
            }),
            changed: Condvar::new(),
            rec,
            bus: EventBus::new(),
            flight: FlightRecorder::new(flight_capacity),
            pool,
            started: Instant::now(),
        }))
    }

    fn job_dir(&self, id: u64) -> PathBuf {
        self.cfg.state_dir.join("jobs").join(id.to_string())
    }

    /// Milliseconds since the daemon started (event timestamp base).
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Publishes one lifecycle event to subscribers and the flight
    /// recorder. Never blocks: slow subscribers shed oldest events.
    /// Callers must NOT hold the inner lock (no need — events carry
    /// their payload).
    fn emit(&self, body: EventBody) {
        let ts = self.now_ms();
        let kind = body.kind();
        let (_, dropped) = self.bus.publish(ts, body.clone());
        self.rec.count(Counter::ServeEventsPublished);
        for _ in 0..dropped {
            self.rec.count(Counter::ServeEventsDropped);
        }
        let ev = crate::events::Event {
            seq: 0, // flight entries are sequenced by the ring itself
            ts_ms: ts,
            dropped: 0,
            body,
        };
        self.flight.push(ts, kind, ev.to_value().to_json());
    }

    /// Crash-atomic journal write, with the fsync+rename latency
    /// recorded in the `serve.journal_fsync_us` histogram.
    fn journal_write(&self, path: &Path, bytes: &[u8]) -> Result<(), ServeError> {
        let t0 = Instant::now();
        let r = write_atomic(path, bytes);
        self.rec
            .observe(Metric::ServeJournalFsyncUs, t0.elapsed().as_micros() as u64);
        r
    }

    /// Admits a job or rejects it with the typed [`ServeError::Saturated`].
    /// The job is journaled to `job.json` **before** this returns: an
    /// acknowledged submission survives any crash.
    ///
    /// # Errors
    ///
    /// [`ServeError::Saturated`] when the pool + queue cannot take the
    /// job; [`ServeError::Io`] if the journal write fails (the job is
    /// then *not* admitted).
    pub fn submit(self: &Arc<Daemon>, spec: JobSpec) -> Result<u64, ServeError> {
        let (id, name, workers, lane) = {
            let mut g = self.inner.lock().unwrap();
            if g.shutting_down {
                self.rec.count(Counter::JobsRejected);
                return Err(ServeError::Saturated {
                    reason: "daemon is shutting down".into(),
                });
            }
            if spec.workers > self.cfg.pool_replicas {
                self.rec.count(Counter::JobsRejected);
                return Err(ServeError::Saturated {
                    reason: format!(
                        "job wants {} replicas but the pool holds {}",
                        spec.workers, self.cfg.pool_replicas
                    ),
                });
            }
            // A job the scheduler can start right now never counts
            // against the queue bound — the bound limits *waiting*
            // work, not throughput.
            let starts_now =
                g.queue.is_empty() && g.running_replicas + spec.workers <= self.cfg.pool_replicas;
            if !starts_now && g.queue.len() >= self.cfg.queue_max {
                self.rec.count(Counter::JobsRejected);
                return Err(ServeError::Saturated {
                    reason: format!(
                        "queue full ({} waiting, max {})",
                        g.queue.len(),
                        self.cfg.queue_max
                    ),
                });
            }
            let id = g.next_id;
            g.next_id += 1;
            // Journal before ack — drop the lock guard state only after
            // the job is durable.
            let dir = self.job_dir(id);
            std::fs::create_dir_all(&dir)
                .map_err(|e| ServeError::Io(format!("{}: {e}", dir.display())))?;
            self.journal_write(&dir.join("job.json"), spec.to_value().to_json().as_bytes())?;
            let name = spec.name.clone();
            let workers = spec.workers as u64;
            let lane = spec.priority.min(MAX_LANE);
            g.jobs.insert(
                id,
                Job {
                    spec,
                    state: JobState::Queued,
                    verdict: None,
                    stop: None,
                    digest: None,
                    instructions: 0,
                    vtime_ns: 0,
                    quanta: 0,
                    paths: 0,
                    bugs: 0,
                    telemetry: MetricsSnapshot::empty(),
                    cancel: CancelToken::new(),
                    submitted_at: Instant::now(),
                    started_at: None,
                    deadline: None,
                    queue_wait_ms: 0,
                    run_ms: 0,
                    lane,
                    provenance: None,
                    lease: None,
                },
            );
            g.queue.push_back(id);
            self.rec.count(Counter::JobsAdmitted);
            self.rec
                .observe(Metric::ServeQueueDepth, g.queue.len() as u64);
            (id, name, workers, lane)
        };
        self.emit(EventBody::Admitted {
            id,
            name,
            workers,
            lane,
        });
        self.schedule();
        Ok(id)
    }

    /// Picks the next queued job the scheduler may seat given `free`
    /// replicas, or `None` when nothing can (or may) start. Caller
    /// holds the inner lock.
    fn pick_next(&self, g: &Inner, free: usize) -> Option<u64> {
        match self.cfg.sched {
            SchedPolicy::Fifo => {
                // Strict admission order; an unseatable head blocks.
                let &id = g.queue.front()?;
                (g.jobs[&id].spec.workers <= free).then_some(id)
            }
            SchedPolicy::Lanes => {
                let aging = self.cfg.aging_ms.max(1);
                // Effective priority: one lane level ≡ `aging` ms of
                // waiting, so every lane's urgency grows with time.
                let mut ranked: Vec<(u64, u64, u64)> = g
                    .queue
                    .iter()
                    .map(|&id| {
                        let j = &g.jobs[&id];
                        let waited = j.submitted_at.elapsed().as_millis() as u64;
                        (
                            j.lane.saturating_mul(aging).saturating_add(waited),
                            waited,
                            id,
                        )
                    })
                    .collect();
                ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.2.cmp(&b.2)));
                for (_, waited, id) in ranked {
                    if g.jobs[&id].spec.workers <= free {
                        return Some(id); // packing: first seatable in rank order
                    }
                    if waited >= 4 * aging {
                        // Starvation guard: a long-waiting unseatable
                        // job stops packing — the pool must drain
                        // until it fits (admission guarantees workers
                        // ≤ pool_replicas, so it eventually does).
                        return None;
                    }
                }
                None
            }
        }
    }

    /// Grants replicas to queued jobs (policy order, see
    /// [`SchedPolicy`]) and spawns their run threads. Called after
    /// every admission and every completion. Seating a job also leases
    /// a warm-pool replica when one is armed — the pool mutex is a
    /// leaf lock, safe to take under the inner lock.
    fn schedule(self: &Arc<Daemon>) {
        loop {
            let (id, source) = {
                let mut g = self.inner.lock().unwrap();
                let free = self.cfg.pool_replicas - g.running_replicas;
                let Some(id) = self.pick_next(&g, free) else {
                    break;
                };
                let workers = g.jobs[&id].spec.workers;
                if let Some(pos) = g.queue.iter().position(|&q| q == id) {
                    g.queue.remove(pos);
                }
                g.running_replicas += workers;
                let lease = self.pool.as_ref().and_then(|p| p.try_lease());
                let source = if lease.is_some() { "warm" } else { "cold" };
                let job = g.jobs.get_mut(&id).unwrap();
                job.state = JobState::Running;
                job.queue_wait_ms = job.submitted_at.elapsed().as_millis() as u64;
                job.started_at = Some(Instant::now());
                job.provenance = Some(source.to_string());
                job.lease = lease;
                if job.spec.wall_ms > 0 {
                    job.deadline = Some(Instant::now() + Duration::from_millis(job.spec.wall_ms));
                }
                self.rec
                    .observe(Metric::ServeQueueWaitMs, job.queue_wait_ms);
                self.rec
                    .observe(Metric::queue_wait_lane(job.lane), job.queue_wait_ms);
                (id, source)
            };
            self.changed.notify_all();
            self.emit(EventBody::Started {
                id,
                source: source.to_string(),
            });
            let me = Arc::clone(self);
            std::thread::spawn(move || me.run_job_thread(id));
        }
    }

    fn run_job_thread(self: Arc<Daemon>, id: u64) {
        let (spec, cancel, lease) = {
            let mut g = self.inner.lock().unwrap();
            let j = g.jobs.get_mut(&id).unwrap();
            (j.spec.clone(), j.cancel.clone(), j.lease.take())
        };
        let dir = self.job_dir(id);
        let started = Instant::now();
        let me = &self;
        let observe = self.cfg.observe;
        // A leased warm prototype donates its compiled design via
        // fork_clean; forks are power-on replicas, so warm and cold
        // runs digest identically.
        let source = match &lease {
            Some(l) => ReplicaSource::Warm(l.prototype()),
            None => ReplicaSource::Cold,
        };
        let outcome = runner::run_job_with_source(
            &spec,
            &dir.join("checkpoint"),
            &cancel,
            observe,
            &source,
            &mut |r| {
                // Each leg is a fresh engine, so counters in
                // `r.telemetry` are per-leg deltas while
                // instructions/vtime/quanta are cumulative (resumed
                // from the checkpoint). Derive events under the lock,
                // publish after releasing it.
                let mut events: Vec<EventBody> = Vec::new();
                {
                    let mut g = me.inner.lock().unwrap();
                    if let Some(j) = g.jobs.get_mut(&id) {
                        j.instructions = r.instructions;
                        j.vtime_ns = r.hw_virtual_time_ns;
                        j.quanta = r.metrics.quanta;
                        j.paths = r.metrics.paths_completed;
                        j.bugs = r.bugs.len() as u64;
                        events.push(EventBody::Heartbeat {
                            id,
                            instructions: j.instructions,
                            vtime_ns: j.vtime_ns,
                            quanta: j.quanta,
                            paths: j.paths,
                            bugs: j.bugs,
                            budget_permille: j.budget_permille(),
                        });
                        if !matches!(r.stop, StopReason::Complete | StopReason::Paths) {
                            events.push(EventBody::Checkpoint {
                                id,
                                instructions: j.instructions,
                            });
                        }
                        if r.faults.recovered > 0 {
                            events.push(EventBody::FaultRecovered {
                                id,
                                recovered: r.faults.recovered,
                            });
                        }
                        if r.faults.quarantined > 0 {
                            events.push(EventBody::Quarantine {
                                id,
                                quarantined: r.faults.quarantined,
                            });
                        }
                        if let Some(t) = &r.telemetry {
                            let spills = t.counter("store_spills");
                            let page_ins = t.counter("store_page_ins");
                            if spills > 0 || page_ins > 0 {
                                events.push(EventBody::Spill {
                                    id,
                                    spills,
                                    page_ins,
                                });
                            }
                            j.telemetry.merge(t.clone());
                            if j.telemetry.spans.len() > JOB_SPAN_CAP {
                                let excess = j.telemetry.spans.len() - JOB_SPAN_CAP;
                                j.telemetry.spans.drain(..excess);
                            }
                        }
                    }
                }
                for body in events {
                    me.emit(body);
                }
                me.changed.notify_all();
            },
        );
        // Return the warm replica now — its drop re-arms it in the
        // background, so it is leasable again before this job's
        // terminal bookkeeping finishes.
        drop(source);
        drop(lease);
        let (summary, telemetry) = {
            let mut g = self.inner.lock().unwrap();
            g.running_replicas -= spec.workers;
            let job = g.jobs.get_mut(&id).unwrap();
            job.state = JobState::Done;
            job.run_ms = started.elapsed().as_millis() as u64;
            match outcome {
                Ok(o) => {
                    job.verdict = Some(o.verdict.clone());
                    job.stop = Some(o.stop);
                    job.digest = Some(o.digest);
                    job.instructions = o.instructions;
                    job.paths = o.paths;
                    job.bugs = o.bugs;
                    if matches!(o.verdict, Verdict::Cancelled) {
                        self.rec.count(Counter::JobsCancelled);
                    }
                }
                Err(e) => job.verdict = Some(Verdict::Error(e.to_string())),
            }
            self.rec.count(Counter::JobsCompleted);
            let telemetry = if job.telemetry == MetricsSnapshot::empty() {
                None
            } else {
                Some(job.telemetry.clone())
            };
            (job.summary(id), telemetry)
        };
        // Per-job observability artifacts land before the terminal
        // commit: if the daemon dies between them, the re-run rewrites
        // both.
        if let Some(t) = telemetry {
            let _ = write_atomic(&dir.join("metrics.json"), t.metrics_json().as_bytes());
            let _ = write_atomic(&dir.join("trace.json"), t.chrome_trace_json().as_bytes());
        }
        // Terminal commit point: result.json lands crash-atomically;
        // until it exists, a restart re-runs the job from its checkpoint.
        let _ = self.journal_write(
            &dir.join("result.json"),
            summary.to_value().to_json().as_bytes(),
        );
        self.emit(EventBody::Terminal {
            id,
            verdict: summary
                .verdict
                .as_ref()
                .map(|v| v.as_str().to_string())
                .unwrap_or_default(),
            stop: summary.stop.map(|s| s.as_str().to_string()),
            digest: summary.digest.clone(),
            exit_code: summary
                .verdict
                .as_ref()
                .map(|v| u64::from(v.exit_code()))
                .unwrap_or(1),
        });
        self.changed.notify_all();
        self.schedule();
    }

    /// Cooperatively cancels a job. Queued jobs terminalize
    /// immediately; running jobs stop at their next quantum boundary
    /// with a valid checkpoint.
    ///
    /// # Errors
    ///
    /// [`ServeError::Job`] for an unknown id.
    pub fn cancel(self: &Arc<Daemon>, id: u64) -> Result<(), ServeError> {
        let summary = {
            let mut g = self.inner.lock().unwrap();
            let Some(job) = g.jobs.get_mut(&id) else {
                return Err(ServeError::Job(format!("unknown job {id}")));
            };
            match job.state {
                JobState::Done => return Ok(()), // idempotent
                JobState::Running => {
                    job.cancel.cancel();
                    self.rec.count(Counter::JobsCancelled);
                    return Ok(());
                }
                JobState::Queued => {
                    job.state = JobState::Done;
                    job.verdict = Some(Verdict::Cancelled);
                    job.queue_wait_ms = job.submitted_at.elapsed().as_millis() as u64;
                    let summary = job.summary(id);
                    g.queue.retain(|&q| q != id);
                    self.rec.count(Counter::JobsCancelled);
                    summary
                }
            }
        };
        let _ = self.journal_write(
            &self.job_dir(id).join("result.json"),
            summary.to_value().to_json().as_bytes(),
        );
        self.emit(EventBody::Terminal {
            id,
            verdict: Verdict::Cancelled.as_str().to_string(),
            stop: None,
            digest: None,
            exit_code: u64::from(Verdict::Cancelled.exit_code()),
        });
        self.changed.notify_all();
        Ok(())
    }

    /// Summaries for one job or the whole table (admission order).
    pub fn status(&self, id: Option<u64>) -> Vec<JobSummary> {
        let g = self.inner.lock().unwrap();
        match id {
            Some(id) => g.jobs.get(&id).map(|j| j.summary(id)).into_iter().collect(),
            None => g.jobs.iter().map(|(&id, j)| j.summary(id)).collect(),
        }
    }

    /// Daemon-wide occupancy (the `status` response's `daemon` object).
    pub fn daemon_stats(&self) -> DaemonStats {
        let (queue_depth, pool_busy) = {
            let g = self.inner.lock().unwrap();
            (g.queue.len() as u64, g.running_replicas as u64)
        };
        let warm = self.pool.as_ref().map(|p| p.stats()).unwrap_or_default();
        DaemonStats {
            queue_depth,
            pool_replicas: self.cfg.pool_replicas as u64,
            pool_busy,
            subscribers: self.bus.subscriber_count() as u64,
            events_published: self.bus.published(),
            events_dropped: self.bus.dropped(),
            warm_target: warm.target,
            warm_ready: warm.ready,
            warm_leased: warm.leased,
            warm_arming: warm.arming,
        }
    }

    /// The daemon-wide aggregated metrics snapshot: the daemon's own
    /// recorder (admission, queue, journal fsync, watchdog, event-bus
    /// counters) merged with every job's engine telemetry
    /// (counters/histograms only — spans stay per-job, they'd swamp the
    /// wire) plus live occupancy gauges. Counts one `metrics` scrape.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.rec.count(Counter::ServeMetricsScrapes);
        let mut snap = self.rec.snapshot().unwrap_or_else(MetricsSnapshot::empty);
        {
            let g = self.inner.lock().unwrap();
            for job in g.jobs.values() {
                snap.merge(job.telemetry.counts_only());
            }
            snap.set_gauge("serve.queue_depth", g.queue.len() as u64);
            snap.set_gauge("serve.pool_replicas", self.cfg.pool_replicas as u64);
            snap.set_gauge("serve.pool_busy", g.running_replicas as u64);
            snap.set_gauge("serve.jobs_tracked", g.jobs.len() as u64);
        }
        snap.set_gauge("serve.subscribers", self.bus.subscriber_count() as u64);
        let warm = self.pool.as_ref().map(|p| p.stats()).unwrap_or_default();
        snap.set_gauge("serve.warm_target", warm.target);
        snap.set_gauge("serve.warm_ready", warm.ready);
        snap.set_gauge("serve.warm_leased", warm.leased);
        snap.set_gauge("serve.warm_arming", warm.arming);
        snap
    }

    /// Registers a live event subscriber (bounded queue; see
    /// [`DaemonConfig::event_queue_cap`]).
    pub fn subscribe(&self) -> Subscription {
        self.bus.subscribe(self.cfg.event_queue_cap)
    }

    /// Snapshot of the flight recorder as a JSON value (the
    /// `dump-flight` verb). Counts one dump.
    pub fn dump_flight_value(&self) -> Value {
        self.rec.count(Counter::ServeFlightDumps);
        self.flight.to_value()
    }

    /// Writes `flight.json` into the state directory (SIGTERM / panic
    /// path). Crash-atomic like every other daemon file.
    pub fn dump_flight_to_file(&self) -> Result<PathBuf, ServeError> {
        self.rec.count(Counter::ServeFlightDumps);
        let path = self.cfg.state_dir.join("flight.json");
        write_atomic(&path, self.flight.dump_json().as_bytes())?;
        Ok(path)
    }

    /// Asks the accept/stream loops to wind down (the `shutdown` verb's
    /// effect, callable from a signal watcher).
    pub fn request_shutdown(&self) {
        self.inner.lock().unwrap().shutting_down = true;
        self.changed.notify_all();
    }

    /// Scans the state directory and rebuilds the job table after a
    /// restart (or crash): terminal jobs (`result.json` present) are
    /// reported as-is; everything else is re-enqueued and resumes from
    /// its last checkpoint. Returns the number of re-enqueued jobs.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the jobs directory is unreadable;
    /// [`ServeError::Protocol`] on a corrupt journal file.
    pub fn recover(self: &Arc<Daemon>) -> Result<usize, ServeError> {
        let jobs_dir = self.cfg.state_dir.join("jobs");
        let mut found: Vec<(u64, JobSpec, Option<JobSummary>)> = Vec::new();
        let entries = std::fs::read_dir(&jobs_dir)
            .map_err(|e| ServeError::Io(format!("{}: {e}", jobs_dir.display())))?;
        for entry in entries.flatten() {
            let Ok(id) = entry.file_name().to_string_lossy().parse::<u64>() else {
                continue;
            };
            let read = |name: &str| -> Result<Option<String>, ServeError> {
                match std::fs::read_to_string(entry.path().join(name)) {
                    Ok(s) => Ok(Some(s)),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
                    Err(e) => Err(ServeError::Io(format!("job {id} {name}: {e}"))),
                }
            };
            let Some(job_json) = read("job.json")? else {
                continue; // directory created but journal never committed
            };
            let spec = JobSpec::from_value(
                &parse(&job_json)
                    .map_err(|e| ServeError::Protocol(format!("job {id} journal: {e}")))?,
            )?;
            let done = match read("result.json")? {
                Some(s) => {
                    Some(JobSummary::from_value(&parse(&s).map_err(|e| {
                        ServeError::Protocol(format!("job {id} result: {e}"))
                    })?)?)
                }
                None => None,
            };
            found.push((id, spec, done));
        }
        found.sort_by_key(|(id, _, _)| *id);
        let mut resumed = 0;
        {
            let mut g = self.inner.lock().unwrap();
            for (id, spec, done) in found {
                g.next_id = g.next_id.max(id + 1);
                let terminal = done.is_some();
                let lane = spec.priority.min(MAX_LANE);
                let job = Job {
                    spec,
                    state: if terminal {
                        JobState::Done
                    } else {
                        JobState::Queued
                    },
                    verdict: done.as_ref().and_then(|s| s.verdict.clone()),
                    stop: done.as_ref().and_then(|s| s.stop),
                    digest: None, // summaries carry it as hex; re-derived below
                    instructions: done.as_ref().map_or(0, |s| s.instructions),
                    vtime_ns: done.as_ref().map_or(0, |s| s.vtime_ns),
                    quanta: done.as_ref().map_or(0, |s| s.quanta),
                    paths: done.as_ref().map_or(0, |s| s.paths),
                    bugs: done.as_ref().map_or(0, |s| s.bugs),
                    telemetry: MetricsSnapshot::empty(),
                    cancel: CancelToken::new(),
                    submitted_at: Instant::now(),
                    started_at: None,
                    deadline: None,
                    queue_wait_ms: done.as_ref().map_or(0, |s| s.queue_wait_ms),
                    run_ms: done.as_ref().map_or(0, |s| s.run_ms),
                    lane,
                    provenance: done.as_ref().and_then(|s| s.provenance.clone()),
                    lease: None,
                };
                let job = Job {
                    digest: done
                        .as_ref()
                        .and_then(|s| s.digest.as_deref())
                        .and_then(parse_digest_hex),
                    ..job
                };
                g.jobs.insert(id, job);
                if !terminal {
                    g.queue.push_back(id);
                    resumed += 1;
                    self.rec.count(Counter::JobsRecovered);
                }
            }
        }
        self.schedule();
        Ok(resumed)
    }

    /// One watchdog sweep: force-cancels running jobs past their wall
    /// deadline plus the grace period. Returns how many were cancelled.
    /// The engine normally stops itself at the first quantum boundary
    /// past the deadline; this is the backstop for a wedged leg.
    pub fn watchdog_sweep(&self) -> usize {
        let hit_ids: Vec<u64> = {
            let g = self.inner.lock().unwrap();
            let now = Instant::now();
            g.jobs
                .iter()
                .filter(|(_, job)| {
                    job.state == JobState::Running
                        && job.deadline.is_some_and(|dl| {
                            now > dl + self.cfg.watchdog_grace && !job.cancel.is_cancelled()
                        })
                })
                .map(|(&id, job)| {
                    job.cancel.cancel();
                    id
                })
                .collect()
        };
        for &id in &hit_ids {
            self.rec.count(Counter::ServeWatchdogCancels);
            self.emit(EventBody::WatchdogCancel { id });
        }
        hit_ids.len()
    }

    /// Spawns the watchdog thread (sweeps every `period` until the
    /// daemon shuts down).
    pub fn spawn_watchdog(self: &Arc<Daemon>, period: Duration) {
        let me = Arc::clone(self);
        std::thread::spawn(move || loop {
            if me.inner.lock().unwrap().shutting_down {
                break;
            }
            me.watchdog_sweep();
            std::thread::sleep(period);
        });
    }

    /// Blocks until no job is queued or running (test / drain helper),
    /// or the timeout elapses. Returns `true` when idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.inner.lock().unwrap();
        loop {
            let busy = !g.queue.is_empty() || g.jobs.values().any(|j| j.state == JobState::Running);
            if !busy {
                return true;
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self
                .changed
                .wait_timeout(g, left.min(Duration::from_millis(50)))
                .unwrap();
            g = guard;
        }
    }

    /// Blocks until at least `n` warm replicas are armed and ready.
    ///
    /// Returns `false` on timeout or when the daemon has no warm pool
    /// (`warm_pool: 0`, or the pool disabled itself on a baseline
    /// shape mismatch) — callers that need a warm start must treat
    /// that as "cold boots only".
    pub fn wait_warm_ready(&self, n: usize, timeout: Duration) -> bool {
        match &self.pool {
            Some(p) => p.wait_ready(n, timeout),
            None => false,
        }
    }

    /// True once a shutdown request has been accepted.
    pub fn shutting_down(&self) -> bool {
        self.inner.lock().unwrap().shutting_down
    }

    /// Handles one request (shared by the socket and stdio fronts).
    pub fn handle(self: &Arc<Daemon>, req: Request) -> Response {
        match req {
            Request::Submit(spec) => match self.submit(spec) {
                Ok(id) => Response::Submitted { id },
                Err(e) => Response::from_error(&e),
            },
            Request::Status(id) => Response::Status {
                jobs: self.status(id),
                daemon: Some(self.daemon_stats()),
            },
            Request::Metrics => Response::Metrics(self.metrics_snapshot().to_value()),
            Request::DumpFlight => Response::Flight(self.dump_flight_value()),
            // `subscribe` flips the connection into streaming mode;
            // only serve_stream can do that. Reaching handle() means
            // the front-end cannot stream (shouldn't happen in-tree).
            Request::Subscribe => Response::Error {
                kind: "protocol".into(),
                message: "subscribe requires a streaming connection".into(),
            },
            Request::Cancel(id) => match self.cancel(id) {
                Ok(()) => Response::Cancelled { id },
                Err(ServeError::Job(m)) => Response::Error {
                    kind: "unknown-job".into(),
                    message: m,
                },
                Err(e) => Response::from_error(&e),
            },
            Request::Ping => Response::Pong,
            Request::Shutdown => {
                self.inner.lock().unwrap().shutting_down = true;
                self.changed.notify_all();
                Response::ShuttingDown
            }
        }
    }

    /// Serves one NDJSON stream until EOF or a shutdown request.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on a broken stream (malformed requests get an
    /// error *response* and the stream continues).
    pub fn serve_stream(
        self: &Arc<Daemon>,
        r: &mut dyn BufRead,
        w: &mut dyn Write,
    ) -> Result<(), ServeError> {
        while let Some(v) = read_line(r)? {
            let req = Request::from_value(&v);
            if let Ok(Request::Subscribe) = req {
                return self.pump_events(w);
            }
            let resp = match req {
                Ok(req) => self.handle(req),
                Err(e) => Response::from_error(&e),
            };
            let done = matches!(resp, Response::ShuttingDown);
            write_line(w, &resp.to_value())?;
            if done {
                break;
            }
        }
        Ok(())
    }

    /// Streams events to one subscriber until it disconnects or the
    /// daemon shuts down. Idle periods are filled with blank keep-alive
    /// lines (which `read_line` skips) so a dead client surfaces as a
    /// write error instead of lingering forever.
    fn pump_events(self: &Arc<Daemon>, w: &mut dyn Write) -> Result<(), ServeError> {
        let sub = self.subscribe();
        write_line(w, &Response::Subscribed.to_value())?;
        loop {
            match sub.recv_timeout(Duration::from_millis(100)) {
                Some(ev) => write_line(w, &Response::Event(ev).to_value())?,
                None => {
                    if self.shutting_down() {
                        return Ok(());
                    }
                    w.write_all(b"\n")
                        .and_then(|()| w.flush())
                        .map_err(|e| ServeError::Io(format!("keepalive: {e}")))?;
                }
            }
        }
    }

    /// Binds `socket` (removing any stale file) and serves connections
    /// until a shutdown request arrives. Each connection gets its own
    /// thread; the accept loop polls so shutdown is prompt.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the socket cannot be bound.
    pub fn serve_unix(self: &Arc<Daemon>, socket: &Path) -> Result<(), ServeError> {
        let _ = std::fs::remove_file(socket);
        let listener = std::os::unix::net::UnixListener::bind(socket)
            .map_err(|e| ServeError::Io(format!("bind {}: {e}", socket.display())))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io(format!("nonblocking: {e}")))?;
        loop {
            if self.shutting_down() {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let me = Arc::clone(self);
                    std::thread::spawn(move || {
                        let _ = stream.set_nonblocking(false);
                        let mut reader =
                            BufReader::new(stream.try_clone().expect("clone unix stream"));
                        let mut writer = stream;
                        let _ = me.serve_stream(&mut reader, &mut writer);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(ServeError::Io(format!("accept: {e}"))),
            }
        }
        let _ = std::fs::remove_file(socket);
        Ok(())
    }

    /// Binds a plain-TCP Prometheus exposition endpoint on `addr`
    /// (e.g. `127.0.0.1:0`) and serves it from a background thread
    /// until shutdown. Every request — the path is ignored — gets the
    /// current aggregated snapshot as text exposition format 0.0.4.
    /// Returns the bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the address cannot be bound.
    pub fn spawn_metrics_http(
        self: &Arc<Daemon>,
        addr: &str,
    ) -> Result<std::net::SocketAddr, ServeError> {
        let listener = std::net::TcpListener::bind(addr)
            .map_err(|e| ServeError::Io(format!("bind {addr}: {e}")))?;
        let bound = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io(format!("nonblocking: {e}")))?;
        let me = Arc::clone(self);
        std::thread::spawn(move || loop {
            if me.shutting_down() {
                break;
            }
            match listener.accept() {
                Ok((mut stream, _)) => {
                    // One-shot exchange: read whatever request bytes
                    // arrive, answer, close. No keep-alive, no routing.
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                    let mut buf = [0u8; 1024];
                    let _ = std::io::Read::read(&mut stream, &mut buf);
                    let body = prometheus_text(&me.metrics_snapshot());
                    let resp = format!(
                        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                        body.len()
                    );
                    let _ = stream.write_all(resp.as_bytes());
                    let _ = stream.flush();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => break,
            }
        });
        Ok(bound)
    }
}

fn parse_digest_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s.trim_start_matches("0x"), 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hardsnap-daemon-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn daemon(name: &str, pool: usize, queue: usize) -> Arc<Daemon> {
        Daemon::new(DaemonConfig {
            state_dir: tmp(name),
            pool_replicas: pool,
            queue_max: queue,
            ..DaemonConfig::default()
        })
        .unwrap()
    }

    fn demo(name: &str) -> JobSpec {
        JobSpec {
            name: name.into(),
            firmware: "demo:3".into(),
            leg_instructions: 64,
            ..JobSpec::default()
        }
    }

    #[test]
    fn submit_runs_to_completion_with_result_file() {
        let d = daemon("complete", 2, 4);
        let id = d.submit(demo("a")).unwrap();
        assert!(d.wait_idle(Duration::from_secs(60)));
        let s = &d.status(Some(id))[0];
        assert_eq!(s.state, JobState::Done);
        assert_eq!(s.verdict, Some(Verdict::Completed));
        assert!(s.digest.is_some());
        assert!(d.job_dir(id).join("result.json").exists());
        let _ = std::fs::remove_dir_all(&d.cfg.state_dir);
    }

    #[test]
    fn saturation_is_a_typed_rejection() {
        let d = daemon("saturated", 1, 0);
        // Pool of 1, queue of 0: a job demanding 2 replicas can never run.
        let mut wide = demo("wide");
        wide.workers = 2;
        match d.submit(wide) {
            Err(ServeError::Saturated { reason }) => assert!(reason.contains("pool")),
            other => panic!("expected Saturated, got {other:?}"),
        }
        // First single-replica job occupies the pool; with queue_max=0
        // the next submission must be rejected, not queued.
        let mut slow = demo("slow");
        slow.leg_instructions = 16;
        let _id = d.submit(slow).unwrap();
        let mut saturated = false;
        for _ in 0..3 {
            match d.submit(demo("extra")) {
                Err(ServeError::Saturated { .. }) => {
                    saturated = true;
                    break;
                }
                Ok(_) => {
                    // The first job finished already; drain and retry.
                    d.wait_idle(Duration::from_secs(60));
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(d.wait_idle(Duration::from_secs(60)));
        if !saturated {
            // Machine too fast to catch the window — the typed path is
            // still covered by the workers>pool case above.
            eprintln!("note: queue-full window not observed");
        }
        let _ = std::fs::remove_dir_all(&d.cfg.state_dir);
    }

    #[test]
    fn concurrent_jobs_share_the_pool_and_all_finish() {
        let d = daemon("concurrent", 2, 8);
        let ids: Vec<u64> = (0..4)
            .map(|i| d.submit(demo(&format!("j{i}"))).unwrap())
            .collect();
        assert!(d.wait_idle(Duration::from_secs(120)));
        let digests: Vec<String> = ids
            .iter()
            .map(|&id| d.status(Some(id))[0].digest.clone().unwrap())
            .collect();
        // Identical specs ⇒ identical canonical digests, regardless of
        // scheduling interleavings.
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
        let _ = std::fs::remove_dir_all(&d.cfg.state_dir);
    }

    #[test]
    fn restart_recovers_terminal_and_pending_jobs() {
        let state = tmp("recover");
        let cfg = DaemonConfig {
            state_dir: state.clone(),
            pool_replicas: 1,
            queue_max: 8,
            ..DaemonConfig::default()
        };
        let d1 = Daemon::new(cfg.clone()).unwrap();
        let done_id = d1.submit(demo("done")).unwrap();
        assert!(d1.wait_idle(Duration::from_secs(60)));
        let done_digest = d1.status(Some(done_id))[0].digest.clone().unwrap();
        // Journal a second job by hand — as if the daemon died after the
        // ack but before (or during) the run.
        let pend_dir = state.join("jobs").join("2");
        std::fs::create_dir_all(&pend_dir).unwrap();
        write_atomic(
            &pend_dir.join("job.json"),
            demo("pending").to_value().to_json().as_bytes(),
        )
        .unwrap();
        drop(d1);

        let d2 = Daemon::new(cfg).unwrap();
        let resumed = d2.recover().unwrap();
        assert_eq!(resumed, 1, "only the unfinished job re-enqueues");
        assert!(d2.wait_idle(Duration::from_secs(60)));
        let s1 = &d2.status(Some(done_id))[0];
        assert_eq!(s1.digest.as_ref(), Some(&done_digest));
        let s2 = &d2.status(Some(2))[0];
        assert_eq!(s2.verdict, Some(Verdict::Completed));
        assert_eq!(
            s2.digest.as_ref(),
            Some(&done_digest),
            "recovered run must digest identically to an uninterrupted one"
        );
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn lanes_and_packing_keep_digests_fifo_identical() {
        // The scheduling-invariance property: run the same
        // mixed-priority, mixed-width burst under strict FIFO and
        // under the lane scheduler (with packing and aging in play);
        // every job's canonical digest must be bit-identical. The
        // policy decides when a job runs, never what it computes.
        let specs: Vec<JobSpec> = (0..6)
            .map(|i| {
                let mut s = demo(&format!("m{i}"));
                s.priority = (i * 3) % 8;
                s.workers = 1 + (i as usize % 2);
                s
            })
            .collect();
        let run = |sched: SchedPolicy, name: &str| -> Vec<(String, String)> {
            let d = Daemon::new(DaemonConfig {
                state_dir: tmp(name),
                pool_replicas: 2,
                queue_max: 16,
                sched,
                aging_ms: 20,
                ..DaemonConfig::default()
            })
            .unwrap();
            let ids: Vec<u64> = specs.iter().map(|s| d.submit(s.clone()).unwrap()).collect();
            assert!(d.wait_idle(Duration::from_secs(120)));
            let out = ids
                .iter()
                .map(|&id| {
                    let s = &d.status(Some(id))[0];
                    assert_eq!(s.verdict, Some(Verdict::Completed));
                    (s.name.clone(), s.digest.clone().unwrap())
                })
                .collect();
            let _ = std::fs::remove_dir_all(&d.cfg.state_dir);
            out
        };
        let fifo = run(SchedPolicy::Fifo, "inv-fifo");
        let lanes = run(SchedPolicy::Lanes, "inv-lanes");
        assert_eq!(fifo, lanes, "scheduling order must never change digests");
    }

    #[test]
    fn starved_wide_job_eventually_seats_under_pressure() {
        // A lane-0 job needing the whole pool, against a stream of
        // lane-7 narrow jobs that pure packing would seat around it
        // forever. The 4×aging starvation guard must stop packing and
        // drain the pool until the wide job fits.
        let d = Daemon::new(DaemonConfig {
            state_dir: tmp("aging"),
            pool_replicas: 2,
            queue_max: 4,
            sched: SchedPolicy::Lanes,
            aging_ms: 10, // tiny, so the guard trips within the test
            ..DaemonConfig::default()
        })
        .unwrap();
        let mut wide = demo("wide");
        wide.workers = 2;
        wide.priority = 0;
        let wide_id = d.submit(wide).unwrap();
        let deadline = Instant::now() + Duration::from_secs(120);
        let mut spawned = 0u64;
        loop {
            let s = &d.status(Some(wide_id))[0];
            if s.state != JobState::Queued {
                break;
            }
            assert!(Instant::now() < deadline, "wide job starved");
            let mut narrow = demo(&format!("narrow{spawned}"));
            narrow.priority = 7;
            let _ = d.submit(narrow); // Saturated is fine — queue is bounded
            spawned += 1;
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(d.wait_idle(Duration::from_secs(120)));
        let s = &d.status(Some(wide_id))[0];
        assert_eq!(s.verdict, Some(Verdict::Completed));
        assert_eq!(s.lane, 0);
        let _ = std::fs::remove_dir_all(&d.cfg.state_dir);
    }

    #[test]
    fn warm_pool_provenance_and_digest_parity_with_cold() {
        // A warm-pool daemon must report pool-hit provenance and
        // produce digests bit-identical to a cold-boot daemon's.
        let d = Daemon::new(DaemonConfig {
            state_dir: tmp("warm"),
            pool_replicas: 2,
            queue_max: 8,
            warm_pool: 2,
            ..DaemonConfig::default()
        })
        .unwrap();
        let p = d.pool.as_ref().unwrap();
        assert!(p.wait_ready(1, Duration::from_secs(120)), "{:?}", p.stats());
        let id = d.submit(demo("w")).unwrap();
        assert!(d.wait_idle(Duration::from_secs(120)));
        let s = &d.status(Some(id))[0];
        assert_eq!(s.provenance.as_deref(), Some("warm"));
        let warm_digest = s.digest.clone().unwrap();
        let stats = d.daemon_stats();
        assert_eq!(stats.warm_target, 2);

        let d2 = daemon("warm-cold-ref", 2, 8);
        let id2 = d2.submit(demo("w")).unwrap();
        assert!(d2.wait_idle(Duration::from_secs(120)));
        let s2 = &d2.status(Some(id2))[0];
        assert_eq!(s2.provenance.as_deref(), Some("cold"));
        assert_eq!(
            s2.digest.clone().unwrap(),
            warm_digest,
            "warm and cold replicas must digest identically"
        );
        let _ = std::fs::remove_dir_all(&d.cfg.state_dir);
        let _ = std::fs::remove_dir_all(&d2.cfg.state_dir);
    }

    #[test]
    fn stream_protocol_round_trips_submit_status_shutdown() {
        let d = daemon("stream", 2, 4);
        let input = format!(
            "{}\n{}\n{}\n",
            Request::Submit(demo("s")).to_value().to_json(),
            Request::Status(None).to_value().to_json(),
            Request::Shutdown.to_value().to_json(),
        );
        let mut out = Vec::new();
        let mut reader = BufReader::new(input.as_bytes());
        d.serve_stream(&mut reader, &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 3);
        let submitted = Response::from_value(&parse(lines[0]).unwrap()).unwrap();
        assert!(matches!(submitted, Response::Submitted { id: 1 }));
        assert!(d.shutting_down());
        assert!(d.wait_idle(Duration::from_secs(60)));
        let _ = std::fs::remove_dir_all(&d.cfg.state_dir);
    }
}
