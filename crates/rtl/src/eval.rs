//! Operator evaluation semantics shared by the simulator, the FPGA
//! target and the Verilog frontend's constant folder.
//!
//! Keeping these in one place guarantees that constant folding at parse
//! time is exactly semantics-preserving with respect to simulation.

use crate::expr::{BinaryOp, UnaryOp};
use crate::value::Value;

/// Evaluates a binary operator with simplified-Verilog width rules:
/// arithmetic/bitwise results are `max(wa, wb)` wide with operands
/// zero-extended, shifts keep the left operand's width, and
/// comparisons/logical operators yield one bit.
pub fn eval_binary(op: BinaryOp, a: Value, b: Value) -> Value {
    match op {
        BinaryOp::Add
        | BinaryOp::Sub
        | BinaryOp::Mul
        | BinaryOp::And
        | BinaryOp::Or
        | BinaryOp::Xor => {
            let w = a.width().max(b.width());
            let (a, b) = (a.resize(w), b.resize(w));
            match op {
                BinaryOp::Add => a.wrapping_add(b),
                BinaryOp::Sub => a.wrapping_sub(b),
                BinaryOp::Mul => a.wrapping_mul(b),
                BinaryOp::And => a.and(b),
                BinaryOp::Or => a.or(b),
                BinaryOp::Xor => a.xor(b),
                _ => unreachable!(),
            }
        }
        BinaryOp::Shl => a.shl(b.bits()),
        BinaryOp::Shr => a.shr(b.bits()),
        BinaryOp::Eq => {
            let w = a.width().max(b.width());
            Value::bit(a.resize(w) == b.resize(w))
        }
        BinaryOp::Ne => {
            let w = a.width().max(b.width());
            Value::bit(a.resize(w) != b.resize(w))
        }
        BinaryOp::Lt => Value::bit(a.bits() < b.bits()),
        BinaryOp::Le => Value::bit(a.bits() <= b.bits()),
        BinaryOp::Gt => Value::bit(a.bits() > b.bits()),
        BinaryOp::Ge => Value::bit(a.bits() >= b.bits()),
        BinaryOp::LogicAnd => Value::bit(a.is_true() && b.is_true()),
        BinaryOp::LogicOr => Value::bit(a.is_true() || b.is_true()),
    }
}

/// Evaluates a unary operator (see [`UnaryOp`] for width rules).
pub fn eval_unary(op: UnaryOp, a: Value) -> Value {
    match op {
        UnaryOp::Not => a.not(),
        UnaryOp::Neg => a.neg(),
        UnaryOp::LogicNot => Value::bit(!a.is_true()),
        UnaryOp::RedAnd => a.reduce_and(),
        UnaryOp::RedOr => a.reduce_or(),
        UnaryOp::RedXor => a.reduce_xor(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_width_addition_extends_to_max() {
        let a = Value::new(0xff, 8);
        let b = Value::new(1, 32);
        let r = eval_binary(BinaryOp::Add, a, b);
        assert_eq!(r, Value::new(0x100, 32));
    }

    #[test]
    fn comparison_is_unsigned_over_bits() {
        let a = Value::new(0x80, 8); // would be negative if signed
        let b = Value::new(0x01, 8);
        assert_eq!(eval_binary(BinaryOp::Lt, a, b), Value::bit(false));
        assert_eq!(eval_binary(BinaryOp::Gt, a, b), Value::bit(true));
    }

    #[test]
    fn eq_extends_operands() {
        let a = Value::new(5, 4);
        let b = Value::new(5, 32);
        assert_eq!(eval_binary(BinaryOp::Eq, a, b), Value::bit(true));
    }

    #[test]
    fn shifts_use_rhs_as_amount() {
        let a = Value::new(1, 8);
        assert_eq!(
            eval_binary(BinaryOp::Shl, a, Value::new(3, 32)),
            Value::new(8, 8)
        );
        assert_eq!(
            eval_binary(BinaryOp::Shr, Value::new(8, 8), Value::new(3, 4)),
            Value::new(1, 8)
        );
    }

    #[test]
    fn logic_ops_collapse_to_bits() {
        let a = Value::new(0x10, 8);
        let z = Value::zero(8);
        assert_eq!(eval_binary(BinaryOp::LogicAnd, a, z), Value::bit(false));
        assert_eq!(eval_binary(BinaryOp::LogicOr, a, z), Value::bit(true));
        assert_eq!(eval_unary(UnaryOp::LogicNot, z), Value::bit(true));
    }
}
