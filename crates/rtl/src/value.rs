//! Two-state bit-vector values.
//!
//! Every net in the HardSnap RTL IR carries a [`Value`]: an unsigned
//! bit-vector of width 1..=64. Four-state logic (`x`/`z`) is out of scope
//! for this reproduction (see `DESIGN.md` §4); all corpus peripherals use
//! explicit synchronous reset so that simulation never depends on
//! uninitialized state.

use std::fmt;

/// Maximum supported bit width of a single net.
pub const MAX_WIDTH: u32 = 64;

/// An unsigned two-state bit-vector of width 1..=64.
///
/// The representation invariant is that all bits above `width` are zero;
/// every constructor and operation re-normalizes, so `Value`s compare
/// equal iff they have identical width and bits.
///
/// # Examples
///
/// ```
/// use hardsnap_rtl::Value;
/// let a = Value::new(0xff, 8);
/// let b = Value::new(1, 8);
/// assert_eq!(a.wrapping_add(b).bits(), 0); // 8-bit overflow wraps
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value {
    bits: u64,
    width: u32,
}

/// Returns the mask with the low `width` bits set.
///
/// # Panics
///
/// Panics if `width` is zero or greater than [`MAX_WIDTH`].
#[inline]
pub fn mask(width: u32) -> u64 {
    assert!(width >= 1 && width <= MAX_WIDTH, "invalid width {width}");
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

impl Value {
    /// Creates a value, truncating `bits` to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than [`MAX_WIDTH`].
    #[inline]
    pub fn new(bits: u64, width: u32) -> Self {
        Value {
            bits: bits & mask(width),
            width,
        }
    }

    /// The all-zero value of the given width.
    #[inline]
    pub fn zero(width: u32) -> Self {
        Value::new(0, width)
    }

    /// The all-ones value of the given width.
    #[inline]
    pub fn ones(width: u32) -> Self {
        Value::new(u64::MAX, width)
    }

    /// A single-bit value from a boolean.
    #[inline]
    pub fn bit(b: bool) -> Self {
        Value::new(b as u64, 1)
    }

    /// The raw bits (always normalized to the width).
    #[inline]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// The width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// True if any bit is set.
    #[inline]
    pub fn is_true(&self) -> bool {
        self.bits != 0
    }

    /// Returns this value zero-extended or truncated to `width`.
    #[inline]
    pub fn resize(&self, width: u32) -> Self {
        Value::new(self.bits, width)
    }

    /// Extracts bits `hi..=lo` (inclusive, `hi >= lo`) as a new value.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= self.width()`.
    pub fn slice(&self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo, "slice hi {hi} < lo {lo}");
        assert!(
            hi < self.width,
            "slice hi {hi} out of range for width {}",
            self.width
        );
        Value::new(self.bits >> lo, hi - lo + 1)
    }

    /// Extracts the single bit at `index`; out-of-range reads return 0,
    /// matching Verilog's out-of-bounds bit-select (which yields `x`,
    /// collapsed to 0 in two-state simulation).
    pub fn get_bit(&self, index: u64) -> Self {
        if index >= self.width as u64 {
            Value::bit(false)
        } else {
            Value::bit((self.bits >> index) & 1 == 1)
        }
    }

    /// Replaces bits `hi..=lo` with `v` (truncated/extended to fit).
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= self.width()`.
    pub fn set_slice(&self, hi: u32, lo: u32, v: Value) -> Self {
        assert!(
            hi >= lo && hi < self.width,
            "bad slice {hi}:{lo} for width {}",
            self.width
        );
        let w = hi - lo + 1;
        let m = mask(w) << lo;
        Value {
            bits: (self.bits & !m) | ((v.bits & mask(w)) << lo),
            width: self.width,
        }
    }

    /// Wrapping addition at this value's width.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn wrapping_add(&self, rhs: Value) -> Self {
        self.binop(rhs, u64::wrapping_add)
    }

    /// Wrapping subtraction at this value's width.
    pub fn wrapping_sub(&self, rhs: Value) -> Self {
        self.binop(rhs, u64::wrapping_sub)
    }

    /// Wrapping multiplication at this value's width.
    pub fn wrapping_mul(&self, rhs: Value) -> Self {
        self.binop(rhs, u64::wrapping_mul)
    }

    /// Bitwise AND.
    pub fn and(&self, rhs: Value) -> Self {
        self.binop(rhs, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(&self, rhs: Value) -> Self {
        self.binop(rhs, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(&self, rhs: Value) -> Self {
        self.binop(rhs, |a, b| a ^ b)
    }

    /// Bitwise NOT at this value's width.
    pub fn not(&self) -> Self {
        Value::new(!self.bits, self.width)
    }

    /// Two's-complement negation at this value's width.
    pub fn neg(&self) -> Self {
        Value::new(self.bits.wrapping_neg(), self.width)
    }

    /// Logical shift left by `sh` bit positions (width preserved).
    /// Shifts of `width` or more yield zero, as in Verilog.
    pub fn shl(&self, sh: u64) -> Self {
        if sh >= self.width as u64 {
            Value::zero(self.width)
        } else {
            Value::new(self.bits << sh, self.width)
        }
    }

    /// Logical shift right by `sh` bit positions.
    pub fn shr(&self, sh: u64) -> Self {
        if sh >= self.width as u64 {
            Value::zero(self.width)
        } else {
            Value::new(self.bits >> sh, self.width)
        }
    }

    /// Concatenates `self` (more significant) with `low` (less
    /// significant), Verilog `{self, low}` order.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds [`MAX_WIDTH`].
    pub fn concat(&self, low: Value) -> Self {
        let w = self.width + low.width;
        assert!(w <= MAX_WIDTH, "concat width {w} exceeds {MAX_WIDTH}");
        Value {
            bits: (self.bits << low.width) | low.bits,
            width: w,
        }
    }

    /// AND-reduction (`&v`): 1 iff all bits set.
    pub fn reduce_and(&self) -> Self {
        Value::bit(self.bits == mask(self.width))
    }

    /// OR-reduction (`|v`): 1 iff any bit set.
    pub fn reduce_or(&self) -> Self {
        Value::bit(self.bits != 0)
    }

    /// XOR-reduction (`^v`): parity.
    pub fn reduce_xor(&self) -> Self {
        Value::bit(self.bits.count_ones() % 2 == 1)
    }

    fn binop(&self, rhs: Value, f: impl Fn(u64, u64) -> u64) -> Self {
        assert_eq!(
            self.width, rhs.width,
            "width mismatch {} vs {}",
            self.width, rhs.width
        );
        Value::new(f(self.bits, rhs.bits), self.width)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self.bits)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self.bits)
    }
}

impl fmt::LowerHex for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits, f)
    }
}

impl fmt::Binary for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits, f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::bit(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_truncates_to_width() {
        assert_eq!(Value::new(0x1ff, 8).bits(), 0xff);
        assert_eq!(Value::new(u64::MAX, 64).bits(), u64::MAX);
        assert_eq!(Value::new(5, 1).bits(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid width")]
    fn zero_width_panics() {
        Value::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "invalid width")]
    fn overwide_panics() {
        Value::new(0, 65);
    }

    #[test]
    fn mask_widths() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(8), 0xff);
        assert_eq!(mask(63), u64::MAX >> 1);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    fn arithmetic_wraps_at_width() {
        let a = Value::new(0xff, 8);
        assert_eq!(a.wrapping_add(Value::new(2, 8)), Value::new(1, 8));
        assert_eq!(
            Value::zero(8).wrapping_sub(Value::new(1, 8)),
            Value::new(0xff, 8)
        );
        assert_eq!(
            Value::new(16, 8).wrapping_mul(Value::new(16, 8)),
            Value::zero(8)
        );
    }

    #[test]
    fn slice_and_set_slice() {
        let v = Value::new(0xabcd, 16);
        assert_eq!(v.slice(15, 8), Value::new(0xab, 8));
        assert_eq!(v.slice(7, 0), Value::new(0xcd, 8));
        assert_eq!(v.slice(3, 3), Value::bit(true));
        let w = v.set_slice(15, 8, Value::new(0x12, 8));
        assert_eq!(w, Value::new(0x12cd, 16));
    }

    #[test]
    fn bit_select_out_of_range_is_zero() {
        let v = Value::ones(8);
        assert_eq!(v.get_bit(7), Value::bit(true));
        assert_eq!(v.get_bit(8), Value::bit(false));
        assert_eq!(v.get_bit(1000), Value::bit(false));
    }

    #[test]
    fn shifts_saturate_to_zero() {
        let v = Value::new(0b1010, 4);
        assert_eq!(v.shl(1), Value::new(0b0100, 4));
        assert_eq!(v.shr(1), Value::new(0b0101, 4));
        assert_eq!(v.shl(4), Value::zero(4));
        assert_eq!(v.shr(64), Value::zero(4));
    }

    #[test]
    fn concat_order_matches_verilog() {
        let hi = Value::new(0xa, 4);
        let lo = Value::new(0x5, 4);
        assert_eq!(hi.concat(lo), Value::new(0xa5, 8));
    }

    #[test]
    fn reductions() {
        assert_eq!(Value::ones(8).reduce_and(), Value::bit(true));
        assert_eq!(Value::new(0xfe, 8).reduce_and(), Value::bit(false));
        assert_eq!(Value::zero(8).reduce_or(), Value::bit(false));
        assert_eq!(Value::new(0x10, 8).reduce_or(), Value::bit(true));
        assert_eq!(Value::new(0b0111, 4).reduce_xor(), Value::bit(true));
        assert_eq!(Value::new(0b0110, 4).reduce_xor(), Value::bit(false));
    }

    #[test]
    fn not_and_neg_mask() {
        assert_eq!(Value::zero(4).not(), Value::new(0xf, 4));
        assert_eq!(Value::new(1, 4).neg(), Value::new(0xf, 4));
        assert_eq!(Value::zero(64).not(), Value::ones(64));
    }

    #[test]
    fn resize_zero_extends_and_truncates() {
        let v = Value::new(0xff, 8);
        assert_eq!(v.resize(16), Value::new(0xff, 16));
        assert_eq!(v.resize(4), Value::new(0xf, 4));
    }
}
