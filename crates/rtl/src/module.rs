//! Modules, nets, memories, processes and designs.
//!
//! A [`Module`] is the unit of hardware description: a bag of nets
//! (wires/registers, some of them ports), memories, continuous assigns,
//! processes (`always` blocks) and child instances. A [`Design`] is a set
//! of modules; [`crate::elaborate()`] flattens a design into a single
//! instance-free module suitable for simulation and instrumentation.

use crate::expr::Expr;
use crate::value::Value;
use crate::RtlError;
use std::collections::HashMap;
use std::fmt;

/// Identifies a net within its [`Module`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Identifies a memory within its [`Module`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemId(pub u32);

impl fmt::Debug for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for MemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Port direction of a net, if it is a port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Driven from outside the module.
    Input,
    /// Driven by the module, visible outside.
    Output,
}

/// How a net may be driven.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// Verilog `wire`: driven by continuous assigns or instance outputs.
    Wire,
    /// Verilog `reg`: driven by procedural assignment inside processes.
    Reg,
}

/// A named scalar or vector net.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Net {
    /// Hierarchical name (dots separate instance path segments after
    /// elaboration).
    pub name: String,
    /// Width in bits (1..=64).
    pub width: u32,
    /// Wire vs reg.
    pub kind: NetKind,
    /// Port direction if this net is a port of the module.
    pub port: Option<PortDir>,
}

/// A synchronous memory array (`reg [W-1:0] mem [0:D-1]`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Memory {
    /// Hierarchical name.
    pub name: String,
    /// Word width in bits (1..=64).
    pub width: u32,
    /// Number of words.
    pub depth: u32,
}

impl Memory {
    /// Total state bits held by this memory.
    pub fn state_bits(&self) -> u64 {
        self.width as u64 * self.depth as u64
    }
}

/// An assignable location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LValue {
    /// The whole net.
    Net(NetId),
    /// A constant part-select of a net.
    Slice {
        /// Target net.
        base: NetId,
        /// Most-significant bit (inclusive).
        hi: u32,
        /// Least-significant bit (inclusive).
        lo: u32,
    },
    /// A dynamically indexed single bit of a net.
    Index {
        /// Target net.
        base: NetId,
        /// Bit index expression.
        index: Expr,
    },
    /// A memory word (`mem[addr] <= ...`).
    Mem {
        /// Target memory.
        mem: MemId,
        /// Address expression.
        addr: Expr,
    },
}

impl LValue {
    /// The net written by this lvalue, or `None` for memory writes.
    pub fn target_net(&self) -> Option<NetId> {
        match self {
            LValue::Net(n) | LValue::Slice { base: n, .. } | LValue::Index { base: n, .. } => {
                Some(*n)
            }
            LValue::Mem { .. } => None,
        }
    }

    /// The memory written by this lvalue, if any.
    pub fn target_mem(&self) -> Option<MemId> {
        match self {
            LValue::Mem { mem, .. } => Some(*mem),
            _ => None,
        }
    }

    /// Width of the assigned location.
    ///
    /// # Errors
    ///
    /// Propagates width errors from embedded expressions and rejects
    /// out-of-range slices.
    pub fn width(&self, module: &Module) -> Result<u32, RtlError> {
        match self {
            LValue::Net(n) => Ok(module.net(*n).width),
            LValue::Slice { base, hi, lo } => {
                let nw = module.net(*base).width;
                if hi < lo || *hi >= nw {
                    return Err(RtlError::WidthError(format!(
                        "lvalue slice [{hi}:{lo}] out of range for net '{}' of width {nw}",
                        module.net(*base).name
                    )));
                }
                Ok(hi - lo + 1)
            }
            LValue::Index { index, .. } => {
                index.width(module)?;
                Ok(1)
            }
            LValue::Mem { mem, addr } => {
                addr.width(module)?;
                Ok(module.memory(*mem).width)
            }
        }
    }

    /// Rewrites net/memory ids; see [`Expr::remap`].
    pub fn remap(&mut self, net_map: &impl Fn(NetId) -> NetId, mem_map: &impl Fn(MemId) -> MemId) {
        match self {
            LValue::Net(n) => *n = net_map(*n),
            LValue::Slice { base, .. } => *base = net_map(*base),
            LValue::Index { base, index } => {
                *base = net_map(*base);
                index.remap(net_map, mem_map);
            }
            LValue::Mem { mem, addr } => {
                *mem = mem_map(*mem);
                addr.remap(net_map, mem_map);
            }
        }
    }
}

/// A procedural statement inside a process body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `lv <= rhs` (non-blocking) or `lv = rhs` (blocking).
    Assign {
        /// Target location.
        lv: LValue,
        /// Source expression (zero-extended/truncated to the target width).
        rhs: Expr,
        /// True for blocking (`=`) assignment.
        blocking: bool,
    },
    /// `if (cond) ... else ...`.
    If {
        /// Condition (true iff nonzero).
        cond: Expr,
        /// Taken branch.
        then_s: Vec<Stmt>,
        /// Else branch (may be empty).
        else_s: Vec<Stmt>,
    },
    /// `case (sel) v0, v1: ... default: ... endcase`.
    Case {
        /// Selector expression.
        sel: Expr,
        /// Arms: each matches when `sel` equals any listed value.
        arms: Vec<CaseArm>,
        /// Default arm (may be empty).
        default: Vec<Stmt>,
    },
}

/// One arm of a [`Stmt::Case`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseArm {
    /// Match labels; the arm fires when the selector equals any of them.
    pub labels: Vec<Value>,
    /// Arm body.
    pub body: Vec<Stmt>,
}

impl Stmt {
    /// Visits every statement in this subtree (pre-order).
    pub fn for_each(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::Assign { .. } => {}
            Stmt::If { then_s, else_s, .. } => {
                for s in then_s.iter().chain(else_s) {
                    s.for_each(f);
                }
            }
            Stmt::Case { arms, default, .. } => {
                for arm in arms {
                    for s in &arm.body {
                        s.for_each(f);
                    }
                }
                for s in default {
                    s.for_each(f);
                }
            }
        }
    }

    /// Visits every statement mutably (pre-order).
    pub fn for_each_mut(&mut self, f: &mut impl FnMut(&mut Stmt)) {
        f(self);
        match self {
            Stmt::Assign { .. } => {}
            Stmt::If { then_s, else_s, .. } => {
                for s in then_s.iter_mut().chain(else_s.iter_mut()) {
                    s.for_each_mut(f);
                }
            }
            Stmt::Case { arms, default, .. } => {
                for arm in arms.iter_mut() {
                    for s in &mut arm.body {
                        s.for_each_mut(f);
                    }
                }
                for s in default {
                    s.for_each_mut(f);
                }
            }
        }
    }

    /// Rewrites net/memory ids throughout the statement tree.
    pub fn remap(&mut self, net_map: &impl Fn(NetId) -> NetId, mem_map: &impl Fn(MemId) -> MemId) {
        match self {
            Stmt::Assign { lv, rhs, .. } => {
                lv.remap(net_map, mem_map);
                rhs.remap(net_map, mem_map);
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => {
                cond.remap(net_map, mem_map);
                for s in then_s.iter_mut().chain(else_s.iter_mut()) {
                    s.remap(net_map, mem_map);
                }
            }
            Stmt::Case { sel, arms, default } => {
                sel.remap(net_map, mem_map);
                for arm in arms.iter_mut() {
                    for s in &mut arm.body {
                        s.remap(net_map, mem_map);
                    }
                }
                for s in default {
                    s.remap(net_map, mem_map);
                }
            }
        }
    }
}

/// Clock edge kind for clocked processes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// `posedge`.
    Pos,
    /// `negedge`.
    Neg,
}

/// Sensitivity of a process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProcessKind {
    /// `always @(posedge clk)` / `always @(negedge clk)`.
    Clocked {
        /// Clock net.
        clock: NetId,
        /// Triggering edge.
        edge: EdgeKind,
    },
    /// `always @(*)` — combinational.
    Comb,
}

/// An `always` block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Process {
    /// Sensitivity.
    pub kind: ProcessKind,
    /// Statement body.
    pub body: Vec<Stmt>,
}

/// A continuous assignment (`assign lv = rhs`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContAssign {
    /// Target (must be a wire).
    pub lv: LValue,
    /// Source expression.
    pub rhs: Expr,
}

/// A child-module instantiation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// Instance name.
    pub name: String,
    /// Name of the instantiated module.
    pub module: String,
    /// Named port connections `.port(expr)`. Output-port connections must
    /// be plain nets or constant slices (checked during elaboration).
    pub conns: Vec<(String, Expr)>,
    /// Parameter overrides `#(.NAME(value))`, applied before elaboration.
    pub params: Vec<(String, u64)>,
}

/// A hardware module.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// All nets, indexed by [`NetId`].
    pub nets: Vec<Net>,
    /// All memories, indexed by [`MemId`].
    pub memories: Vec<Memory>,
    /// Continuous assignments.
    pub assigns: Vec<ContAssign>,
    /// Processes (`always` blocks).
    pub processes: Vec<Process>,
    /// Child instances (empty after elaboration).
    pub instances: Vec<Instance>,
    /// Declared parameters with default values (constant-folded).
    pub params: Vec<(String, u64)>,
    name_index: HashMap<String, NetId>,
    mem_index: HashMap<String, MemId>,
}

impl Module {
    /// Creates an empty module with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a net and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::Duplicate`] if a net or memory of the same name
    /// exists, and [`RtlError::WidthError`] for invalid widths.
    pub fn add_net(
        &mut self,
        name: impl Into<String>,
        width: u32,
        kind: NetKind,
        port: Option<PortDir>,
    ) -> Result<NetId, RtlError> {
        let name = name.into();
        if width == 0 || width > crate::value::MAX_WIDTH {
            return Err(RtlError::WidthError(format!(
                "net '{name}' has invalid width {width}"
            )));
        }
        if self.name_index.contains_key(&name) || self.mem_index.contains_key(&name) {
            return Err(RtlError::Duplicate(format!("{}.{name}", self.name)));
        }
        let id = NetId(self.nets.len() as u32);
        self.name_index.insert(name.clone(), id);
        self.nets.push(Net {
            name,
            width,
            kind,
            port,
        });
        Ok(id)
    }

    /// Adds a memory and returns its id.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Module::add_net`], plus zero depth.
    pub fn add_memory(
        &mut self,
        name: impl Into<String>,
        width: u32,
        depth: u32,
    ) -> Result<MemId, RtlError> {
        let name = name.into();
        if width == 0 || width > crate::value::MAX_WIDTH {
            return Err(RtlError::WidthError(format!(
                "memory '{name}' has invalid width {width}"
            )));
        }
        if depth == 0 {
            return Err(RtlError::WidthError(format!(
                "memory '{name}' has zero depth"
            )));
        }
        if self.name_index.contains_key(&name) || self.mem_index.contains_key(&name) {
            return Err(RtlError::Duplicate(format!("{}.{name}", self.name)));
        }
        let id = MemId(self.memories.len() as u32);
        self.mem_index.insert(name.clone(), id);
        self.memories.push(Memory { name, width, depth });
        Ok(id)
    }

    /// Returns the net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is from another module.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Returns the memory with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is from another module.
    pub fn memory(&self, id: MemId) -> &Memory {
        &self.memories[id.0 as usize]
    }

    /// Looks up a net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.name_index.get(name).copied()
    }

    /// Looks up a memory by name.
    pub fn find_mem(&self, name: &str) -> Option<MemId> {
        self.mem_index.get(name).copied()
    }

    /// Iterates over `(NetId, &Net)` pairs.
    pub fn iter_nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n))
    }

    /// Iterates over `(MemId, &Memory)` pairs.
    pub fn iter_mems(&self) -> impl Iterator<Item = (MemId, &Memory)> {
        self.memories
            .iter()
            .enumerate()
            .map(|(i, m)| (MemId(i as u32), m))
    }

    /// All ports in declaration order.
    pub fn ports(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.iter_nets().filter(|(_, n)| n.port.is_some())
    }

    /// The set of nets assigned (as registers) in clocked processes,
    /// in a deterministic order. These are the hardware flip-flops —
    /// exactly the state the scan chain must cover.
    pub fn clocked_regs(&self) -> Vec<NetId> {
        let mut seen = vec![false; self.nets.len()];
        let mut out = Vec::new();
        for p in &self.processes {
            if !matches!(p.kind, ProcessKind::Clocked { .. }) {
                continue;
            }
            for s in &p.body {
                s.for_each(&mut |s| {
                    if let Stmt::Assign { lv, .. } = s {
                        if let Some(n) = lv.target_net() {
                            if !seen[n.0 as usize] {
                                seen[n.0 as usize] = true;
                                out.push(n);
                            }
                        }
                    }
                });
            }
        }
        out
    }

    /// The set of memories written in clocked processes.
    pub fn clocked_mems(&self) -> Vec<MemId> {
        let mut seen = vec![false; self.memories.len()];
        let mut out = Vec::new();
        for p in &self.processes {
            if !matches!(p.kind, ProcessKind::Clocked { .. }) {
                continue;
            }
            for s in &p.body {
                s.for_each(&mut |s| {
                    if let Stmt::Assign { lv, .. } = s {
                        if let Some(m) = lv.target_mem() {
                            if !seen[m.0 as usize] {
                                seen[m.0 as usize] = true;
                                out.push(m);
                            }
                        }
                    }
                });
            }
        }
        out
    }

    /// Total architectural state bits (flip-flops plus memory bits).
    /// This is the length of the scan chain the instrumentation inserts.
    pub fn state_bits(&self) -> u64 {
        let ff: u64 = self
            .clocked_regs()
            .iter()
            .map(|&n| self.net(n).width as u64)
            .sum();
        let mem: u64 = self
            .clocked_mems()
            .iter()
            .map(|&m| self.memory(m).state_bits())
            .sum();
        ff + mem
    }
}

/// A set of modules forming a design hierarchy.
#[derive(Clone, Debug, Default)]
pub struct Design {
    modules: Vec<Module>,
    index: HashMap<String, usize>,
}

impl Design {
    /// Creates an empty design.
    pub fn new() -> Self {
        Design::default()
    }

    /// Adds a module.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::Duplicate`] if a module of the same name exists.
    pub fn add_module(&mut self, module: Module) -> Result<(), RtlError> {
        if self.index.contains_key(&module.name) {
            return Err(RtlError::Duplicate(module.name.clone()));
        }
        self.index.insert(module.name.clone(), self.modules.len());
        self.modules.push(module);
        Ok(())
    }

    /// Looks up a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.index.get(name).map(|&i| &self.modules[i])
    }

    /// Iterates over all modules.
    pub fn iter(&self) -> impl Iterator<Item = &Module> {
        self.modules.iter()
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True if the design has no modules.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Merges all modules from `other` into this design.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::Duplicate`] on module-name collision.
    pub fn merge(&mut self, other: Design) -> Result<(), RtlError> {
        for m in other.modules {
            self.add_module(m)?;
        }
        Ok(())
    }
}

impl FromIterator<Module> for Design {
    fn from_iter<T: IntoIterator<Item = Module>>(iter: T) -> Self {
        let mut d = Design::new();
        for m in iter {
            d.add_module(m)
                .expect("duplicate module name in FromIterator");
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn add_net_rejects_duplicates_and_bad_widths() {
        let mut m = Module::new("m");
        m.add_net("a", 8, NetKind::Wire, None).unwrap();
        assert!(matches!(
            m.add_net("a", 8, NetKind::Wire, None),
            Err(RtlError::Duplicate(_))
        ));
        assert!(m.add_net("z", 0, NetKind::Wire, None).is_err());
        assert!(m.add_net("w", 65, NetKind::Wire, None).is_err());
    }

    #[test]
    fn memory_shares_namespace_with_nets() {
        let mut m = Module::new("m");
        m.add_net("x", 8, NetKind::Reg, None).unwrap();
        assert!(m.add_memory("x", 8, 16).is_err());
        m.add_memory("ram", 32, 64).unwrap();
        assert!(m.add_net("ram", 1, NetKind::Wire, None).is_err());
        assert_eq!(m.memory(m.find_mem("ram").unwrap()).state_bits(), 2048);
    }

    #[test]
    fn clocked_regs_found_through_nested_statements() {
        let mut m = Module::new("m");
        let clk = m
            .add_net("clk", 1, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let q = m.add_net("q", 8, NetKind::Reg, None).unwrap();
        let r = m.add_net("r", 4, NetKind::Reg, None).unwrap();
        m.processes.push(Process {
            kind: ProcessKind::Clocked {
                clock: clk,
                edge: EdgeKind::Pos,
            },
            body: vec![Stmt::If {
                cond: Expr::constant(1, 1),
                then_s: vec![Stmt::Assign {
                    lv: LValue::Net(q),
                    rhs: Expr::constant(0, 8),
                    blocking: false,
                }],
                else_s: vec![Stmt::Assign {
                    lv: LValue::Slice {
                        base: r,
                        hi: 3,
                        lo: 0,
                    },
                    rhs: Expr::constant(5, 4),
                    blocking: false,
                }],
            }],
        });
        let regs = m.clocked_regs();
        assert_eq!(regs, vec![q, r]);
        assert_eq!(m.state_bits(), 12);
    }

    #[test]
    fn state_bits_include_memories() {
        let mut m = Module::new("m");
        let clk = m
            .add_net("clk", 1, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let ram = m.add_memory("ram", 8, 4).unwrap();
        m.processes.push(Process {
            kind: ProcessKind::Clocked {
                clock: clk,
                edge: EdgeKind::Pos,
            },
            body: vec![Stmt::Assign {
                lv: LValue::Mem {
                    mem: ram,
                    addr: Expr::constant(0, 2),
                },
                rhs: Expr::constant(0xaa, 8),
                blocking: false,
            }],
        });
        assert_eq!(m.state_bits(), 32);
        assert_eq!(m.clocked_mems(), vec![ram]);
    }

    #[test]
    fn design_rejects_duplicate_modules() {
        let mut d = Design::new();
        d.add_module(Module::new("top")).unwrap();
        assert!(d.add_module(Module::new("top")).is_err());
        assert!(d.module("top").is_some());
        assert!(d.module("nope").is_none());
        assert_eq!(d.len(), 1);
    }
}
