//! # hardsnap-rtl
//!
//! Register-transfer-level intermediate representation for the HardSnap
//! reproduction (DSN 2020, Corteggiani & Francillon).
//!
//! This crate is the foundation of the whole stack: the Verilog frontend
//! (`hardsnap-verilog`) produces this IR, the cycle-accurate simulator
//! (`hardsnap-sim`) interprets it, and the scan-chain instrumentation
//! pass (`hardsnap-scan`) rewrites it — the same role Verilog ASTs play
//! in the paper's toolchain (Fig. 3).
//!
//! The IR models the synthesizable Verilog-2005 subset the peripheral
//! corpus is written in: 2-state vectors up to 64 bits, `wire`/`reg`
//! nets, memories, continuous assigns, clocked and combinational
//! `always` blocks, and module instantiation (flattened by
//! [`elaborate()`]).
//!
//! ## Example
//!
//! ```
//! use hardsnap_rtl::{Design, Module, NetKind, PortDir, Expr, Value};
//! use hardsnap_rtl::module::{Process, ProcessKind, EdgeKind, Stmt, LValue};
//!
//! # fn main() -> Result<(), hardsnap_rtl::RtlError> {
//! // A 4-bit counter, built directly in IR.
//! let mut m = Module::new("counter");
//! let clk = m.add_net("clk", 1, NetKind::Wire, Some(PortDir::Input))?;
//! let q = m.add_net("q", 4, NetKind::Reg, Some(PortDir::Output))?;
//! m.processes.push(Process {
//!     kind: ProcessKind::Clocked { clock: clk, edge: EdgeKind::Pos },
//!     body: vec![Stmt::Assign {
//!         lv: LValue::Net(q),
//!         rhs: Expr::Binary {
//!             op: hardsnap_rtl::BinaryOp::Add,
//!             lhs: Box::new(Expr::Net(q)),
//!             rhs: Box::new(Expr::Const(Value::new(1, 4))),
//!         },
//!         blocking: false,
//!     }],
//! });
//! assert_eq!(m.state_bits(), 4);
//! hardsnap_rtl::check_module(&m)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod compile;
pub mod elaborate;
pub mod eval;
pub mod expr;
pub mod module;
pub mod stats;
pub mod value;

pub use check::{check_module, Lint};
pub use compile::{comb_schedule, compile, Block, CombUnit, CompileError, CompiledProgram, Op};
pub use elaborate::elaborate;
pub use eval::{eval_binary, eval_unary};
pub use expr::{BinaryOp, Expr, UnaryOp};
pub use module::{
    CaseArm, ContAssign, Design, EdgeKind, Instance, LValue, MemId, Memory, Module, Net, NetId,
    NetKind, PortDir, Process, ProcessKind, Stmt,
};
pub use stats::ModuleStats;
pub use value::{mask, Value, MAX_WIDTH};

use std::error::Error;
use std::fmt;

/// Errors produced while constructing, checking or elaborating RTL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RtlError {
    /// A name was declared twice (net, memory, module or instance).
    Duplicate(String),
    /// A width rule was violated (zero/over-wide nets, bad slices, ...).
    WidthError(String),
    /// A referenced entity does not exist.
    Unknown(String),
    /// Elaboration failed (recursion, bad connections, ...).
    Elab(String),
    /// A structural check failed (multiple drivers, wire/reg misuse, ...).
    Check(String),
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::Duplicate(n) => write!(f, "duplicate declaration of '{n}'"),
            RtlError::WidthError(m) => write!(f, "width error: {m}"),
            RtlError::Unknown(n) => write!(f, "unknown reference: {n}"),
            RtlError::Elab(m) => write!(f, "elaboration error: {m}"),
            RtlError::Check(m) => write!(f, "check error: {m}"),
        }
    }
}

impl Error for RtlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_lowercase_and_informative() {
        let e = RtlError::Duplicate("top.q".into());
        assert_eq!(e.to_string(), "duplicate declaration of 'top.q'");
        let e = RtlError::Check("boom".into());
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RtlError>();
    }
}
