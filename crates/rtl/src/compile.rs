//! Compilation of a flat [`Module`] into a levelized bytecode program.
//!
//! The tree-walking evaluator in `hardsnap-sim` re-dispatches on the
//! expression AST for every combinational node on every cycle. This
//! module lowers an elaborated, checked module into the form Verilator
//! compiles to: a flat array of stack-machine [`Op`]s over pre-widthed
//! `u64` slots (one slot per net, one word array per memory), with
//! `if`/`case` lowered to jumps and every width/mask decision made at
//! compile time. Combinational units are emitted in the levelized
//! topological order that [`comb_schedule`] produces (the same order the
//! interpreter uses), clocked processes into a separate edge-triggered
//! segment whose `Nba*` ops preserve two-phase non-blocking semantics
//! bit-exactly.
//!
//! The program also carries the dependency maps an *activity-driven*
//! evaluator needs: for every net (and memory), which combinational
//! blocks read it, and which drive it. An engine can then re-execute
//! only the fan-out cone of nets that actually changed — see
//! `hardsnap-sim`'s compiled backend.
//!
//! Bit-exactness relies on two invariants of the interpreter it
//! replaces:
//!
//! * [`Value`]s are always normalized (bits above the width are zero),
//!   so zero-extension is the identity on the raw `u64` and operand
//!   `resize`s cost nothing at run time; truncation is a compile-time
//!   constant mask.
//! * Every expression's result width is statically determined by
//!   [`Expr::width`] rules, so the masks baked into each op equal the
//!   widths the interpreter computes dynamically.

use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::module::{LValue, MemId, Module, NetId, ProcessKind, Stmt};
use crate::value::mask;

/// One combinational evaluation unit: a continuous assign or an
/// `always @(*)` process. Indices refer to `module.assigns` /
/// `module.processes`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CombUnit {
    /// `module.assigns[i]`.
    Assign(usize),
    /// `module.processes[i]` (must be [`ProcessKind::Comb`]).
    Process(usize),
}

/// Errors from [`comb_schedule`] / [`compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The combinational fabric has a cycle; the payload names the nets
    /// driven by the unschedulable units.
    CombLoop(Vec<String>),
    /// A construct the bytecode compiler cannot lower (should not occur
    /// for modules that pass [`crate::check_module`]).
    Unsupported(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::CombLoop(nets) => {
                write!(f, "combinational loop through nets: {}", nets.join(", "))
            }
            CompileError::Unsupported(what) => write!(f, "cannot compile: {what}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// One stack-machine instruction. All operands are pre-masked `u64`s
/// ("normalized": bits above the static width are zero); every op that
/// can produce out-of-width bits carries the compile-time mask needed
/// to re-normalize.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Push a constant (already normalized).
    Const(u64),
    /// Push `nets[slot]`.
    Load(u32),
    /// Push `(nets[slot] >> lo) & mask` (static slice).
    LoadSlice {
        /// Net slot of the sliced base.
        slot: u32,
        /// Low bit of the slice.
        lo: u32,
        /// Mask of the slice width.
        mask: u64,
    },
    /// Pop a bit index; push that bit of `nets[slot]` (0 if the index
    /// is out of range — matches `Value::get_bit`).
    LoadBit {
        /// Net slot of the indexed base.
        slot: u32,
        /// Declared width of the base net.
        width: u32,
    },
    /// Pop an address; push `mems[mem][addr]` (0 if out of range).
    LoadMem {
        /// Memory index.
        mem: u32,
    },
    /// Pop one operand, push the unary result. `mask` is the operand
    /// width's mask (used by `Not`, `Neg`, `RedAnd`).
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Mask of the operand width.
        mask: u64,
    },
    /// Pop rhs then lhs, push the binary result. `mask` is the result
    /// width's mask; `lw` is the lhs width (shift saturation bound).
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Mask of the result width.
        mask: u64,
        /// Width of the left operand.
        lw: u32,
    },
    /// Pop `low` then `high`; push `(high << shift) | low` where
    /// `shift` is the width of `low`.
    Concat {
        /// Width of the low (most recently pushed) part.
        shift: u32,
    },
    /// Pop a value of width `width`; push it replicated `count` times
    /// (`{count{v}}`).
    Repeat {
        /// Replication count (>= 2; count 1 is elided).
        count: u32,
        /// Width of the replicated value.
        width: u32,
    },
    /// Unconditional jump to an absolute op index.
    Jump(u32),
    /// Pop a value; jump if it is zero (false).
    JumpIfZero(u32),
    /// Pop a value into scratch slot `tmps[i]` (case selectors).
    SetTmp(u32),
    /// Jump to `target` when `tmps[tmp] == label` (case dispatch; the
    /// comparison is over raw bits, exactly like the interpreter's
    /// `select_case_arm`).
    JumpTmpEq {
        /// Scratch slot holding the selector.
        tmp: u32,
        /// Label bits to compare against.
        label: u64,
        /// Jump target on match.
        target: u32,
    },
    /// Pop a value; `nets[slot] = v & mask` (blocking/continuous full
    /// write).
    Store {
        /// Target net slot.
        slot: u32,
        /// Mask of the net width.
        mask: u64,
    },
    /// Pop a value; read-modify-write the static slice
    /// `[lo +: popcount(mask)]` of `nets[slot]`.
    StoreSlice {
        /// Target net slot.
        slot: u32,
        /// Low bit of the slice.
        lo: u32,
        /// Mask of the slice width (unshifted).
        mask: u64,
    },
    /// Pop an index, then a value; set that bit of `nets[slot]` to
    /// `v & 1` (no-op when the index is out of range).
    StoreBit {
        /// Target net slot.
        slot: u32,
        /// Declared width of the target net.
        width: u32,
    },
    /// Pop an address, then a value; `mems[mem][addr] = v & mask`
    /// (no-op when the address is out of range).
    StoreMem {
        /// Target memory index.
        mem: u32,
        /// Mask of the memory word width.
        mask: u64,
    },
    /// Pop a value; append a pending non-blocking full-net write
    /// `(slot, mask, v & mask)`.
    NbaStore {
        /// Target net slot.
        slot: u32,
        /// Mask of the net width.
        mask: u64,
    },
    /// Pop a value; append a pending non-blocking slice write
    /// `(slot, mask << lo, (v & mask) << lo)`.
    NbaStoreSlice {
        /// Target net slot.
        slot: u32,
        /// Low bit of the slice.
        lo: u32,
        /// Mask of the slice width (unshifted).
        mask: u64,
    },
    /// Pop an index, then a value; append a pending non-blocking
    /// single-bit write (dropped when the index is out of range,
    /// matching the interpreter's `schedule_nba`).
    NbaStoreBit {
        /// Target net slot.
        slot: u32,
        /// Declared width of the target net.
        width: u32,
    },
    /// Pop an address, then a value; append a pending non-blocking
    /// memory write `(mem, addr, v)` (masked at commit).
    NbaStoreMem {
        /// Target memory index.
        mem: u32,
    },
}

/// A contiguous span of ops: one combinational unit or one clocked
/// process body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Block {
    /// First op index (inclusive).
    pub start: u32,
    /// Last op index (exclusive).
    pub end: u32,
}

impl Block {
    /// Number of ops in the block.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// True when the block emits no ops (e.g. an empty process body).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A compiled module: flat op array, block tables, and the dependency
/// maps an activity-driven evaluator needs.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// All instructions; blocks index into this.
    pub ops: Vec<Op>,
    /// Combinational blocks in levelized (topological) order — the
    /// exact order [`comb_schedule`] returns.
    pub comb_blocks: Vec<Block>,
    /// Clocked process blocks in process-declaration order.
    pub clocked_blocks: Vec<Block>,
    /// Declared width per net (index = `NetId`).
    pub net_widths: Vec<u32>,
    /// Word mask per memory (index = `MemId`).
    pub mem_masks: Vec<u64>,
    /// Per net: indices into `comb_blocks` of blocks that *read* it.
    pub net_readers: Vec<Vec<u32>>,
    /// Per memory: indices into `comb_blocks` of blocks that read it.
    pub mem_readers: Vec<Vec<u32>>,
    /// Per net: indices into `comb_blocks` of blocks that *drive* it
    /// (needed to re-derive a combinational net after an external
    /// poke smashes it).
    pub net_drivers: Vec<Vec<u32>>,
    /// Combinational blocks that read a net they partially drive
    /// (slice/bit RMW feedback). These are not pure functions of their
    /// inputs, so an activity-driven engine must re-run them exactly
    /// when the interpreter's global dirty flag would — empty for all
    /// sane synthesizable designs.
    pub self_rmw: Vec<u32>,
    /// Number of scratch slots needed (max case-nesting depth).
    pub tmp_slots: usize,
    /// Total op count across all combinational blocks (activity
    /// accounting).
    pub total_comb_ops: u64,
}

/// Builds the levelized combinational evaluation order (Kahn's
/// algorithm over net dependencies). Shared by the interpreter and the
/// bytecode compiler so both evaluate in the identical order.
///
/// # Errors
///
/// [`CompileError::CombLoop`] when the fabric has a genuine cycle
/// (partial-lvalue read-modify-write is permitted).
pub fn comb_schedule(module: &Module) -> Result<Vec<CombUnit>, CompileError> {
    // Collect nodes.
    let mut nodes: Vec<CombUnit> = Vec::new();
    for (i, _) in module.assigns.iter().enumerate() {
        nodes.push(CombUnit::Assign(i));
    }
    for (i, p) in module.processes.iter().enumerate() {
        if matches!(p.kind, ProcessKind::Comb) {
            nodes.push(CombUnit::Process(i));
        }
    }

    // net -> list of comb nodes driving it.
    let mut drivers: Vec<Vec<usize>> = vec![Vec::new(); module.nets.len()];
    for (ni, node) in nodes.iter().enumerate() {
        for target in node_targets(module, node) {
            drivers[target.0 as usize].push(ni);
        }
    }

    // Edges: node A -> node B when B reads a net driven by A.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (ni, node) in nodes.iter().enumerate() {
        let mut reads = Vec::new();
        node_reads(module, node, &mut reads);
        for r in reads {
            for &d in &drivers[r.0 as usize] {
                preds[ni].push(d);
            }
        }
        preds[ni].sort_unstable();
        preds[ni].dedup();
        // A node driving a net it also reads is a combinational loop,
        // except the benign read-modify-write of partial lvalues, which
        // we permit by not counting a node as its own predecessor when
        // the only overlap comes from a partial write to the same net.
        preds[ni].retain(|&p| p != ni || node_reads_own_full_target(module, node));
    }

    // Kahn: repeatedly emit nodes with no unresolved predecessors.
    let mut unresolved: Vec<usize> = preds.iter().map(|p| p.len()).collect();
    let mut ready: Vec<usize> = (0..nodes.len()).filter(|&i| unresolved[i] == 0).collect();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (ni, ps) in preds.iter().enumerate() {
        for &p in ps {
            succs[p].push(ni);
        }
    }
    let mut order = Vec::with_capacity(nodes.len());
    while let Some(n) = ready.pop() {
        order.push(n);
        for &s in &succs[n] {
            unresolved[s] -= 1;
            if unresolved[s] == 0 {
                ready.push(s);
            }
        }
    }
    if order.len() != nodes.len() {
        let stuck: Vec<String> = (0..nodes.len())
            .filter(|&i| unresolved[i] > 0)
            .flat_map(|i| {
                node_targets(module, &nodes[i])
                    .into_iter()
                    .map(|n| module.net(n).name.clone())
            })
            .collect();
        return Err(CompileError::CombLoop(stuck));
    }
    Ok(order.into_iter().map(|i| nodes[i]).collect())
}

/// Lowers a flat, checked module into a [`CompiledProgram`].
///
/// The module must already pass [`crate::check_module`]; the width
/// invariants that pass establishes are what make the compile-time
/// masks here correct.
///
/// # Errors
///
/// [`CompileError::CombLoop`] for combinational cycles, and
/// [`CompileError::Unsupported`] for constructs the checker would have
/// rejected anyway (defensive).
pub fn compile(module: &Module) -> Result<CompiledProgram, CompileError> {
    let order = comb_schedule(module)?;
    let mut e = Emitter {
        m: module,
        ops: Vec::new(),
        tmp_depth: 0,
        max_tmp: 0,
    };

    let mut comb_blocks = Vec::with_capacity(order.len());
    for unit in &order {
        let start = e.ops.len() as u32;
        match *unit {
            CombUnit::Assign(ai) => {
                let a = &module.assigns[ai];
                e.emit_assign(&a.lv, &a.rhs, false)?;
            }
            CombUnit::Process(pi) => {
                for s in &module.processes[pi].body {
                    e.emit_stmt(s, false)?;
                }
            }
        }
        comb_blocks.push(Block {
            start,
            end: e.ops.len() as u32,
        });
    }

    let mut clocked_blocks = Vec::new();
    for p in &module.processes {
        if matches!(p.kind, ProcessKind::Clocked { .. }) {
            let start = e.ops.len() as u32;
            for s in &p.body {
                e.emit_stmt(s, true)?;
            }
            clocked_blocks.push(Block {
                start,
                end: e.ops.len() as u32,
            });
        }
    }

    // Dependency maps for activity-driven evaluation. `node_reads` /
    // `node_targets` dedup per node, so each per-net list holds unique
    // block indices in ascending order.
    let mut net_readers: Vec<Vec<u32>> = vec![Vec::new(); module.nets.len()];
    let mut mem_readers: Vec<Vec<u32>> = vec![Vec::new(); module.memories.len()];
    let mut net_drivers: Vec<Vec<u32>> = vec![Vec::new(); module.nets.len()];
    let mut self_rmw: Vec<u32> = Vec::new();
    for (bi, unit) in order.iter().enumerate() {
        let mut reads = Vec::new();
        node_reads(module, unit, &mut reads);
        for &n in &reads {
            net_readers[n.0 as usize].push(bi as u32);
        }
        let mut mreads = Vec::new();
        node_mem_reads(module, unit, &mut mreads);
        for m in mreads {
            mem_readers[m.0 as usize].push(bi as u32);
        }
        let targets = node_targets(module, unit);
        for &t in &targets {
            net_drivers[t.0 as usize].push(bi as u32);
        }
        if targets.iter().any(|t| reads.contains(t)) {
            self_rmw.push(bi as u32);
        }
    }

    let total_comb_ops = comb_blocks.iter().map(|b| b.len() as u64).sum();
    Ok(CompiledProgram {
        ops: e.ops,
        comb_blocks,
        clocked_blocks,
        net_widths: module.nets.iter().map(|n| n.width).collect(),
        mem_masks: module.memories.iter().map(|m| mask(m.width)).collect(),
        net_readers,
        mem_readers,
        net_drivers,
        self_rmw,
        tmp_slots: e.max_tmp as usize,
        total_comb_ops,
    })
}

struct Emitter<'m> {
    m: &'m Module,
    ops: Vec<Op>,
    tmp_depth: u32,
    max_tmp: u32,
}

impl Emitter<'_> {
    fn emit_stmt(&mut self, s: &Stmt, clocked: bool) -> Result<(), CompileError> {
        match s {
            Stmt::Assign { lv, rhs, blocking } => {
                // In a comb process all assignments behave as blocking.
                self.emit_assign(lv, rhs, clocked && !*blocking)
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => {
                self.emit_expr(cond)?;
                let jz = self.emit_patchable(Op::JumpIfZero(0));
                for s in then_s {
                    self.emit_stmt(s, clocked)?;
                }
                if else_s.is_empty() {
                    self.patch(jz);
                } else {
                    let jend = self.emit_patchable(Op::Jump(0));
                    self.patch(jz);
                    for s in else_s {
                        self.emit_stmt(s, clocked)?;
                    }
                    self.patch(jend);
                }
                Ok(())
            }
            Stmt::Case { sel, arms, default } => {
                self.emit_expr(sel)?;
                let t = self.tmp_depth;
                self.tmp_depth += 1;
                self.max_tmp = self.max_tmp.max(self.tmp_depth);
                self.ops.push(Op::SetTmp(t));
                // Dispatch table: first arm whose any label matches
                // wins, exactly like `select_case_arm`.
                let mut arm_jumps: Vec<Vec<usize>> = Vec::with_capacity(arms.len());
                for arm in arms {
                    let mut js = Vec::with_capacity(arm.labels.len());
                    for l in &arm.labels {
                        js.push(self.emit_patchable(Op::JumpTmpEq {
                            tmp: t,
                            label: l.bits(),
                            target: 0,
                        }));
                    }
                    arm_jumps.push(js);
                }
                let jdefault = self.emit_patchable(Op::Jump(0));
                let mut end_jumps = Vec::with_capacity(arms.len());
                for (arm, js) in arms.iter().zip(arm_jumps) {
                    for j in js {
                        self.patch(j);
                    }
                    for s in &arm.body {
                        self.emit_stmt(s, clocked)?;
                    }
                    end_jumps.push(self.emit_patchable(Op::Jump(0)));
                }
                self.patch(jdefault);
                for s in default {
                    self.emit_stmt(s, clocked)?;
                }
                for j in end_jumps {
                    self.patch(j);
                }
                self.tmp_depth -= 1;
                Ok(())
            }
        }
    }

    /// Emits RHS evaluation followed by the store op. `nba` selects the
    /// non-blocking variants (clocked `<=`).
    fn emit_assign(&mut self, lv: &LValue, rhs: &Expr, nba: bool) -> Result<(), CompileError> {
        self.emit_expr(rhs)?;
        match lv {
            LValue::Net(n) => {
                let m = mask(self.m.net(*n).width);
                self.ops.push(if nba {
                    Op::NbaStore { slot: n.0, mask: m }
                } else {
                    Op::Store { slot: n.0, mask: m }
                });
            }
            LValue::Slice { base, hi, lo } => {
                let m = mask(hi - lo + 1);
                self.ops.push(if nba {
                    Op::NbaStoreSlice {
                        slot: base.0,
                        lo: *lo,
                        mask: m,
                    }
                } else {
                    Op::StoreSlice {
                        slot: base.0,
                        lo: *lo,
                        mask: m,
                    }
                });
            }
            LValue::Index { base, index } => {
                self.emit_expr(index)?;
                let w = self.m.net(*base).width;
                self.ops.push(if nba {
                    Op::NbaStoreBit {
                        slot: base.0,
                        width: w,
                    }
                } else {
                    Op::StoreBit {
                        slot: base.0,
                        width: w,
                    }
                });
            }
            LValue::Mem { mem, addr } => {
                self.emit_expr(addr)?;
                self.ops.push(if nba {
                    Op::NbaStoreMem { mem: mem.0 }
                } else {
                    Op::StoreMem {
                        mem: mem.0,
                        mask: mask(self.m.memory(*mem).width),
                    }
                });
            }
        }
        Ok(())
    }

    /// Emits ops leaving the (normalized) expression value on the
    /// stack; returns its static width. Width rules mirror
    /// [`Expr::width`] exactly.
    fn emit_expr(&mut self, e: &Expr) -> Result<u32, CompileError> {
        Ok(match e {
            Expr::Const(v) => {
                self.ops.push(Op::Const(v.bits()));
                v.width()
            }
            Expr::Net(n) => {
                self.ops.push(Op::Load(n.0));
                self.m.net(*n).width
            }
            Expr::Slice { base, hi, lo } => {
                let w = hi - lo + 1;
                self.ops.push(Op::LoadSlice {
                    slot: base.0,
                    lo: *lo,
                    mask: mask(w),
                });
                w
            }
            Expr::Index { base, index } => {
                self.emit_expr(index)?;
                self.ops.push(Op::LoadBit {
                    slot: base.0,
                    width: self.m.net(*base).width,
                });
                1
            }
            Expr::Unary { op, arg } => {
                let w = self.emit_expr(arg)?;
                self.ops.push(Op::Unary {
                    op: *op,
                    mask: mask(w),
                });
                match op {
                    UnaryOp::Not | UnaryOp::Neg => w,
                    _ => 1,
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let wl = self.emit_expr(lhs)?;
                let wr = self.emit_expr(rhs)?;
                let w = if op.is_boolean() {
                    1
                } else if matches!(op, BinaryOp::Shl | BinaryOp::Shr) {
                    wl
                } else {
                    wl.max(wr)
                };
                self.ops.push(Op::Binary {
                    op: *op,
                    mask: mask(w),
                    lw: wl,
                });
                w
            }
            Expr::Cond {
                cond,
                then_e,
                else_e,
            } => {
                // The interpreter evaluates both arms then picks; both
                // are pure, so branching to evaluate only the taken arm
                // yields the same value. Arms are normalized at their
                // own widths and the unification width is the max, so
                // zero-extension needs no runtime op.
                self.emit_expr(cond)?;
                let jz = self.emit_patchable(Op::JumpIfZero(0));
                let wt = self.emit_expr(then_e)?;
                let jend = self.emit_patchable(Op::Jump(0));
                self.patch(jz);
                let wf = self.emit_expr(else_e)?;
                self.patch(jend);
                wt.max(wf)
            }
            Expr::Concat(parts) => {
                let mut it = parts.iter();
                let first = it
                    .next()
                    .ok_or_else(|| CompileError::Unsupported("empty concatenation".into()))?;
                let mut acc = self.emit_expr(first)?;
                for p in it {
                    let wp = self.emit_expr(p)?;
                    self.ops.push(Op::Concat { shift: wp });
                    acc += wp;
                }
                acc
            }
            Expr::Repeat { count, arg } => {
                if *count == 0 {
                    return Err(CompileError::Unsupported("zero replication count".into()));
                }
                let w = self.emit_expr(arg)?;
                if *count > 1 {
                    self.ops.push(Op::Repeat {
                        count: *count,
                        width: w,
                    });
                }
                count * w
            }
            Expr::MemRead { mem, addr } => {
                self.emit_expr(addr)?;
                self.ops.push(Op::LoadMem { mem: mem.0 });
                self.m.memory(*mem).width
            }
        })
    }

    fn emit_patchable(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn patch(&mut self, at: usize) {
        let target = self.ops.len() as u32;
        match &mut self.ops[at] {
            Op::Jump(t) | Op::JumpIfZero(t) => *t = target,
            Op::JumpTmpEq { target: t, .. } => *t = target,
            other => unreachable!("patch on non-jump op {other:?}"),
        }
    }
}

/// True when a comb node reads the *same whole net* it fully drives —
/// a genuine feedback loop (as opposed to partial-lvalue RMW).
fn node_reads_own_full_target(module: &Module, node: &CombUnit) -> bool {
    let targets = node_targets(module, node);
    let full_targets: Vec<NetId> = match node {
        CombUnit::Assign(ai) => match &module.assigns[*ai].lv {
            LValue::Net(n) => vec![*n],
            _ => vec![],
        },
        CombUnit::Process(_) => targets, // comb processes: any self-read is a loop
    };
    let mut reads = Vec::new();
    node_reads(module, node, &mut reads);
    full_targets.iter().any(|t| reads.contains(t))
}

/// Nets written by a comb node.
fn node_targets(module: &Module, node: &CombUnit) -> Vec<NetId> {
    match node {
        CombUnit::Assign(ai) => module.assigns[*ai].lv.target_net().into_iter().collect(),
        CombUnit::Process(pi) => {
            let mut out = Vec::new();
            for s in &module.processes[*pi].body {
                s.for_each(&mut |s| {
                    if let Stmt::Assign { lv, .. } = s {
                        if let Some(n) = lv.target_net() {
                            if !out.contains(&n) {
                                out.push(n);
                            }
                        }
                    }
                });
            }
            out
        }
    }
}

/// Nets read by a comb node (RHS, conditions, selectors, indices).
fn node_reads(module: &Module, node: &CombUnit, out: &mut Vec<NetId>) {
    let mut push = |n: NetId| {
        if !out.contains(&n) {
            out.push(n);
        }
    };
    match node {
        CombUnit::Assign(ai) => {
            let a = &module.assigns[*ai];
            a.rhs.for_each_net(&mut push);
            if let LValue::Index { index, .. } = &a.lv {
                index.for_each_net(&mut push);
            }
            if let LValue::Mem { addr, .. } = &a.lv {
                addr.for_each_net(&mut push);
            }
        }
        CombUnit::Process(pi) => {
            for s in &module.processes[*pi].body {
                stmt_reads(s, &mut push);
            }
        }
    }
}

/// Memories read by a comb node.
fn node_mem_reads(module: &Module, node: &CombUnit, out: &mut Vec<MemId>) {
    let mut push = |m: MemId| {
        if !out.contains(&m) {
            out.push(m);
        }
    };
    match node {
        CombUnit::Assign(ai) => {
            let a = &module.assigns[*ai];
            a.rhs.for_each_mem(&mut push);
            if let LValue::Index { index, .. } = &a.lv {
                index.for_each_mem(&mut push);
            }
            if let LValue::Mem { addr, .. } = &a.lv {
                addr.for_each_mem(&mut push);
            }
        }
        CombUnit::Process(pi) => {
            for s in &module.processes[*pi].body {
                stmt_mem_reads(s, &mut push);
            }
        }
    }
}

fn stmt_reads(s: &Stmt, push: &mut impl FnMut(NetId)) {
    match s {
        Stmt::Assign { lv, rhs, .. } => {
            rhs.for_each_net(push);
            if let LValue::Index { index, .. } = lv {
                index.for_each_net(push);
            }
            if let LValue::Mem { addr, .. } = lv {
                addr.for_each_net(push);
            }
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
        } => {
            cond.for_each_net(push);
            for s in then_s.iter().chain(else_s) {
                stmt_reads(s, push);
            }
        }
        Stmt::Case { sel, arms, default } => {
            sel.for_each_net(push);
            for arm in arms {
                for s in &arm.body {
                    stmt_reads(s, push);
                }
            }
            for s in default {
                stmt_reads(s, push);
            }
        }
    }
}

fn stmt_mem_reads(s: &Stmt, push: &mut impl FnMut(MemId)) {
    match s {
        Stmt::Assign { lv, rhs, .. } => {
            rhs.for_each_mem(push);
            if let LValue::Index { index, .. } = lv {
                index.for_each_mem(push);
            }
            if let LValue::Mem { addr, .. } = lv {
                addr.for_each_mem(push);
            }
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
        } => {
            cond.for_each_mem(push);
            for s in then_s.iter().chain(else_s) {
                stmt_mem_reads(s, push);
            }
        }
        Stmt::Case { sel, arms, default } => {
            sel.for_each_mem(push);
            for arm in arms {
                for s in &arm.body {
                    stmt_mem_reads(s, push);
                }
            }
            for s in default {
                stmt_mem_reads(s, push);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{ContAssign, NetKind, PortDir};
    use crate::value::Value;

    fn net(n: NetId) -> Expr {
        Expr::Net(n)
    }

    fn add(a: Expr, b: Expr) -> Expr {
        Expr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(a),
            rhs: Box::new(b),
        }
    }

    #[test]
    fn chain_is_levelized_and_compiled_in_dependency_order() {
        // z = b + 1; b = a + 1; a = x + 1 — declared in reverse order.
        let mut m = Module::new("chain");
        let x = m
            .add_net("x", 4, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let z = m
            .add_net("z", 4, NetKind::Wire, Some(PortDir::Output))
            .unwrap();
        let a = m.add_net("a", 4, NetKind::Wire, None).unwrap();
        let b = m.add_net("b", 4, NetKind::Wire, None).unwrap();
        let one = Expr::Const(Value::new(1, 4));
        m.assigns.push(ContAssign {
            lv: LValue::Net(z),
            rhs: add(net(b), one.clone()),
        });
        m.assigns.push(ContAssign {
            lv: LValue::Net(b),
            rhs: add(net(a), one.clone()),
        });
        m.assigns.push(ContAssign {
            lv: LValue::Net(a),
            rhs: add(net(x), one),
        });

        let order = comb_schedule(&m).unwrap();
        assert_eq!(
            order,
            vec![
                CombUnit::Assign(2),
                CombUnit::Assign(1),
                CombUnit::Assign(0)
            ]
        );

        let prog = compile(&m).unwrap();
        assert_eq!(prog.comb_blocks.len(), 3);
        assert_eq!(prog.clocked_blocks.len(), 0);
        // Each block: Load, Const, Binary, Store.
        for b in &prog.comb_blocks {
            assert_eq!(b.len(), 4);
        }
        // First block drives `a` and reads `x`.
        assert_eq!(prog.net_drivers[a.0 as usize], vec![0]);
        assert_eq!(prog.net_readers[x.0 as usize], vec![0]);
        // Readers always come after drivers in levelized order.
        assert_eq!(prog.net_drivers[b.0 as usize], vec![1]);
        assert_eq!(prog.net_readers[b.0 as usize], vec![2]);
        assert!(prog.self_rmw.is_empty());
        assert_eq!(prog.total_comb_ops, 12);
    }

    #[test]
    fn comb_loop_is_rejected() {
        let mut m = Module::new("loop");
        let x = m
            .add_net("x", 1, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let a = m.add_net("a", 1, NetKind::Wire, None).unwrap();
        let b = m.add_net("b", 1, NetKind::Wire, None).unwrap();
        m.assigns.push(ContAssign {
            lv: LValue::Net(a),
            rhs: Expr::Binary {
                op: BinaryOp::Xor,
                lhs: Box::new(net(b)),
                rhs: Box::new(net(x)),
            },
        });
        m.assigns.push(ContAssign {
            lv: LValue::Net(b),
            rhs: net(a),
        });
        match comb_schedule(&m) {
            Err(CompileError::CombLoop(nets)) => {
                assert!(nets.iter().any(|n| n == "a" || n == "b"));
            }
            other => panic!("expected comb loop, got {other:?}"),
        }
    }

    #[test]
    fn partial_rmw_self_read_is_flagged_not_rejected() {
        // assign w[0] = w[3] — reads the net it partially drives.
        let mut m = Module::new("rmw");
        let w = m.add_net("w", 4, NetKind::Wire, None).unwrap();
        m.assigns.push(ContAssign {
            lv: LValue::Index {
                base: w,
                index: Expr::constant(0, 2),
            },
            rhs: Expr::Index {
                base: w,
                index: Box::new(Expr::constant(3, 2)),
            },
        });
        let prog = compile(&m).unwrap();
        assert_eq!(prog.self_rmw, vec![0]);
    }

    #[test]
    fn case_lowering_dispatches_and_falls_through_to_default() {
        use crate::module::CaseArm;
        let mut m = Module::new("dec");
        let s = m
            .add_net("s", 2, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let y = m
            .add_net("y", 4, NetKind::Reg, Some(PortDir::Output))
            .unwrap();
        let arm = |label: u64, out: u64| CaseArm {
            labels: vec![Value::new(label, 2)],
            body: vec![Stmt::Assign {
                lv: LValue::Net(y),
                rhs: Expr::constant(out, 4),
                blocking: true,
            }],
        };
        m.processes.push(crate::module::Process {
            kind: ProcessKind::Comb,
            body: vec![Stmt::Case {
                sel: net(s),
                arms: vec![arm(0, 1), arm(1, 2), arm(2, 4)],
                default: vec![Stmt::Assign {
                    lv: LValue::Net(y),
                    rhs: Expr::constant(8, 4),
                    blocking: true,
                }],
            }],
        });
        let prog = compile(&m).unwrap();
        assert_eq!(prog.tmp_slots, 1);
        // Dispatch: Load sel, SetTmp, 3 JumpTmpEq, Jump(default).
        let b = prog.comb_blocks[0];
        let ops = &prog.ops[b.start as usize..b.end as usize];
        assert!(matches!(ops[0], Op::Load(_)));
        assert!(matches!(ops[1], Op::SetTmp(0)));
        assert_eq!(
            ops[2..5]
                .iter()
                .filter(|o| matches!(o, Op::JumpTmpEq { .. }))
                .count(),
            3
        );
        assert!(matches!(ops[5], Op::Jump(_)));
        // All jump targets stay within the block.
        for op in ops {
            let t = match *op {
                Op::Jump(t) | Op::JumpIfZero(t) => t,
                Op::JumpTmpEq { target, .. } => target,
                _ => continue,
            };
            assert!(t >= b.start && t <= b.end, "jump target {t} escapes block");
        }
    }
}
