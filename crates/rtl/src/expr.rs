//! Expression IR at the register-transfer level.
//!
//! Expressions are trees over nets, memories and constants. Width rules
//! follow a simplified, unsigned-only subset of Verilog-2005
//! (see [`Expr::width`]); signedness is out of scope for the corpus.

use crate::module::{MemId, Module, NetId};
use crate::value::Value;
use crate::RtlError;
use std::fmt;

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Bitwise negation `~a` (result width = operand width).
    Not,
    /// Two's-complement negation `-a` (result width = operand width).
    Neg,
    /// Logical negation `!a` (result width 1).
    LogicNot,
    /// AND reduction `&a` (result width 1).
    RedAnd,
    /// OR reduction `|a` (result width 1).
    RedOr,
    /// XOR reduction `^a` (result width 1).
    RedXor,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `a + b`, wrapping, width = max(wa, wb).
    Add,
    /// `a - b`, wrapping, width = max(wa, wb).
    Sub,
    /// `a * b`, wrapping, width = max(wa, wb).
    Mul,
    /// `a & b`, width = max(wa, wb).
    And,
    /// `a | b`, width = max(wa, wb).
    Or,
    /// `a ^ b`, width = max(wa, wb).
    Xor,
    /// `a << b` (logical), width = wa.
    Shl,
    /// `a >> b` (logical), width = wa.
    Shr,
    /// `a == b`, width 1.
    Eq,
    /// `a != b`, width 1.
    Ne,
    /// `a < b` (unsigned), width 1.
    Lt,
    /// `a <= b` (unsigned), width 1.
    Le,
    /// `a > b` (unsigned), width 1.
    Gt,
    /// `a >= b` (unsigned), width 1.
    Ge,
    /// `a && b`, width 1.
    LogicAnd,
    /// `a || b`, width 1.
    LogicOr,
}

impl BinaryOp {
    /// True for operators whose result is a single bit.
    pub fn is_boolean(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::LogicAnd
                | BinaryOp::LogicOr
        )
    }
}

/// An RTL expression tree.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal constant.
    Const(Value),
    /// The full value of a net.
    Net(NetId),
    /// Constant part-select `net[hi:lo]`.
    Slice {
        /// The sliced net.
        base: NetId,
        /// Most-significant bit (inclusive).
        hi: u32,
        /// Least-significant bit (inclusive).
        lo: u32,
    },
    /// Dynamic single-bit select `net[index]`; yields width 1.
    Index {
        /// The indexed net.
        base: NetId,
        /// The bit index expression.
        index: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        arg: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Ternary conditional `cond ? t : e`.
    Cond {
        /// Condition (any width; true iff nonzero).
        cond: Box<Expr>,
        /// Value when true.
        then_e: Box<Expr>,
        /// Value when false.
        else_e: Box<Expr>,
    },
    /// Concatenation `{a, b, ...}`, first element most significant.
    Concat(Vec<Expr>),
    /// Replication `{count{arg}}`.
    Repeat {
        /// Replication count.
        count: u32,
        /// Replicated expression.
        arg: Box<Expr>,
    },
    /// Asynchronous memory read `mem[addr]`.
    MemRead {
        /// The memory.
        mem: MemId,
        /// Address expression.
        addr: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a constant of given bits/width.
    pub fn constant(bits: u64, width: u32) -> Expr {
        Expr::Const(Value::new(bits, width))
    }

    /// Computes the result width of this expression within `module`.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::WidthError`] for malformed expressions, e.g. a
    /// slice outside its net's declared range or a zero-length concat.
    pub fn width(&self, module: &Module) -> Result<u32, RtlError> {
        Ok(match self {
            Expr::Const(v) => v.width(),
            Expr::Net(id) => module.net(*id).width,
            Expr::Slice { base, hi, lo } => {
                let nw = module.net(*base).width;
                if hi < lo || *hi >= nw {
                    return Err(RtlError::WidthError(format!(
                        "slice [{hi}:{lo}] out of range for net '{}' of width {nw}",
                        module.net(*base).name
                    )));
                }
                hi - lo + 1
            }
            Expr::Index { index, .. } => {
                index.width(module)?;
                1
            }
            Expr::Unary { op, arg } => {
                let w = arg.width(module)?;
                match op {
                    UnaryOp::Not | UnaryOp::Neg => w,
                    _ => 1,
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let wl = lhs.width(module)?;
                let wr = rhs.width(module)?;
                if op.is_boolean() {
                    1
                } else if matches!(op, BinaryOp::Shl | BinaryOp::Shr) {
                    wl
                } else {
                    wl.max(wr)
                }
            }
            Expr::Cond {
                cond,
                then_e,
                else_e,
            } => {
                cond.width(module)?;
                then_e.width(module)?.max(else_e.width(module)?)
            }
            Expr::Concat(parts) => {
                if parts.is_empty() {
                    return Err(RtlError::WidthError("empty concatenation".into()));
                }
                let mut w = 0;
                for p in parts {
                    w += p.width(module)?;
                }
                if w > crate::value::MAX_WIDTH {
                    return Err(RtlError::WidthError(format!(
                        "concatenation width {w} exceeds the {}-bit limit",
                        crate::value::MAX_WIDTH
                    )));
                }
                w
            }
            Expr::Repeat { count, arg } => {
                if *count == 0 {
                    return Err(RtlError::WidthError("zero replication count".into()));
                }
                let w = count * arg.width(module)?;
                if w > crate::value::MAX_WIDTH {
                    return Err(RtlError::WidthError(format!(
                        "replication width {w} exceeds the {}-bit limit",
                        crate::value::MAX_WIDTH
                    )));
                }
                w
            }
            Expr::MemRead { mem, addr } => {
                addr.width(module)?;
                module.memory(*mem).width
            }
        })
    }

    /// Visits every net read by this expression (including slice bases and
    /// index expressions), invoking `f` once per occurrence.
    pub fn for_each_net(&self, f: &mut impl FnMut(NetId)) {
        match self {
            Expr::Const(_) => {}
            Expr::Net(id) => f(*id),
            Expr::Slice { base, .. } => f(*base),
            Expr::Index { base, index } => {
                f(*base);
                index.for_each_net(f);
            }
            Expr::Unary { arg, .. } => arg.for_each_net(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.for_each_net(f);
                rhs.for_each_net(f);
            }
            Expr::Cond {
                cond,
                then_e,
                else_e,
            } => {
                cond.for_each_net(f);
                then_e.for_each_net(f);
                else_e.for_each_net(f);
            }
            Expr::Concat(parts) => {
                for p in parts {
                    p.for_each_net(f);
                }
            }
            Expr::Repeat { arg, .. } => arg.for_each_net(f),
            Expr::MemRead { addr, .. } => addr.for_each_net(f),
        }
    }

    /// Visits every memory read by this expression.
    pub fn for_each_mem(&self, f: &mut impl FnMut(MemId)) {
        match self {
            Expr::MemRead { mem, addr } => {
                f(*mem);
                addr.for_each_mem(f);
            }
            Expr::Index { index, .. } => index.for_each_mem(f),
            Expr::Unary { arg, .. } | Expr::Repeat { arg, .. } => arg.for_each_mem(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.for_each_mem(f);
                rhs.for_each_mem(f);
            }
            Expr::Cond {
                cond,
                then_e,
                else_e,
            } => {
                cond.for_each_mem(f);
                then_e.for_each_mem(f);
                else_e.for_each_mem(f);
            }
            Expr::Concat(parts) => {
                for p in parts {
                    p.for_each_mem(f);
                }
            }
            _ => {}
        }
    }

    /// Rewrites all net and memory ids using the given maps; used when a
    /// module body is inlined into a parent during elaboration.
    pub fn remap(&mut self, net_map: &impl Fn(NetId) -> NetId, mem_map: &impl Fn(MemId) -> MemId) {
        match self {
            Expr::Const(_) => {}
            Expr::Net(id) => *id = net_map(*id),
            Expr::Slice { base, .. } => *base = net_map(*base),
            Expr::Index { base, index } => {
                *base = net_map(*base);
                index.remap(net_map, mem_map);
            }
            Expr::Unary { arg, .. } | Expr::Repeat { arg, .. } => arg.remap(net_map, mem_map),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.remap(net_map, mem_map);
                rhs.remap(net_map, mem_map);
            }
            Expr::Cond {
                cond,
                then_e,
                else_e,
            } => {
                cond.remap(net_map, mem_map);
                then_e.remap(net_map, mem_map);
                else_e.remap(net_map, mem_map);
            }
            Expr::Concat(parts) => {
                for p in parts {
                    p.remap(net_map, mem_map);
                }
            }
            Expr::MemRead { mem, addr } => {
                *mem = mem_map(*mem);
                addr.remap(net_map, mem_map);
            }
        }
    }

    /// Counts the operator nodes in this expression; used as a rough
    /// synthesized-cell estimate by netlist statistics.
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Net(_) | Expr::Slice { .. } => 1,
            Expr::Index { index, .. } => 1 + index.node_count(),
            Expr::Unary { arg, .. } | Expr::Repeat { arg, .. } => 1 + arg.node_count(),
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.node_count() + rhs.node_count(),
            Expr::Cond {
                cond,
                then_e,
                else_e,
            } => 1 + cond.node_count() + then_e.node_count() + else_e.node_count(),
            Expr::Concat(parts) => 1 + parts.iter().map(Expr::node_count).sum::<usize>(),
            Expr::MemRead { addr, .. } => 1 + addr.node_count(),
        }
    }
}

impl From<Value> for Expr {
    fn from(v: Value) -> Self {
        Expr::Const(v)
    }
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnaryOp::Not => "~",
            UnaryOp::Neg => "-",
            UnaryOp::LogicNot => "!",
            UnaryOp::RedAnd => "&",
            UnaryOp::RedOr => "|",
            UnaryOp::RedXor => "^",
        };
        f.write_str(s)
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::And => "&",
            BinaryOp::Or => "|",
            BinaryOp::Xor => "^",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::LogicAnd => "&&",
            BinaryOp::LogicOr => "||",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Module, NetKind, PortDir};

    fn test_module() -> (Module, NetId, NetId) {
        let mut m = Module::new("t");
        let a = m
            .add_net("a", 8, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let b = m
            .add_net("b", 4, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        (m, a, b)
    }

    #[test]
    fn width_of_binary_is_max_of_operands() {
        let (m, a, b) = test_module();
        let e = Expr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(Expr::Net(a)),
            rhs: Box::new(Expr::Net(b)),
        };
        assert_eq!(e.width(&m).unwrap(), 8);
    }

    #[test]
    fn width_of_comparison_is_one() {
        let (m, a, b) = test_module();
        let e = Expr::Binary {
            op: BinaryOp::Lt,
            lhs: Box::new(Expr::Net(a)),
            rhs: Box::new(Expr::Net(b)),
        };
        assert_eq!(e.width(&m).unwrap(), 1);
    }

    #[test]
    fn width_of_shift_is_lhs_width() {
        let (m, a, b) = test_module();
        let e = Expr::Binary {
            op: BinaryOp::Shl,
            lhs: Box::new(Expr::Net(b)),
            rhs: Box::new(Expr::Net(a)),
        };
        assert_eq!(e.width(&m).unwrap(), 4);
    }

    #[test]
    fn width_of_concat_and_repeat() {
        let (m, a, b) = test_module();
        let e = Expr::Concat(vec![Expr::Net(a), Expr::Net(b)]);
        assert_eq!(e.width(&m).unwrap(), 12);
        let r = Expr::Repeat {
            count: 3,
            arg: Box::new(Expr::Net(b)),
        };
        assert_eq!(r.width(&m).unwrap(), 12);
    }

    #[test]
    fn slice_out_of_range_errors() {
        let (m, a, _) = test_module();
        let e = Expr::Slice {
            base: a,
            hi: 8,
            lo: 0,
        };
        assert!(e.width(&m).is_err());
        let e = Expr::Slice {
            base: a,
            hi: 0,
            lo: 1,
        };
        assert!(e.width(&m).is_err());
    }

    #[test]
    fn oversized_concat_errors() {
        let (m, a, _) = test_module();
        let e = Expr::Concat(vec![Expr::Net(a); 9]); // 72 bits
        assert!(e.width(&m).is_err());
    }

    #[test]
    fn for_each_net_visits_all_occurrences() {
        let (_, a, b) = test_module();
        let e = Expr::Binary {
            op: BinaryOp::Xor,
            lhs: Box::new(Expr::Net(a)),
            rhs: Box::new(Expr::Index {
                base: a,
                index: Box::new(Expr::Net(b)),
            }),
        };
        let mut seen = Vec::new();
        e.for_each_net(&mut |n| seen.push(n));
        assert_eq!(seen, vec![a, a, b]);
    }

    #[test]
    fn node_count_counts_operators() {
        let (_, a, b) = test_module();
        let e = Expr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(Expr::Net(a)),
            rhs: Box::new(Expr::Unary {
                op: UnaryOp::Not,
                arg: Box::new(Expr::Net(b)),
            }),
        };
        assert_eq!(e.node_count(), 4);
    }
}
