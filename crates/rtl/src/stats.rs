//! Netlist statistics.
//!
//! Feeds Table II of the evaluation (peripheral corpus characteristics)
//! and the scan-chain overhead experiment (E7): flip-flop counts, state
//! bits (= scan-chain length) and a rough combinational-cell estimate.

use crate::module::{Module, ProcessKind, Stmt};
use std::fmt;

/// Summary statistics of a (typically flat) module.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ModuleStats {
    /// Module name.
    pub name: String,
    /// Total nets.
    pub nets: usize,
    /// Ports.
    pub ports: usize,
    /// Number of distinct flip-flop registers (clocked-process targets).
    pub flops: usize,
    /// Total flip-flop bits.
    pub flop_bits: u64,
    /// Number of memories.
    pub memories: usize,
    /// Total memory bits.
    pub mem_bits: u64,
    /// Total architectural state bits (`flop_bits + mem_bits`); this is
    /// the scan-chain length after instrumentation.
    pub state_bits: u64,
    /// Rough synthesized combinational cell estimate (expression nodes).
    pub comb_cells: usize,
    /// Number of processes.
    pub processes: usize,
    /// Continuous assigns.
    pub assigns: usize,
}

impl ModuleStats {
    /// Computes statistics for `module`.
    pub fn of(module: &Module) -> Self {
        let regs = module.clocked_regs();
        let flop_bits: u64 = regs.iter().map(|&n| module.net(n).width as u64).sum();
        let mems = module.clocked_mems();
        let mem_bits: u64 = mems.iter().map(|&m| module.memory(m).state_bits()).sum();
        let mut comb_cells = 0usize;
        for a in &module.assigns {
            comb_cells += a.rhs.node_count();
        }
        for p in &module.processes {
            for s in &p.body {
                s.for_each(&mut |s| {
                    if let Stmt::Assign { rhs, .. } = s {
                        comb_cells += rhs.node_count();
                    }
                    if let Stmt::If { cond, .. } = s {
                        comb_cells += cond.node_count();
                    }
                    if let Stmt::Case { sel, .. } = s {
                        comb_cells += sel.node_count();
                    }
                });
            }
        }
        ModuleStats {
            name: module.name.clone(),
            nets: module.nets.len(),
            ports: module.ports().count(),
            flops: regs.len(),
            flop_bits,
            memories: mems.len(),
            mem_bits,
            state_bits: flop_bits + mem_bits,
            comb_cells,
            processes: module.processes.len(),
            assigns: module.assigns.len(),
        }
    }

    /// Number of clocked processes in `module` (convenience for reports).
    pub fn clocked_processes(module: &Module) -> usize {
        module
            .processes
            .iter()
            .filter(|p| matches!(p.kind, ProcessKind::Clocked { .. }))
            .count()
    }
}

impl fmt::Display for ModuleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} nets, {} ports, {} flops ({} bits), {} memories ({} bits), \
             {} state bits, ~{} comb cells",
            self.name,
            self.nets,
            self.ports,
            self.flops,
            self.flop_bits,
            self.memories,
            self.mem_bits,
            self.state_bits,
            self.comb_cells
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::module::{EdgeKind, LValue, NetKind, PortDir, Process, ProcessKind};

    #[test]
    fn stats_count_flops_and_memories() {
        let mut m = Module::new("m");
        let clk = m
            .add_net("clk", 1, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let q = m.add_net("q", 16, NetKind::Reg, None).unwrap();
        let ram = m.add_memory("ram", 8, 32).unwrap();
        m.processes.push(Process {
            kind: ProcessKind::Clocked {
                clock: clk,
                edge: EdgeKind::Pos,
            },
            body: vec![
                Stmt::Assign {
                    lv: LValue::Net(q),
                    rhs: Expr::constant(1, 16),
                    blocking: false,
                },
                Stmt::Assign {
                    lv: LValue::Mem {
                        mem: ram,
                        addr: Expr::constant(0, 5),
                    },
                    rhs: Expr::constant(0, 8),
                    blocking: false,
                },
            ],
        });
        let s = ModuleStats::of(&m);
        assert_eq!(s.flops, 1);
        assert_eq!(s.flop_bits, 16);
        assert_eq!(s.memories, 1);
        assert_eq!(s.mem_bits, 256);
        assert_eq!(s.state_bits, 272);
        assert_eq!(s.ports, 1);
        assert_eq!(ModuleStats::clocked_processes(&m), 1);
        assert!(s.to_string().contains("272 state bits"));
    }
}
