//! Structural and width validation of modules.
//!
//! [`check_module`] enforces the rules the simulator and the scan-chain
//! pass rely on:
//!
//! * every expression and lvalue width-checks;
//! * wires are driven only by continuous assigns, regs only by processes;
//! * no net bit has two continuous drivers; no reg is written by two
//!   different processes; nothing is driven both ways;
//! * clock nets are 1-bit and clocked processes do not write their clock;
//! * memories are written only from clocked processes.
//!
//! Style issues that do not break simulation (blocking assignment in
//! clocked processes, incomplete combinational assignment → latch) are
//! reported as [`Lint`]s.

use crate::module::{LValue, Module, NetKind, ProcessKind, Stmt};
use crate::RtlError;

/// A non-fatal style finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lint {
    /// Human-readable description, includes the net/process involved.
    pub message: String,
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Validates a module (flat or hierarchical — instances are ignored).
///
/// # Errors
///
/// Returns [`RtlError::Check`] on the first structural violation and
/// [`RtlError::WidthError`] for malformed expressions.
pub fn check_module(m: &Module) -> Result<Vec<Lint>, RtlError> {
    let mut lints = Vec::new();

    // --- width-check everything -----------------------------------------
    for a in &m.assigns {
        a.rhs.width(m)?;
        a.lv.width(m)?;
    }
    for p in &m.processes {
        for s in &p.body {
            width_check_stmt(m, s)?;
        }
    }

    // --- driver bookkeeping ----------------------------------------------
    // cont_bits[net] = per-bit count of continuous drivers
    let mut cont_bits: Vec<Vec<u8>> = m.nets.iter().map(|n| vec![0u8; n.width as usize]).collect();
    // proc_writer[net] = index of the process that writes it
    let mut proc_writer: Vec<Option<usize>> = vec![None; m.nets.len()];
    let mut mem_writer: Vec<Option<usize>> = vec![None; m.memories.len()];

    for a in &m.assigns {
        mark_cont_driver(m, &a.lv, &mut cont_bits)?;
    }

    for (pi, p) in m.processes.iter().enumerate() {
        let clocked = matches!(p.kind, ProcessKind::Clocked { .. });
        if let ProcessKind::Clocked { clock, .. } = p.kind {
            if m.net(clock).width != 1 {
                return Err(RtlError::Check(format!(
                    "clock net '{}' has width {} (must be 1)",
                    m.net(clock).name,
                    m.net(clock).width
                )));
            }
        }
        for s in &p.body {
            s.for_each(&mut |s| {
                if let Stmt::Assign { lv, blocking, .. } = s {
                    if let Some(n) = lv.target_net() {
                        match proc_writer[n.0 as usize] {
                            Some(prev) if prev != pi => {
                                lints.push(Lint {
                                    message: format!(
                                        "ERROR:multidriver net '{}' written by two processes",
                                        m.net(n).name
                                    ),
                                });
                            }
                            _ => proc_writer[n.0 as usize] = Some(pi),
                        }
                        if m.net(n).kind == NetKind::Wire {
                            lints.push(Lint {
                                message: format!(
                                    "ERROR:wire '{}' assigned inside a process \
                                     (declare it reg)",
                                    m.net(n).name
                                ),
                            });
                        }
                        if clocked && *blocking {
                            lints.push(Lint {
                                message: format!(
                                    "blocking assignment to '{}' in clocked process",
                                    m.net(n).name
                                ),
                            });
                        }
                        if !clocked && !*blocking {
                            lints.push(Lint {
                                message: format!(
                                    "non-blocking assignment to '{}' in combinational process",
                                    m.net(n).name
                                ),
                            });
                        }
                        if let ProcessKind::Clocked { clock, .. } = p.kind {
                            if n == clock {
                                lints.push(Lint {
                                    message: format!(
                                        "ERROR:process writes its own clock '{}'",
                                        m.net(n).name
                                    ),
                                });
                            }
                        }
                    }
                    if let Some(mem) = lv.target_mem() {
                        if !clocked {
                            lints.push(Lint {
                                message: format!(
                                    "ERROR:memory '{}' written from a combinational process",
                                    m.memory(mem).name
                                ),
                            });
                        }
                        match mem_writer[mem.0 as usize] {
                            Some(prev) if prev != pi => lints.push(Lint {
                                message: format!(
                                    "ERROR:memory '{}' written by two processes",
                                    m.memory(mem).name
                                ),
                            }),
                            _ => mem_writer[mem.0 as usize] = Some(pi),
                        }
                    }
                }
            });
        }
    }

    // Conflicts between continuous and procedural drivers.
    for (i, net) in m.nets.iter().enumerate() {
        let cont = cont_bits[i].iter().any(|&c| c > 0);
        if cont && proc_writer[i].is_some() {
            return Err(RtlError::Check(format!(
                "net '{}' driven by both a continuous assign and a process",
                net.name
            )));
        }
        if cont && net.kind == NetKind::Reg {
            return Err(RtlError::Check(format!(
                "reg '{}' driven by a continuous assign",
                net.name
            )));
        }
        if let Some(&over) = cont_bits[i].iter().find(|&&c| c > 1) {
            let _ = over;
            return Err(RtlError::Check(format!(
                "net '{}' has multiple continuous drivers on the same bit",
                net.name
            )));
        }
    }

    // Promote ERROR-prefixed lints to hard errors.
    if let Some(e) = lints.iter().find(|l| l.message.starts_with("ERROR:")) {
        return Err(RtlError::Check(
            e.message.trim_start_matches("ERROR:").to_string(),
        ));
    }
    Ok(lints)
}

fn width_check_stmt(m: &Module, s: &Stmt) -> Result<(), RtlError> {
    match s {
        Stmt::Assign { lv, rhs, .. } => {
            lv.width(m)?;
            rhs.width(m)?;
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
        } => {
            cond.width(m)?;
            for s in then_s.iter().chain(else_s) {
                width_check_stmt(m, s)?;
            }
        }
        Stmt::Case { sel, arms, default } => {
            let sw = sel.width(m)?;
            for arm in arms {
                for l in &arm.labels {
                    if l.width() > sw {
                        return Err(RtlError::WidthError(format!(
                            "case label {l} wider than selector ({sw} bits)"
                        )));
                    }
                }
                for s in &arm.body {
                    width_check_stmt(m, s)?;
                }
            }
            for s in default {
                width_check_stmt(m, s)?;
            }
        }
    }
    Ok(())
}

fn mark_cont_driver(m: &Module, lv: &LValue, cont_bits: &mut [Vec<u8>]) -> Result<(), RtlError> {
    match lv {
        LValue::Net(n) => {
            for b in cont_bits[n.0 as usize].iter_mut() {
                *b = b.saturating_add(1);
            }
        }
        LValue::Slice { base, hi, lo } => {
            let w = m.net(*base).width;
            if *hi < *lo || *hi >= w {
                return Err(RtlError::WidthError(format!(
                    "assign slice [{hi}:{lo}] out of range for '{}'",
                    m.net(*base).name
                )));
            }
            for b in &mut cont_bits[base.0 as usize][*lo as usize..=*hi as usize] {
                *b = b.saturating_add(1);
            }
        }
        LValue::Index { base, .. } => {
            // A dynamic index may touch any bit; treat as full-net driver.
            for b in cont_bits[base.0 as usize].iter_mut() {
                *b = b.saturating_add(1);
            }
        }
        LValue::Mem { mem, .. } => {
            return Err(RtlError::Check(format!(
                "memory '{}' written by a continuous assign",
                m.memory(*mem).name
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::module::{ContAssign, EdgeKind, NetKind, PortDir, Process, ProcessKind};

    fn base() -> (Module, crate::NetId, crate::NetId) {
        let mut m = Module::new("m");
        let clk = m
            .add_net("clk", 1, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let q = m.add_net("q", 8, NetKind::Reg, None).unwrap();
        (m, clk, q)
    }

    fn clocked(clk: crate::NetId, body: Vec<Stmt>) -> Process {
        Process {
            kind: ProcessKind::Clocked {
                clock: clk,
                edge: EdgeKind::Pos,
            },
            body,
        }
    }

    #[test]
    fn clean_module_passes() {
        let (mut m, clk, q) = base();
        m.processes.push(clocked(
            clk,
            vec![Stmt::Assign {
                lv: LValue::Net(q),
                rhs: Expr::constant(1, 8),
                blocking: false,
            }],
        ));
        assert!(check_module(&m).unwrap().is_empty());
    }

    #[test]
    fn reg_with_cont_assign_is_error() {
        let (mut m, _, q) = base();
        m.assigns.push(ContAssign {
            lv: LValue::Net(q),
            rhs: Expr::constant(0, 8),
        });
        assert!(check_module(&m).is_err());
    }

    #[test]
    fn double_cont_driver_is_error() {
        let (mut m, _, _) = base();
        let w = m.add_net("w", 8, NetKind::Wire, None).unwrap();
        m.assigns.push(ContAssign {
            lv: LValue::Net(w),
            rhs: Expr::constant(0, 8),
        });
        m.assigns.push(ContAssign {
            lv: LValue::Net(w),
            rhs: Expr::constant(1, 8),
        });
        assert!(check_module(&m).is_err());
    }

    #[test]
    fn disjoint_slices_are_fine() {
        let (mut m, _, _) = base();
        let w = m.add_net("w", 8, NetKind::Wire, None).unwrap();
        m.assigns.push(ContAssign {
            lv: LValue::Slice {
                base: w,
                hi: 3,
                lo: 0,
            },
            rhs: Expr::constant(0, 4),
        });
        m.assigns.push(ContAssign {
            lv: LValue::Slice {
                base: w,
                hi: 7,
                lo: 4,
            },
            rhs: Expr::constant(1, 4),
        });
        assert!(check_module(&m).is_ok());
    }

    #[test]
    fn overlapping_slices_are_error() {
        let (mut m, _, _) = base();
        let w = m.add_net("w", 8, NetKind::Wire, None).unwrap();
        m.assigns.push(ContAssign {
            lv: LValue::Slice {
                base: w,
                hi: 4,
                lo: 0,
            },
            rhs: Expr::constant(0, 5),
        });
        m.assigns.push(ContAssign {
            lv: LValue::Slice {
                base: w,
                hi: 7,
                lo: 4,
            },
            rhs: Expr::constant(1, 4),
        });
        assert!(check_module(&m).is_err());
    }

    #[test]
    fn two_processes_writing_one_reg_is_error() {
        let (mut m, clk, q) = base();
        for _ in 0..2 {
            m.processes.push(clocked(
                clk,
                vec![Stmt::Assign {
                    lv: LValue::Net(q),
                    rhs: Expr::constant(0, 8),
                    blocking: false,
                }],
            ));
        }
        assert!(check_module(&m).is_err());
    }

    #[test]
    fn wire_assigned_in_process_is_error() {
        let (mut m, clk, _) = base();
        let w = m.add_net("w", 8, NetKind::Wire, None).unwrap();
        m.processes.push(clocked(
            clk,
            vec![Stmt::Assign {
                lv: LValue::Net(w),
                rhs: Expr::constant(0, 8),
                blocking: false,
            }],
        ));
        assert!(check_module(&m).is_err());
    }

    #[test]
    fn blocking_in_clocked_process_is_lint_only() {
        let (mut m, clk, q) = base();
        m.processes.push(clocked(
            clk,
            vec![Stmt::Assign {
                lv: LValue::Net(q),
                rhs: Expr::constant(0, 8),
                blocking: true,
            }],
        ));
        let lints = check_module(&m).unwrap();
        assert_eq!(lints.len(), 1);
        assert!(lints[0].message.contains("blocking"));
    }

    #[test]
    fn wide_clock_is_error() {
        let mut m = Module::new("m");
        let clk = m
            .add_net("clk", 2, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let q = m.add_net("q", 1, NetKind::Reg, None).unwrap();
        m.processes.push(Process {
            kind: ProcessKind::Clocked {
                clock: clk,
                edge: EdgeKind::Pos,
            },
            body: vec![Stmt::Assign {
                lv: LValue::Net(q),
                rhs: Expr::constant(0, 1),
                blocking: false,
            }],
        });
        assert!(check_module(&m).is_err());
    }

    #[test]
    fn case_label_wider_than_selector_is_error() {
        let (mut m, clk, q) = base();
        let sel = m
            .add_net("sel", 2, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        m.processes.push(clocked(
            clk,
            vec![Stmt::Case {
                sel: Expr::Net(sel),
                arms: vec![crate::module::CaseArm {
                    labels: vec![crate::Value::new(0xff, 8)],
                    body: vec![Stmt::Assign {
                        lv: LValue::Net(q),
                        rhs: Expr::constant(0, 8),
                        blocking: false,
                    }],
                }],
                default: vec![],
            }],
        ));
        assert!(check_module(&m).is_err());
    }
}
