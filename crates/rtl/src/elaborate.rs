//! Design elaboration: flattening a module hierarchy into a single
//! instance-free module.
//!
//! Instances are inlined recursively. Child nets and memories are renamed
//! with an `instance.` prefix (so hierarchical names survive into the
//! simulator, the trace and the scan-chain map), child ports become
//! internal nets, and port connections become continuous assignments.

use crate::module::{ContAssign, Design, LValue, Module, PortDir};
use crate::Expr;
use crate::RtlError;

/// Flattens `top` and everything it instantiates into one module.
///
/// The result has no [`crate::module::Instance`]s: all child logic is
/// inlined with hierarchical net names (`u_aes.state_reg`, ...).
///
/// # Errors
///
/// * [`RtlError::Unknown`] — `top` or an instantiated module is missing,
///   or a connection names a port that does not exist.
/// * [`RtlError::Elab`] — recursive instantiation, duplicate instance
///   names, unconnected input ports, non-lvalue output connections, or
///   parameter overrides (unsupported; parameters are folded per-module
///   by the Verilog frontend).
pub fn elaborate(design: &Design, top: &str) -> Result<Module, RtlError> {
    let mut stack = Vec::new();
    flatten(design, top, &mut stack)
}

fn flatten(design: &Design, name: &str, stack: &mut Vec<String>) -> Result<Module, RtlError> {
    if stack.iter().any(|s| s == name) {
        return Err(RtlError::Elab(format!(
            "recursive instantiation of module '{name}' (path: {})",
            stack.join(" -> ")
        )));
    }
    let template = design
        .module(name)
        .ok_or_else(|| RtlError::Unknown(format!("module '{name}'")))?;

    // Start from the template without its instances.
    let mut flat = Module::new(template.name.clone());
    flat.params = template.params.clone();
    for net in &template.nets {
        flat.add_net(net.name.clone(), net.width, net.kind, net.port)?;
    }
    for mem in &template.memories {
        flat.add_memory(mem.name.clone(), mem.width, mem.depth)?;
    }
    flat.assigns = template.assigns.clone();
    flat.processes = template.processes.clone();

    stack.push(name.to_string());
    let mut seen_inst_names: Vec<&str> = Vec::new();
    for inst in &template.instances {
        if seen_inst_names.contains(&inst.name.as_str()) {
            return Err(RtlError::Elab(format!(
                "duplicate instance name '{}' in module '{name}'",
                inst.name
            )));
        }
        seen_inst_names.push(&inst.name);
        if !inst.params.is_empty() {
            return Err(RtlError::Elab(format!(
                "instance '{}' of '{}' overrides parameters; \
                 parameter overrides must be folded by the frontend",
                inst.name, inst.module
            )));
        }
        let child = flatten(design, &inst.module, stack)?;
        inline_instance(&mut flat, &child, inst.name.as_str(), &inst.conns)?;
    }
    stack.pop();
    Ok(flat)
}

/// Inlines an already-flat `child` into `parent` under instance name
/// `inst_name`, wiring `conns` (`.port(expr)` pairs).
fn inline_instance(
    parent: &mut Module,
    child: &Module,
    inst_name: &str,
    conns: &[(String, Expr)],
) -> Result<(), RtlError> {
    use crate::module::{MemId, NetId};

    // 1. Copy nets/memories with prefixed names; ports lose port status.
    let mut net_map = Vec::with_capacity(child.nets.len());
    for net in &child.nets {
        let id = parent.add_net(
            format!("{inst_name}.{}", net.name),
            net.width,
            net.kind,
            None,
        )?;
        net_map.push(id);
    }
    let mut mem_map = Vec::with_capacity(child.memories.len());
    for mem in &child.memories {
        let id = parent.add_memory(format!("{inst_name}.{}", mem.name), mem.width, mem.depth)?;
        mem_map.push(id);
    }
    let nmap = |n: NetId| net_map[n.0 as usize];
    let mmap = |m: MemId| mem_map[m.0 as usize];

    // 2. Copy assigns and processes with remapped ids.
    for a in &child.assigns {
        let mut a = a.clone();
        a.lv.remap(&nmap, &mmap);
        a.rhs.remap(&nmap, &mmap);
        parent.assigns.push(a);
    }
    for p in &child.processes {
        let mut p = p.clone();
        if let crate::module::ProcessKind::Clocked { clock, .. } = &mut p.kind {
            *clock = nmap(*clock);
        }
        for s in &mut p.body {
            s.remap(&nmap, &mmap);
        }
        parent.processes.push(p);
    }

    // 3. Wire the ports.
    let mut connected = vec![false; child.nets.len()];
    for (port_name, expr) in conns {
        let pid = child.find_net(port_name).ok_or_else(|| {
            RtlError::Unknown(format!("port '{}' on module '{}'", port_name, child.name))
        })?;
        let port = child.net(pid);
        let dir = port.port.ok_or_else(|| {
            RtlError::Elab(format!(
                "net '{}' of module '{}' is not a port",
                port_name, child.name
            ))
        })?;
        connected[pid.0 as usize] = true;
        let inner = nmap(pid);
        match dir {
            PortDir::Input => {
                parent.assigns.push(ContAssign {
                    lv: LValue::Net(inner),
                    rhs: expr.clone(),
                });
            }
            PortDir::Output => {
                let lv = match expr {
                    Expr::Net(n) => LValue::Net(*n),
                    Expr::Slice { base, hi, lo } => LValue::Slice {
                        base: *base,
                        hi: *hi,
                        lo: *lo,
                    },
                    other => {
                        return Err(RtlError::Elab(format!(
                            "output port '{}' of instance '{inst_name}' connected to \
                             non-lvalue expression {other:?}",
                            port_name
                        )))
                    }
                };
                parent.assigns.push(ContAssign {
                    lv,
                    rhs: Expr::Net(inner),
                });
            }
        }
    }

    // 4. Unconnected inputs are an error (they would be X in real
    //    Verilog); unconnected outputs are fine.
    for (i, net) in child.nets.iter().enumerate() {
        if net.port == Some(PortDir::Input) && !connected[i] {
            return Err(RtlError::Elab(format!(
                "input port '{}' of instance '{inst_name}' ({}) is unconnected",
                net.name, child.name
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{EdgeKind, Instance, NetKind, Process, ProcessKind, Stmt};

    /// child: an 8-bit register with enable.
    fn child_module() -> Module {
        let mut m = Module::new("dff8");
        let clk = m
            .add_net("clk", 1, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let d = m
            .add_net("d", 8, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let q = m
            .add_net("q", 8, NetKind::Reg, Some(PortDir::Output))
            .unwrap();
        m.processes.push(Process {
            kind: ProcessKind::Clocked {
                clock: clk,
                edge: EdgeKind::Pos,
            },
            body: vec![Stmt::Assign {
                lv: LValue::Net(q),
                rhs: Expr::Net(d),
                blocking: false,
            }],
        });
        m
    }

    fn parent_design() -> Design {
        let mut top = Module::new("top");
        let clk = top
            .add_net("clk", 1, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let din = top
            .add_net("din", 8, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let dout = top
            .add_net("dout", 8, NetKind::Wire, Some(PortDir::Output))
            .unwrap();
        top.instances.push(Instance {
            name: "u0".into(),
            module: "dff8".into(),
            conns: vec![
                ("clk".into(), Expr::Net(clk)),
                ("d".into(), Expr::Net(din)),
                ("q".into(), Expr::Net(dout)),
            ],
            params: vec![],
        });
        let mut d = Design::new();
        d.add_module(child_module()).unwrap();
        d.add_module(top).unwrap();
        d
    }

    #[test]
    fn flattening_prefixes_child_nets() {
        let d = parent_design();
        let flat = elaborate(&d, "top").unwrap();
        assert!(flat.instances.is_empty());
        assert!(flat.find_net("u0.q").is_some());
        assert!(flat.find_net("u0.clk").is_some());
        // Child port loses port status.
        assert!(flat.net(flat.find_net("u0.q").unwrap()).port.is_none());
        // Top ports remain.
        assert_eq!(flat.ports().count(), 3);
        // One clocked process inlined.
        assert_eq!(flat.processes.len(), 1);
        // 3 port-connection assigns.
        assert_eq!(flat.assigns.len(), 3);
    }

    #[test]
    fn unknown_top_is_an_error() {
        let d = parent_design();
        assert!(matches!(elaborate(&d, "nope"), Err(RtlError::Unknown(_))));
    }

    #[test]
    fn unconnected_input_is_an_error() {
        let mut top = Module::new("top");
        let clk = top
            .add_net("clk", 1, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        top.instances.push(Instance {
            name: "u0".into(),
            module: "dff8".into(),
            conns: vec![("clk".into(), Expr::Net(clk))],
            params: vec![],
        });
        let mut d = Design::new();
        d.add_module(child_module()).unwrap();
        d.add_module(top).unwrap();
        let err = elaborate(&d, "top").unwrap_err();
        assert!(matches!(err, RtlError::Elab(_)), "got {err:?}");
    }

    #[test]
    fn recursive_instantiation_is_an_error() {
        let mut m = Module::new("looper");
        let clk = m
            .add_net("clk", 1, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        m.instances.push(Instance {
            name: "again".into(),
            module: "looper".into(),
            conns: vec![("clk".into(), Expr::Net(clk))],
            params: vec![],
        });
        let mut d = Design::new();
        d.add_module(m).unwrap();
        assert!(matches!(elaborate(&d, "looper"), Err(RtlError::Elab(_))));
    }

    #[test]
    fn nested_hierarchy_gets_dotted_names() {
        // mid wraps dff8; top wraps mid.
        let mut mid = Module::new("mid");
        let clk = mid
            .add_net("clk", 1, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let d_in = mid
            .add_net("d", 8, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let q_out = mid
            .add_net("q", 8, NetKind::Wire, Some(PortDir::Output))
            .unwrap();
        mid.instances.push(Instance {
            name: "inner".into(),
            module: "dff8".into(),
            conns: vec![
                ("clk".into(), Expr::Net(clk)),
                ("d".into(), Expr::Net(d_in)),
                ("q".into(), Expr::Net(q_out)),
            ],
            params: vec![],
        });
        let mut top = Module::new("top");
        let clk = top
            .add_net("clk", 1, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let din = top
            .add_net("din", 8, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let dout = top
            .add_net("dout", 8, NetKind::Wire, Some(PortDir::Output))
            .unwrap();
        top.instances.push(Instance {
            name: "u".into(),
            module: "mid".into(),
            conns: vec![
                ("clk".into(), Expr::Net(clk)),
                ("d".into(), Expr::Net(din)),
                ("q".into(), Expr::Net(dout)),
            ],
            params: vec![],
        });
        let mut design = Design::new();
        design.add_module(child_module()).unwrap();
        design.add_module(mid).unwrap();
        design.add_module(top).unwrap();
        let flat = elaborate(&design, "top").unwrap();
        assert!(flat.find_net("u.inner.q").is_some());
        assert_eq!(flat.state_bits(), 8);
    }

    #[test]
    fn duplicate_instance_names_rejected() {
        let mut top = Module::new("top");
        let clk = top
            .add_net("clk", 1, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let din = top
            .add_net("din", 8, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        for _ in 0..2 {
            top.instances.push(Instance {
                name: "u0".into(),
                module: "dff8".into(),
                conns: vec![("clk".into(), Expr::Net(clk)), ("d".into(), Expr::Net(din))],
                params: vec![],
            });
        }
        let mut d = Design::new();
        d.add_module(child_module()).unwrap();
        d.add_module(top).unwrap();
        assert!(matches!(elaborate(&d, "top"), Err(RtlError::Elab(_))));
    }
}
