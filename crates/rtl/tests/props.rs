//! Property tests over the [`hardsnap_rtl::Value`] bit-vector algebra.
//! Every operation must keep its result inside the declared width —
//! the invariant the simulator, scan codec and symbolic bit-blaster
//! all rely on when exchanging raw `u64` images.

use hardsnap_rtl::{value::mask, Value};
use hardsnap_util::prop::any;
use hardsnap_util::prop_check;

#[test]
fn all_ops_respect_width_mask() {
    prop_check!(
        cases = 256,
        seed = 0x3A5C_0DE5,
        (a in any::<u64>(), b in any::<u64>(), w in 1u32..=64, sh in 0u64..80) => {
            let x = Value::new(a, w);
            let y = Value::new(b, w);
            for v in [
                x.wrapping_add(y),
                x.wrapping_sub(y),
                x.wrapping_mul(y),
                x.and(y),
                x.or(y),
                x.xor(y),
                x.not(),
                x.neg(),
                x.shl(sh),
                x.shr(sh),
            ] {
                assert_eq!(v.width(), w);
                assert_eq!(v.bits() & !mask(w), 0, "bits escaped width {w}: {v:?}");
            }
        }
    );
}

#[test]
fn boolean_algebra_identities() {
    prop_check!(
        cases = 256,
        seed = 0xB001_EA45,
        (a in any::<u64>(), b in any::<u64>(), w in 1u32..=64) => {
            let x = Value::new(a, w);
            let y = Value::new(b, w);
            assert_eq!(x.xor(x), Value::zero(w));
            assert_eq!(x.not().not(), x);
            assert_eq!(x.and(y).or(x.and(y.not())), x, "absorption");
            assert_eq!(x.wrapping_add(y).wrapping_sub(y), x, "add/sub inverse");
            assert_eq!(x.wrapping_add(x.neg()), Value::zero(w), "x + (-x) = 0");
        }
    );
}

#[test]
fn concat_then_slice_recovers_both_halves() {
    prop_check!(
        cases = 256,
        seed = 0xC0CA_75ED,
        (a in any::<u64>(), b in any::<u64>(), wh in 1u32..=32, wl in 1u32..=32) => {
            let hi = Value::new(a, wh);
            let lo = Value::new(b, wl);
            let cat = hi.concat(lo);
            assert_eq!(cat.width(), wh + wl);
            assert_eq!(cat.slice(wl - 1, 0), lo);
            assert_eq!(cat.slice(wh + wl - 1, wl), hi);
        }
    );
}

#[test]
fn set_slice_then_slice_reads_back() {
    prop_check!(
        cases = 256,
        seed = 0x5E7_511CE,
        (a in any::<u64>(), v in any::<u64>(), w in 2u32..=64, lo in 0u32..63) => {
            let lo = lo % (w - 1);
            let hi = lo + ((v as u32) % (w - lo));
            let base = Value::new(a, w);
            let patch = Value::new(v, hi - lo + 1);
            let out = base.set_slice(hi, lo, patch);
            assert_eq!(out.width(), w);
            assert_eq!(out.slice(hi, lo), patch, "patched bits read back");
            if lo > 0 {
                assert_eq!(out.slice(lo - 1, 0), base.slice(lo - 1, 0), "low bits intact");
            }
            if hi + 1 < w {
                assert_eq!(out.slice(w - 1, hi + 1), base.slice(w - 1, hi + 1), "high bits intact");
            }
        }
    );
}

#[test]
fn reductions_match_bit_counts() {
    prop_check!(
        cases = 256,
        seed = 0x4ED_C0DE,
        (a in any::<u64>(), w in 1u32..=64) => {
            let x = Value::new(a, w);
            let bits = x.bits();
            assert_eq!(x.reduce_and().is_true(), bits == mask(w));
            assert_eq!(x.reduce_or().is_true(), bits != 0);
            assert_eq!(x.reduce_xor().is_true(), bits.count_ones() % 2 == 1);
        }
    );
}
