//! # hardsnap-isa
//!
//! HS32: the small embedded ISA used as the firmware substrate of the
//! HardSnap reproduction, with an assembler and a concrete CPU.
//!
//! In the paper the firmware side is ARM code executed by Inception's
//! KLEE-based virtual machine. The reproduction substitutes HS32 (see
//! DESIGN.md §2): a 16-register load/store machine with vectored
//! interrupts, MMIO forwarding through [`MmioBus`] (the VM-boundary
//! crossing), and KLEE-intrinsic-style hypercalls (`sym`, `assert`,
//! `fail`, `chkpt`) that the symbolic engine in `hardsnap-symex`
//! interprets symbolically.
//!
//! ## Example
//!
//! ```
//! use hardsnap_isa::{assemble, Cpu, NoMmio};
//! let program = assemble(r#"
//!     .org 0x100
//!     entry:
//!         movi r1, #6
//!         movi r2, #7
//!         mul  r3, r1, r2
//!         halt
//! "#).unwrap();
//! let mut cpu = Cpu::new(&program);
//! cpu.run(&mut NoMmio, 100).unwrap();
//! assert_eq!(cpu.reg(3), 42);
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod cpu;
pub mod disasm;
pub mod encoding;

pub use asm::{assemble, AsmError, Program};
pub use cpu::{Cpu, CpuFault, Event, MmioBus, NoMmio};
pub use disasm::{disassemble, disassemble_at};
pub use encoding::{AluOp, Cond, DecodeError, Instr, ENTRY_PC, LR, NUM_REGS, SP};
