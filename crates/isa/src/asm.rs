//! Two-pass assembler for HS32.
//!
//! The synthetic firmware corpus (evaluation workloads, planted-bug
//! programs, examples) is written in this assembly dialect. Supported
//! directives: `.org`, `.equ`, `.word`, `.byte`, `.ascii`, `.align`.
//! Pseudo-instructions: `li` (LUI+ORI), `mov`, `j`, `call`, `ret`.
//!
//! # Example
//!
//! ```
//! let prog = hardsnap_isa::assemble(r#"
//!     .org 0x100
//!     entry:
//!         movi r1, #3
//!         movi r2, #4
//!         add  r3, r1, r2
//!         halt
//! "#).unwrap();
//! assert_eq!(prog.entry, 0x100);
//! ```

use crate::encoding::{AluOp, Cond, Instr, ENTRY_PC, LR};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An assembled firmware image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Flat RAM image starting at address 0 (holes are zero).
    pub image: Vec<u8>,
    /// Entry point (address of the first instruction after `.org`, or
    /// [`ENTRY_PC`] if a label named `entry` exists, it wins).
    pub entry: u32,
    /// Label addresses for the analysis engine and tests.
    pub labels: HashMap<String, u32>,
}

impl Program {
    /// Address of a label.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }
}

/// An assembly diagnostic with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

#[derive(Clone, Debug)]
enum Item {
    Instr {
        line: usize,
        mnem: String,
        ops: Vec<String>,
    },
    Word {
        line: usize,
        exprs: Vec<String>,
    },
    Byte {
        line: usize,
        exprs: Vec<String>,
    },
    Ascii {
        text: Vec<u8>,
    },
    Org {
        line: usize,
        addr: String,
    },
    Align {
        line: usize,
        n: String,
    },
    Label(String),
}

/// Assembles HS32 source into a [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line for syntax errors,
/// unknown mnemonics/registers/labels, and out-of-range offsets.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let items = tokenize(src)?;

    // ---- pass 1: layout -----------------------------------------------------
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut equs: HashMap<String, u32> = HashMap::new();
    // First collect .equ (they may be used before definition in pass 1
    // only for sizes, which never depend on equs, so a single prepass
    // suffices).
    for it in &items {
        if let Item::Instr { line, mnem, ops } = it {
            if mnem == ".equ" {
                if ops.len() != 2 {
                    return Err(err(*line, ".equ takes a name and a value"));
                }
                let v = parse_num(&ops[1])
                    .ok_or_else(|| err(*line, format!("bad .equ value '{}'", ops[1])))?;
                equs.insert(ops[0].clone(), v);
            }
        }
    }
    let mut pc: u32 = ENTRY_PC;
    let mut first_org: Option<u32> = None;
    for it in &items {
        match it {
            Item::Label(name) => {
                labels.insert(name.clone(), pc);
            }
            Item::Org { line, addr } => {
                let a = resolve(addr, &labels, &equs)
                    .ok_or_else(|| err(*line, format!("bad .org address '{addr}'")))?;
                pc = a;
                first_org.get_or_insert(a);
            }
            Item::Align { line, n } => {
                let a = resolve(n, &labels, &equs)
                    .ok_or_else(|| err(*line, format!("bad .align '{n}'")))?;
                if a == 0 || !a.is_power_of_two() {
                    return Err(err(*line, ".align requires a power of two"));
                }
                pc = (pc + a - 1) & !(a - 1);
            }
            Item::Word { exprs, .. } => pc += 4 * exprs.len() as u32,
            Item::Byte { exprs, .. } => pc += exprs.len() as u32,
            Item::Ascii { text } => pc += text.len() as u32,
            Item::Instr { mnem, .. } => {
                if mnem == ".equ" {
                    continue;
                }
                pc += if mnem == "li" { 8 } else { 4 };
            }
        }
    }

    // ---- pass 2: encode ------------------------------------------------------
    let mut image = vec![0u8; 0x1_0000];
    let mut max = 0usize;
    let mut pc: u32 = ENTRY_PC;
    let emit = |image: &mut Vec<u8>, max: &mut usize, pc: &mut u32, bytes: &[u8]| {
        let start = *pc as usize;
        if start + bytes.len() > image.len() {
            image.resize(start + bytes.len(), 0);
        }
        image[start..start + bytes.len()].copy_from_slice(bytes);
        *pc += bytes.len() as u32;
        *max = (*max).max(start + bytes.len());
    };
    for it in &items {
        match it {
            Item::Label(_) => {}
            Item::Org { line, addr } => {
                // Pass 1 already resolved this, but re-check instead of
                // unwrapping so a drift between the passes surfaces as a
                // diagnostic, not a panic on untrusted source.
                pc = resolve(addr, &labels, &equs)
                    .ok_or_else(|| err(*line, format!("bad .org address '{addr}'")))?;
            }
            Item::Align { line, n } => {
                let a = resolve(n, &labels, &equs)
                    .ok_or_else(|| err(*line, format!("bad .align '{n}'")))?;
                pc = (pc + a - 1) & !(a - 1);
            }
            Item::Word { line, exprs } => {
                for e in exprs {
                    let v = resolve(e, &labels, &equs)
                        .ok_or_else(|| err(*line, format!("undefined symbol '{e}'")))?;
                    emit(&mut image, &mut max, &mut pc, &v.to_le_bytes());
                }
            }
            Item::Byte { line, exprs } => {
                for e in exprs {
                    let v = resolve(e, &labels, &equs)
                        .ok_or_else(|| err(*line, format!("undefined symbol '{e}'")))?;
                    emit(&mut image, &mut max, &mut pc, &[v as u8]);
                }
            }
            Item::Ascii { text } => {
                emit(&mut image, &mut max, &mut pc, text);
            }
            Item::Instr { line, mnem, ops } => {
                if mnem == ".equ" {
                    continue;
                }
                let words = encode_one(*line, mnem, ops, pc, &labels, &equs)?;
                for w in words {
                    emit(&mut image, &mut max, &mut pc, &w.to_le_bytes());
                }
            }
        }
    }
    image.truncate(max.max(ENTRY_PC as usize + 4));

    let entry = labels
        .get("entry")
        .copied()
        .or(first_org)
        .unwrap_or(ENTRY_PC);
    Ok(Program {
        image,
        entry,
        labels,
    })
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn tokenize(src: &str) -> Result<Vec<Item>, AsmError> {
    let mut out = Vec::new();
    for (ln, raw) in src.lines().enumerate() {
        let line = ln + 1;
        let mut code = raw;
        // .ascii needs the raw string; handle before comment stripping.
        let trimmed = raw.trim();
        if let Some(rest) = trimmed.strip_prefix(".ascii") {
            let rest = rest.trim();
            let inner = rest
                .strip_prefix('"')
                .and_then(|r| r.strip_suffix('"'))
                .ok_or_else(|| err(line, ".ascii requires a double-quoted string"))?;
            let mut text = Vec::new();
            let mut chars = inner.chars();
            while let Some(c) = chars.next() {
                if c == '\\' {
                    match chars.next() {
                        Some('n') => text.push(b'\n'),
                        Some('0') => text.push(0),
                        Some('\\') => text.push(b'\\'),
                        Some('"') => text.push(b'"'),
                        other => {
                            return Err(err(line, format!("bad escape '\\{other:?}'")));
                        }
                    }
                } else {
                    text.push(c as u8);
                }
            }
            out.push(Item::Ascii { text });
            continue;
        }
        if let Some(i) = code.find(';') {
            code = &code[..i];
        }
        if let Some(i) = code.find("//") {
            code = &code[..i];
        }
        let mut code = code.trim();
        if code.is_empty() {
            continue;
        }
        // Labels (possibly followed by code on the same line).
        while let Some(colon) = code.find(':') {
            let (label, rest) = code.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(err(line, format!("bad label '{label}'")));
            }
            out.push(Item::Label(label.to_string()));
            code = rest[1..].trim();
        }
        if code.is_empty() {
            continue;
        }
        let (mnem, rest) = match code.find(char::is_whitespace) {
            Some(i) => code.split_at(i),
            None => (code, ""),
        };
        let mnem = mnem.to_ascii_lowercase();
        let ops: Vec<String> = split_operands(rest.trim());
        match mnem.as_str() {
            ".org" => {
                let a = ops
                    .first()
                    .cloned()
                    .ok_or_else(|| err(line, ".org needs an address"))?;
                out.push(Item::Org { line, addr: a });
            }
            ".align" => {
                let n = ops
                    .first()
                    .cloned()
                    .ok_or_else(|| err(line, ".align needs a value"))?;
                out.push(Item::Align { line, n });
            }
            ".word" => out.push(Item::Word { line, exprs: ops }),
            ".byte" => out.push(Item::Byte { line, exprs: ops }),
            _ => out.push(Item::Instr { line, mnem, ops }),
        }
    }
    Ok(out)
}

/// Splits "r1, [r2, #4]" into ["r1", "[r2, #4]"] (bracket-aware).
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_string());
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn parse_num(s: &str) -> Option<u32> {
    let s = s.trim().trim_start_matches('#');
    let (neg, s) = match s.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, s),
    };
    let v = if let Some(h) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(h, 16).ok()?
    } else if let Some(b) = s.strip_prefix("0b") {
        u32::from_str_radix(b, 2).ok()?
    } else {
        s.parse::<u32>().ok()?
    };
    Some(if neg { v.wrapping_neg() } else { v })
}

fn resolve(s: &str, labels: &HashMap<String, u32>, equs: &HashMap<String, u32>) -> Option<u32> {
    let t = s.trim().trim_start_matches('#');
    parse_num(t)
        .or_else(|| equs.get(t).copied())
        .or_else(|| labels.get(t).copied())
}

fn parse_reg(line: usize, s: &str) -> Result<u8, AsmError> {
    let t = s.trim().to_ascii_lowercase();
    match t.as_str() {
        "sp" => return Ok(crate::encoding::SP),
        "lr" => return Ok(LR),
        "zero" => return Ok(0),
        _ => {}
    }
    let n = t
        .strip_prefix('r')
        .and_then(|r| r.parse::<u8>().ok())
        .filter(|&n| n < 16)
        .ok_or_else(|| err(line, format!("bad register '{s}'")))?;
    Ok(n)
}

/// Parses "[rbase]" or "[rbase, #off]".
fn parse_mem(
    line: usize,
    s: &str,
    labels: &HashMap<String, u32>,
    equs: &HashMap<String, u32>,
) -> Result<(u8, i16), AsmError> {
    let inner = s
        .trim()
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected memory operand, got '{s}'")))?;
    let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
    let base = parse_reg(line, parts[0])?;
    let off = if parts.len() > 1 {
        let v = resolve(parts[1], labels, equs)
            .ok_or_else(|| err(line, format!("bad offset '{}'", parts[1])))?;
        let v = v as i32;
        if !(-32768..=32767).contains(&v) {
            return Err(err(line, format!("offset {v} out of i16 range")));
        }
        v as i16
    } else {
        0
    };
    Ok((base, off))
}

fn branch_off(line: usize, target: u32, pc: u32) -> Result<i16, AsmError> {
    let off = target as i64 - (pc as i64 + 4);
    if off % 4 != 0 {
        return Err(err(line, "branch target is not 4-aligned"));
    }
    if !(-32768..=32767).contains(&off) {
        return Err(err(line, format!("branch offset {off} out of range")));
    }
    Ok(off as i16)
}

#[allow(clippy::too_many_lines)]
fn encode_one(
    line: usize,
    mnem: &str,
    ops: &[String],
    pc: u32,
    labels: &HashMap<String, u32>,
    equs: &HashMap<String, u32>,
) -> Result<Vec<u32>, AsmError> {
    let want = |n: usize| -> Result<(), AsmError> {
        if ops.len() != n {
            Err(err(
                line,
                format!("'{mnem}' expects {n} operands, got {}", ops.len()),
            ))
        } else {
            Ok(())
        }
    };
    let reg = |i: usize| parse_reg(line, &ops[i]);
    let val = |i: usize| {
        resolve(&ops[i], labels, equs)
            .ok_or_else(|| err(line, format!("undefined symbol '{}'", ops[i])))
    };
    let imm16s = |i: usize| -> Result<u32, AsmError> {
        let v = val(i)? as i32;
        if !(-32768..=32767).contains(&v) {
            return Err(err(
                line,
                format!("immediate {v} out of signed 16-bit range"),
            ));
        }
        Ok(v as u32)
    };
    let imm16u = |i: usize| -> Result<u32, AsmError> {
        let v = val(i)?;
        if v > 0xffff {
            return Err(err(line, format!("immediate {v:#x} out of 16-bit range")));
        }
        Ok(v)
    };

    let alu3 = |op: AluOp, ops: &[String]| -> Result<Vec<u32>, AsmError> {
        if ops.len() != 3 {
            return Err(err(line, "expects rd, rs1, rs2"));
        }
        Ok(vec![Instr::Alu {
            op,
            rd: parse_reg(line, &ops[0])?,
            rs1: parse_reg(line, &ops[1])?,
            rs2: parse_reg(line, &ops[2])?,
        }
        .encode()])
    };
    let alui = |op: AluOp, signed: bool| -> Result<Vec<u32>, AsmError> {
        want(3)?;
        let imm = if signed { imm16s(2)? } else { imm16u(2)? };
        Ok(vec![Instr::AluImm {
            op,
            rd: reg(0)?,
            rs1: reg(1)?,
            imm,
        }
        .encode()])
    };
    let branch = |cond: Cond| -> Result<Vec<u32>, AsmError> {
        want(3)?;
        let target = val(2)?;
        Ok(vec![Instr::Branch {
            cond,
            rs1: reg(0)?,
            rs2: reg(1)?,
            off: branch_off(line, target, pc)?,
        }
        .encode()])
    };

    match mnem {
        "nop" => Ok(vec![Instr::Nop.encode()]),
        "halt" => Ok(vec![Instr::Halt.encode()]),
        "add" => alu3(AluOp::Add, ops),
        "sub" => alu3(AluOp::Sub, ops),
        "and" => alu3(AluOp::And, ops),
        "or" => alu3(AluOp::Or, ops),
        "xor" => alu3(AluOp::Xor, ops),
        "shl" => alu3(AluOp::Shl, ops),
        "shr" => alu3(AluOp::Shr, ops),
        "sra" => alu3(AluOp::Sra, ops),
        "mul" => alu3(AluOp::Mul, ops),
        "addi" => alui(AluOp::Add, true),
        "subi" => alui(AluOp::Sub, true),
        "andi" => alui(AluOp::And, false),
        "ori" => alui(AluOp::Or, false),
        "xori" => alui(AluOp::Xor, false),
        "shli" => alui(AluOp::Shl, false),
        "shri" => alui(AluOp::Shr, false),
        "srai" => alui(AluOp::Sra, false),
        "muli" => alui(AluOp::Mul, true),
        "movi" => {
            want(2)?;
            let v = val(1)? as i32;
            if !(-32768..=32767).contains(&v) {
                return Err(err(
                    line,
                    format!("movi immediate {v} out of range; use li"),
                ));
            }
            Ok(vec![Instr::AluImm {
                op: AluOp::Add,
                rd: reg(0)?,
                rs1: 0,
                imm: v as u32,
            }
            .encode()])
        }
        "li" => {
            want(2)?;
            let v = val(1)?;
            let rd = reg(0)?;
            Ok(vec![
                Instr::Lui {
                    rd,
                    imm: (v >> 16) as u16,
                }
                .encode(),
                Instr::AluImm {
                    op: AluOp::Or,
                    rd,
                    rs1: rd,
                    imm: v & 0xffff,
                }
                .encode(),
            ])
        }
        "mov" => {
            want(2)?;
            Ok(vec![Instr::Alu {
                op: AluOp::Add,
                rd: reg(0)?,
                rs1: reg(1)?,
                rs2: 0,
            }
            .encode()])
        }
        "lui" => {
            want(2)?;
            Ok(vec![Instr::Lui {
                rd: reg(0)?,
                imm: imm16u(1)? as u16,
            }
            .encode()])
        }
        "ldw" | "ldb" => {
            want(2)?;
            let (rs1, off) = parse_mem(line, &ops[1], labels, equs)?;
            let rd = reg(0)?;
            Ok(vec![if mnem == "ldw" {
                Instr::Ldw { rd, rs1, off }.encode()
            } else {
                Instr::Ldb { rd, rs1, off }.encode()
            }])
        }
        "stw" | "stb" => {
            want(2)?;
            let (rs1, off) = parse_mem(line, &ops[1], labels, equs)?;
            let rs2 = reg(0)?;
            Ok(vec![if mnem == "stw" {
                Instr::Stw { rs2, rs1, off }.encode()
            } else {
                Instr::Stb { rs2, rs1, off }.encode()
            }])
        }
        "beq" => branch(Cond::Eq),
        "bne" => branch(Cond::Ne),
        "blt" => branch(Cond::Lt),
        "bge" => branch(Cond::Ge),
        "bltu" => branch(Cond::Ltu),
        "bgeu" => branch(Cond::Geu),
        "jal" | "call" => {
            want(1)?;
            let target = val(0)?;
            let off = target as i64 - (pc as i64 + 4);
            if !(-(1 << 21)..(1 << 21)).contains(&off) {
                return Err(err(line, format!("jal offset {off} out of range")));
            }
            Ok(vec![Instr::Jal {
                rd: LR,
                off: off as i32,
            }
            .encode()])
        }
        "j" => {
            want(1)?;
            let target = val(0)?;
            let off = target as i64 - (pc as i64 + 4);
            if !(-(1 << 21)..(1 << 21)).contains(&off) {
                return Err(err(line, format!("jump offset {off} out of range")));
            }
            Ok(vec![Instr::Jal {
                rd: 0,
                off: off as i32,
            }
            .encode()])
        }
        "jalr" => {
            want(1)?;
            Ok(vec![Instr::Jalr {
                rd: LR,
                rs1: reg(0)?,
                off: 0,
            }
            .encode()])
        }
        "jr" => {
            want(1)?;
            Ok(vec![Instr::Jalr {
                rd: 0,
                rs1: reg(0)?,
                off: 0,
            }
            .encode()])
        }
        "ret" => Ok(vec![Instr::Jalr {
            rd: 0,
            rs1: LR,
            off: 0,
        }
        .encode()]),
        "iret" => Ok(vec![Instr::Iret.encode()]),
        "cli" => Ok(vec![Instr::Cli.encode()]),
        "sei" => Ok(vec![Instr::Sei.encode()]),
        "sym" => {
            want(2)?;
            Ok(vec![Instr::Sym {
                rd: reg(0)?,
                id: imm16u(1)? as u16,
            }
            .encode()])
        }
        "assert" => {
            want(1)?;
            Ok(vec![Instr::Assert { rs1: reg(0)? }.encode()])
        }
        "fail" => Ok(vec![Instr::Fail.encode()]),
        "putc" => {
            want(1)?;
            Ok(vec![Instr::Putc { rs1: reg(0)? }.encode()])
        }
        "chkpt" => {
            want(1)?;
            Ok(vec![Instr::Chkpt {
                id: imm16u(0)? as u16,
            }
            .encode()])
        }
        other => Err(err(line, format!("unknown mnemonic '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_program_assembles() {
        let p = assemble(
            r#"
            .org 0x100
            entry:
                movi r1, #3
                addi r1, r1, #4
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.entry, 0x100);
        let w0 = u32::from_le_bytes(p.image[0x100..0x104].try_into().unwrap());
        assert_eq!(
            Instr::decode(w0).unwrap(),
            Instr::AluImm {
                op: AluOp::Add,
                rd: 1,
                rs1: 0,
                imm: 3
            }
        );
    }

    #[test]
    fn labels_and_branches_resolve() {
        let p = assemble(
            r#"
            .org 0x100
            entry:
                movi r1, #0
            loop:
                addi r1, r1, #1
                movi r2, #10
                bne r1, r2, loop
                halt
            "#,
        )
        .unwrap();
        let bne_addr = 0x100 + 12;
        let w = u32::from_le_bytes(p.image[bne_addr..bne_addr + 4].try_into().unwrap());
        match Instr::decode(w).unwrap() {
            Instr::Branch {
                cond: Cond::Ne,
                off,
                ..
            } => {
                assert_eq!(off, -12); // back to `loop`
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn li_expands_to_two_words() {
        let p = assemble(
            r#"
            .org 0x100
            entry:
                li r5, 0x40001234
                halt
            "#,
        )
        .unwrap();
        let w0 = u32::from_le_bytes(p.image[0x100..0x104].try_into().unwrap());
        let w1 = u32::from_le_bytes(p.image[0x104..0x108].try_into().unwrap());
        assert_eq!(
            Instr::decode(w0).unwrap(),
            Instr::Lui { rd: 5, imm: 0x4000 }
        );
        assert_eq!(
            Instr::decode(w1).unwrap(),
            Instr::AluImm {
                op: AluOp::Or,
                rd: 5,
                rs1: 5,
                imm: 0x1234
            }
        );
    }

    #[test]
    fn equ_and_memory_operands() {
        let p = assemble(
            r#"
            .equ UART, 0x40000000
            .org 0x100
            entry:
                li r1, UART
                ldw r2, [r1, #8]
                stw r2, [r1]
                halt
            "#,
        )
        .unwrap();
        let w = u32::from_le_bytes(p.image[0x108..0x10c].try_into().unwrap());
        assert_eq!(
            Instr::decode(w).unwrap(),
            Instr::Ldw {
                rd: 2,
                rs1: 1,
                off: 8
            }
        );
    }

    #[test]
    fn vector_table_with_label_words() {
        let p = assemble(
            r#"
            .org 0x0
            .word 0, isr, 0, 0
            .org 0x100
            entry:
                halt
            isr:
                iret
            "#,
        )
        .unwrap();
        let vec1 = u32::from_le_bytes(p.image[4..8].try_into().unwrap());
        assert_eq!(vec1, p.label("isr").unwrap());
    }

    #[test]
    fn ascii_and_byte_data() {
        let p = assemble(
            r#"
            .org 0x200
            msg:
            .ascii "hi\n\0"
            .byte 1, 2, 0xff
            .org 0x100
            entry: halt
            "#,
        )
        .unwrap();
        assert_eq!(&p.image[0x200..0x204], b"hi\n\0");
        assert_eq!(&p.image[0x204..0x207], &[1, 2, 0xff]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("entry:\n  bogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
        let e = assemble(".org 0x100\nentry:\n  movi r99, #1\n").unwrap_err();
        assert!(e.message.contains("register"));
        let e = assemble(".org 0x100\nentry:\n  movi r1, #100000\n").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn branch_out_of_range_is_detected() {
        let e = assemble(
            r#"
            .org 0x100
            entry:
                beq r1, r2, far
            .org 0x20000
            far: halt
            "#,
        )
        .unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn register_aliases() {
        let p = assemble(".org 0x100\nentry:\n  mov sp, zero\n  jalr lr\n  ret\n  halt\n").unwrap();
        let w = u32::from_le_bytes(p.image[0x100..0x104].try_into().unwrap());
        assert_eq!(
            Instr::decode(w).unwrap(),
            Instr::Alu {
                op: AluOp::Add,
                rd: 13,
                rs1: 0,
                rs2: 0
            }
        );
    }

    #[test]
    fn align_pads_correctly() {
        let p = assemble(".org 0x101\n.align 4\nentry:\n  halt\n").unwrap();
        assert_eq!(p.label("entry").unwrap(), 0x104);
        let p2 = assemble(".org 0x102\n.align 8\nx:\n  halt\n").unwrap();
        assert_eq!(p2.label("x").unwrap(), 0x108);
    }
}
