//! HS32 disassembler: decoded instructions back to assembler syntax.
//!
//! Used by diagnostics (bug reports print the faulting instruction) and
//! round-trip tested against the assembler.

use crate::encoding::{AluOp, Cond, Instr};

fn reg(r: u8) -> String {
    match r {
        13 => "sp".to_string(),
        14 => "lr".to_string(),
        _ => format!("r{r}"),
    }
}

fn alu_mnemonic(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
        AluOp::Sra => "sra",
        AluOp::Mul => "mul",
    }
}

fn cond_mnemonic(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "beq",
        Cond::Ne => "bne",
        Cond::Lt => "blt",
        Cond::Ge => "bge",
        Cond::Ltu => "bltu",
        Cond::Geu => "bgeu",
    }
}

/// Renders one decoded instruction in assembler syntax. Branch and jump
/// targets are shown as absolute addresses computed against `pc`.
pub fn disassemble(instr: Instr, pc: u32) -> String {
    match instr {
        Instr::Nop => "nop".into(),
        Instr::Halt => "halt".into(),
        Instr::Alu { op, rd, rs1, rs2 } => {
            format!(
                "{} {}, {}, {}",
                alu_mnemonic(op),
                reg(rd),
                reg(rs1),
                reg(rs2)
            )
        }
        Instr::AluImm { op, rd, rs1, imm } => {
            let signed = crate::encoding::imm_is_signed(op);
            if signed {
                format!(
                    "{}i {}, {}, #{}",
                    alu_mnemonic(op),
                    reg(rd),
                    reg(rs1),
                    imm as i32
                )
            } else {
                format!(
                    "{}i {}, {}, #{:#x}",
                    alu_mnemonic(op),
                    reg(rd),
                    reg(rs1),
                    imm
                )
            }
        }
        Instr::Lui { rd, imm } => format!("lui {}, #{imm:#x}", reg(rd)),
        Instr::Ldw { rd, rs1, off } => format!("ldw {}, [{}, #{off}]", reg(rd), reg(rs1)),
        Instr::Stw { rs2, rs1, off } => format!("stw {}, [{}, #{off}]", reg(rs2), reg(rs1)),
        Instr::Ldb { rd, rs1, off } => format!("ldb {}, [{}, #{off}]", reg(rd), reg(rs1)),
        Instr::Stb { rs2, rs1, off } => format!("stb {}, [{}, #{off}]", reg(rs2), reg(rs1)),
        Instr::Branch {
            cond,
            rs1,
            rs2,
            off,
        } => {
            let target = pc.wrapping_add(4).wrapping_add(off as i32 as u32);
            format!(
                "{} {}, {}, {target:#x}",
                cond_mnemonic(cond),
                reg(rs1),
                reg(rs2)
            )
        }
        Instr::Jal { rd, off } => {
            let target = pc.wrapping_add(4).wrapping_add(off as u32);
            if rd == 0 {
                format!("j {target:#x}")
            } else {
                format!("jal {target:#x}")
            }
        }
        Instr::Jalr { rd, rs1, off } => {
            if rd == 0 && rs1 == crate::encoding::LR && off == 0 {
                "ret".into()
            } else {
                format!("jalr {}, {}, #{off}", reg(rd), reg(rs1))
            }
        }
        Instr::Iret => "iret".into(),
        Instr::Cli => "cli".into(),
        Instr::Sei => "sei".into(),
        Instr::Sym { rd, id } => format!("sym {}, #{id}", reg(rd)),
        Instr::Assert { rs1 } => format!("assert {}", reg(rs1)),
        Instr::Fail => "fail".into(),
        Instr::Putc { rs1 } => format!("putc {}", reg(rs1)),
        Instr::Chkpt { id } => format!("chkpt #{id}"),
    }
}

/// Disassembles the word at `pc` from a firmware image (little-endian),
/// or a placeholder for unmapped/undecodable words.
pub fn disassemble_at(image: &[u8], pc: u32) -> String {
    let a = pc as usize;
    let Some(bytes) = image.get(a..a + 4) else {
        return format!("<pc {pc:#010x} outside image>");
    };
    let word = u32::from_le_bytes(bytes.try_into().unwrap());
    match Instr::decode(word) {
        Ok(i) => disassemble(i, pc),
        Err(_) => format!("<illegal {word:#010x}>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    #[test]
    fn disassembly_matches_source_forms() {
        let cases = [
            ("add r1, r2, r3", "add r1, r2, r3"),
            ("addi r1, r2, #-4", "addi r1, r2, #-4"),
            ("andi r1, r1, #0xff", "andi r1, r1, #0xff"),
            ("ldw r2, [sp, #8]", "ldw r2, [sp, #8]"),
            ("stb r2, [r4, #-1]", "stb r2, [r4, #-1]"),
            ("lui r7, #0x4000", "lui r7, #0x4000"),
            ("ret", "ret"),
            ("sym r5, #3", "sym r5, #3"),
            ("assert r6", "assert r6"),
            ("fail", "fail"),
            ("halt", "halt"),
        ];
        for (src, expect) in cases {
            let p = assemble(&format!(".org 0x100\nentry:\n  {src}\n  halt\n")).unwrap();
            let got = disassemble_at(&p.image, 0x100);
            assert_eq!(got, expect, "source: {src}");
        }
    }

    #[test]
    fn branch_targets_are_absolute() {
        let p = assemble(".org 0x100\nentry:\n  beq r1, r2, done\n  nop\ndone:\n  halt\n").unwrap();
        assert_eq!(disassemble_at(&p.image, 0x100), "beq r1, r2, 0x108");
        let p = assemble(".org 0x100\nentry:\n  j entry\n").unwrap();
        assert_eq!(disassemble_at(&p.image, 0x100), "j 0x100");
    }

    #[test]
    fn illegal_and_out_of_range_are_reported() {
        let image = 0xFFFF_FFFFu32.to_le_bytes().to_vec();
        assert!(disassemble_at(&image, 0).starts_with("<illegal"));
        assert!(disassemble_at(&image, 100).contains("outside image"));
    }

    #[test]
    fn every_assembled_instruction_disassembles() {
        // Round-trip: assemble a program exercising every mnemonic and
        // check that each word disassembles without a placeholder.
        let src = "
            .org 0x100
            entry:
                nop
                add r1, r2, r3
                sub r1, r2, r3
                and r1, r2, r3
                or r1, r2, r3
                xor r1, r2, r3
                shl r1, r2, r3
                shr r1, r2, r3
                sra r1, r2, r3
                mul r1, r2, r3
                addi r1, r2, #5
                movi r1, #7
                lui r1, #2
                ldw r1, [r2]
                stw r1, [r2]
                ldb r1, [r2]
                stb r1, [r2]
                beq r1, r2, entry
                bne r1, r2, entry
                blt r1, r2, entry
                bge r1, r2, entry
                bltu r1, r2, entry
                bgeu r1, r2, entry
                jal entry
                jalr r4
                ret
                iret
                cli
                sei
                sym r1, #0
                assert r1
                putc r1
                chkpt #2
                fail
                halt
        ";
        let p = assemble(src).unwrap();
        let mut pc = 0x100;
        while (pc as usize) + 4 <= p.image.len() {
            let d = disassemble_at(&p.image, pc);
            assert!(!d.starts_with('<'), "pc {pc:#x}: {d}");
            if d == "halt" {
                break;
            }
            pc += 4;
        }
    }
}
