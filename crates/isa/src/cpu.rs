//! Concrete HS32 CPU with MMIO forwarding and vectored interrupts.
//!
//! The CPU owns the RAM region; loads/stores that fall into the MMIO
//! window are forwarded through the [`MmioBus`] trait — in HardSnap
//! terms, they cross the virtual-machine boundary into the hardware
//! target. Interrupts are level-triggered per line, vectored through a
//! table at [`crate::encoding::VECTOR_BASE`], and atomic (no nesting),
//! matching Inception's interrupt handling.

use crate::encoding::{AluOp, Cond, Instr, ENTRY_PC, NUM_IRQ_LINES, NUM_REGS, VECTOR_BASE};
use crate::Program;
use hardsnap_bus::{BusError, MemoryMap, RegionKind};
use std::fmt;

/// A fault detected while executing firmware (the detectors HardSnap
/// inherits from KLEE, plus the hypercall-driven ones).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CpuFault {
    /// Access to an address outside every mapped region.
    Unmapped {
        /// Faulting address.
        addr: u32,
        /// PC of the faulting instruction.
        pc: u32,
    },
    /// Misaligned word access.
    Unaligned {
        /// Faulting address.
        addr: u32,
        /// PC of the faulting instruction.
        pc: u32,
    },
    /// `assert` hypercall failed.
    AssertFailed {
        /// PC of the assert.
        pc: u32,
    },
    /// `fail` hypercall executed (a planted bug detonated).
    FailHit {
        /// PC of the fail.
        pc: u32,
    },
    /// The instruction word did not decode.
    IllegalInstruction {
        /// PC of the bad word.
        pc: u32,
        /// The word.
        word: u32,
    },
    /// A forwarded MMIO transaction failed on the hardware side.
    Bus {
        /// PC of the access.
        pc: u32,
        /// The bus error.
        error: BusError,
    },
    /// Byte access to the MMIO window (peripherals are word-addressed).
    MmioByteAccess {
        /// Faulting address.
        addr: u32,
        /// PC of the access.
        pc: u32,
    },
}

impl fmt::Display for CpuFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuFault::Unmapped { addr, pc } => {
                write!(f, "unmapped access to {addr:#010x} at pc {pc:#010x}")
            }
            CpuFault::Unaligned { addr, pc } => {
                write!(f, "unaligned access to {addr:#010x} at pc {pc:#010x}")
            }
            CpuFault::AssertFailed { pc } => write!(f, "assertion failed at pc {pc:#010x}"),
            CpuFault::FailHit { pc } => write!(f, "fail marker hit at pc {pc:#010x}"),
            CpuFault::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#010x}")
            }
            CpuFault::Bus { pc, error } => write!(f, "bus fault at pc {pc:#010x}: {error}"),
            CpuFault::MmioByteAccess { addr, pc } => {
                write!(f, "byte access to mmio {addr:#010x} at pc {pc:#010x}")
            }
        }
    }
}

impl std::error::Error for CpuFault {}

/// The hardware side of MMIO forwarding (implemented by the HardSnap
/// targets; a trivial implementation suffices for pure-software tests).
pub trait MmioBus {
    /// 32-bit read at `addr`.
    ///
    /// # Errors
    ///
    /// Forwards the hardware target's [`BusError`].
    fn mmio_read(&mut self, addr: u32) -> Result<u32, BusError>;

    /// 32-bit write at `addr`.
    ///
    /// # Errors
    ///
    /// Forwards the hardware target's [`BusError`].
    fn mmio_write(&mut self, addr: u32, data: u32) -> Result<(), BusError>;
}

/// A no-hardware bus: every MMIO access faults. Useful for pure software
/// tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoMmio;

impl MmioBus for NoMmio {
    fn mmio_read(&mut self, addr: u32) -> Result<u32, BusError> {
        Err(BusError::SlaveError { addr })
    }
    fn mmio_write(&mut self, addr: u32, _data: u32) -> Result<(), BusError> {
        Err(BusError::SlaveError { addr })
    }
}

/// Observable per-step events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// Nothing notable.
    None,
    /// CPU executed `halt`.
    Halted,
    /// Debug console output.
    Putc(u8),
    /// Checkpoint hint with its id.
    Checkpoint(u16),
    /// An interrupt was taken on the given line.
    IrqEntered(u32),
}

/// The complete software state of the CPU — the `S_sw` of the paper's
/// state representation (PC, registers/stack, global memory).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cpu {
    /// General registers (`r0` reads as zero).
    pub regs: [u32; NUM_REGS],
    /// Program counter.
    pub pc: u32,
    /// Saved PC for `iret`.
    pub epc: u32,
    /// Global interrupt enable.
    pub irq_enabled: bool,
    /// Currently servicing an interrupt (interrupts are atomic).
    pub in_isr: bool,
    /// CPU has executed `halt`.
    pub halted: bool,
    /// Retired instruction count.
    pub instret: u64,
    /// RAM contents.
    pub ram: Vec<u8>,
    /// Input tape consumed by `sym` in concrete execution.
    pub input_tape: Vec<u32>,
    /// Next input-tape position.
    pub tape_pos: usize,
    /// Memory map (RAM/MMIO routing).
    pub map: MemoryMap,
}

impl Cpu {
    /// Creates a CPU with the default SoC memory map and a zeroed RAM,
    /// loads `program`, and sets the PC to its entry point.
    pub fn new(program: &Program) -> Self {
        let map = MemoryMap::default_soc();
        let ram_size = map
            .iter()
            .find(|r| r.kind == RegionKind::Ram)
            .map(|r| r.size as usize)
            .unwrap_or(0x1_0000);
        let mut ram = vec![0u8; ram_size];
        let n = program.image.len().min(ram.len());
        ram[..n].copy_from_slice(&program.image[..n]);
        Cpu {
            regs: [0; NUM_REGS],
            pc: program.entry,
            epc: 0,
            irq_enabled: false,
            in_isr: false,
            halted: false,
            instret: 0,
            ram,
            input_tape: Vec::new(),
            tape_pos: 0,
            map,
        }
    }

    /// Replaces the input tape consumed by `sym` (fuzzing input).
    pub fn set_input_tape(&mut self, tape: Vec<u32>) {
        self.input_tape = tape;
        self.tape_pos = 0;
    }

    /// Reads a register (`r0` is zero).
    #[inline]
    pub fn reg(&self, r: u8) -> u32 {
        if r == 0 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    /// Writes a register (`r0` writes are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: u8, v: u32) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    /// Reads a RAM word without routing (helper for tests/loaders).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside RAM.
    pub fn ram_word(&self, addr: u32) -> u32 {
        let a = addr as usize;
        u32::from_le_bytes(self.ram[a..a + 4].try_into().unwrap())
    }

    /// Offers interrupt lines to the CPU; takes the lowest asserted line
    /// if interrupts are enabled and none is in service. Returns the
    /// taken line.
    pub fn take_irq(&mut self, lines: u32) -> Option<u32> {
        if !self.irq_enabled || self.in_isr || self.halted || lines == 0 {
            return None;
        }
        let line = lines.trailing_zeros();
        if line >= NUM_IRQ_LINES {
            return None;
        }
        let vec_addr = VECTOR_BASE + 4 * line;
        let handler = self.ram_word(vec_addr);
        if handler == 0 {
            return None; // unpopulated vector: leave the line pending
        }
        self.epc = self.pc;
        self.pc = handler;
        self.in_isr = true;
        Some(line)
    }

    fn load32(&mut self, bus: &mut dyn MmioBus, addr: u32) -> Result<u32, CpuFault> {
        let pc = self.pc;
        if addr % 4 != 0 {
            return Err(CpuFault::Unaligned { addr, pc });
        }
        match self.map.kind_of(addr) {
            Some(RegionKind::Ram) | Some(RegionKind::Rom) => {
                let a = addr as usize;
                Ok(u32::from_le_bytes(self.ram[a..a + 4].try_into().unwrap()))
            }
            Some(RegionKind::Mmio) => bus
                .mmio_read(addr)
                .map_err(|error| CpuFault::Bus { pc, error }),
            None => Err(CpuFault::Unmapped { addr, pc }),
        }
    }

    fn store32(&mut self, bus: &mut dyn MmioBus, addr: u32, v: u32) -> Result<(), CpuFault> {
        let pc = self.pc;
        if addr % 4 != 0 {
            return Err(CpuFault::Unaligned { addr, pc });
        }
        match self.map.kind_of(addr) {
            Some(RegionKind::Ram) => {
                let a = addr as usize;
                self.ram[a..a + 4].copy_from_slice(&v.to_le_bytes());
                Ok(())
            }
            Some(RegionKind::Rom) => Err(CpuFault::Unmapped { addr, pc }),
            Some(RegionKind::Mmio) => bus
                .mmio_write(addr, v)
                .map_err(|error| CpuFault::Bus { pc, error }),
            None => Err(CpuFault::Unmapped { addr, pc }),
        }
    }

    fn load8(&mut self, addr: u32) -> Result<u8, CpuFault> {
        let pc = self.pc;
        match self.map.kind_of(addr) {
            Some(RegionKind::Ram) | Some(RegionKind::Rom) => Ok(self.ram[addr as usize]),
            Some(RegionKind::Mmio) => Err(CpuFault::MmioByteAccess { addr, pc }),
            None => Err(CpuFault::Unmapped { addr, pc }),
        }
    }

    fn store8(&mut self, addr: u32, v: u8) -> Result<(), CpuFault> {
        let pc = self.pc;
        match self.map.kind_of(addr) {
            Some(RegionKind::Ram) => {
                self.ram[addr as usize] = v;
                Ok(())
            }
            Some(RegionKind::Rom) => Err(CpuFault::Unmapped { addr, pc }),
            Some(RegionKind::Mmio) => Err(CpuFault::MmioByteAccess { addr, pc }),
            None => Err(CpuFault::Unmapped { addr, pc }),
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns the detected [`CpuFault`], leaving the CPU state at the
    /// faulting instruction for diagnosis.
    pub fn step(&mut self, bus: &mut dyn MmioBus) -> Result<Event, CpuFault> {
        if self.halted {
            return Ok(Event::Halted);
        }
        let pc = self.pc;
        if pc % 4 != 0 {
            return Err(CpuFault::Unaligned { addr: pc, pc });
        }
        if self.map.kind_of(pc) != Some(RegionKind::Ram) {
            return Err(CpuFault::Unmapped { addr: pc, pc });
        }
        let word = self.ram_word(pc);
        let instr =
            Instr::decode(word).map_err(|e| CpuFault::IllegalInstruction { pc, word: e.word })?;
        let mut next_pc = pc.wrapping_add(4);
        let mut event = Event::None;
        match instr {
            Instr::Nop | Instr::Chkpt { .. } => {
                if let Instr::Chkpt { id } = instr {
                    event = Event::Checkpoint(id);
                }
            }
            Instr::Halt => {
                self.halted = true;
                event = Event::Halted;
            }
            Instr::Alu { op, rd, rs1, rs2 } => {
                let v = alu(op, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let v = alu(op, self.reg(rs1), imm);
                self.set_reg(rd, v);
            }
            Instr::Lui { rd, imm } => self.set_reg(rd, (imm as u32) << 16),
            Instr::Ldw { rd, rs1, off } => {
                let addr = self.reg(rs1).wrapping_add(off as i32 as u32);
                let v = self.load32(bus, addr)?;
                self.set_reg(rd, v);
            }
            Instr::Stw { rs2, rs1, off } => {
                let addr = self.reg(rs1).wrapping_add(off as i32 as u32);
                let v = self.reg(rs2);
                self.store32(bus, addr, v)?;
            }
            Instr::Ldb { rd, rs1, off } => {
                let addr = self.reg(rs1).wrapping_add(off as i32 as u32);
                let v = self.load8(addr)?;
                self.set_reg(rd, v as u32);
            }
            Instr::Stb { rs2, rs1, off } => {
                let addr = self.reg(rs1).wrapping_add(off as i32 as u32);
                let v = self.reg(rs2) as u8;
                self.store8(addr, v)?;
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                off,
            } => {
                if eval_cond(cond, self.reg(rs1), self.reg(rs2)) {
                    next_pc = pc.wrapping_add(4).wrapping_add(off as i32 as u32);
                }
            }
            Instr::Jal { rd, off } => {
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(4).wrapping_add(off as u32);
            }
            Instr::Jalr { rd, rs1, off } => {
                let target = self.reg(rs1).wrapping_add(off as i32 as u32);
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = target;
            }
            Instr::Iret => {
                next_pc = self.epc;
                self.in_isr = false;
            }
            Instr::Cli => self.irq_enabled = false,
            Instr::Sei => self.irq_enabled = true,
            Instr::Sym { rd, .. } => {
                let v = self.input_tape.get(self.tape_pos).copied().unwrap_or(0);
                self.tape_pos += 1;
                self.set_reg(rd, v);
            }
            Instr::Assert { rs1 } => {
                if self.reg(rs1) == 0 {
                    return Err(CpuFault::AssertFailed { pc });
                }
            }
            Instr::Fail => return Err(CpuFault::FailHit { pc }),
            Instr::Putc { rs1 } => {
                event = Event::Putc(self.reg(rs1) as u8);
            }
        }
        self.pc = next_pc;
        self.instret += 1;
        Ok(event)
    }

    /// Runs until halt, fault, or the instruction budget is exhausted;
    /// returns collected console output and whether the CPU halted.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CpuFault`].
    pub fn run(
        &mut self,
        bus: &mut dyn MmioBus,
        max_instrs: u64,
    ) -> Result<(Vec<u8>, bool), CpuFault> {
        let mut console = Vec::new();
        for _ in 0..max_instrs {
            match self.step(bus)? {
                Event::Halted => return Ok((console, true)),
                Event::Putc(c) => console.push(c),
                _ => {}
            }
        }
        Ok((console, false))
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b & 31),
        AluOp::Shr => a.wrapping_shr(b & 31),
        AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
        AluOp::Mul => a.wrapping_mul(b),
    }
}

fn eval_cond(c: Cond, a: u32, b: u32) -> bool {
    match c {
        Cond::Eq => a == b,
        Cond::Ne => a != b,
        Cond::Lt => (a as i32) < (b as i32),
        Cond::Ge => (a as i32) >= (b as i32),
        Cond::Ltu => a < b,
        Cond::Geu => a >= b,
    }
}

/// Shared ALU semantics (also used by the symbolic executor's tests).
pub fn alu_reference(op: AluOp, a: u32, b: u32) -> u32 {
    alu(op, a, b)
}

/// Shared branch-condition semantics.
pub fn cond_reference(c: Cond, a: u32, b: u32) -> bool {
    eval_cond(c, a, b)
}

/// Convenience: `ENTRY_PC` re-export for firmware builders.
pub const FIRMWARE_ENTRY: u32 = ENTRY_PC;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    fn run_src(src: &str, max: u64) -> (Cpu, Result<(Vec<u8>, bool), CpuFault>) {
        let p = assemble(src).unwrap();
        let mut cpu = Cpu::new(&p);
        let r = cpu.run(&mut NoMmio, max);
        (cpu, r)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (cpu, r) = run_src(
            r#"
            .org 0x100
            entry:
                movi r1, #21
                movi r2, #2
                mul r3, r1, r2
                halt
            "#,
            100,
        );
        assert_eq!(r.unwrap().1, true);
        assert_eq!(cpu.reg(3), 42);
        assert_eq!(cpu.instret, 4);
    }

    #[test]
    fn loop_sums_to_n() {
        let (cpu, r) = run_src(
            r#"
            .org 0x100
            entry:
                movi r1, #0    ; sum
                movi r2, #1    ; i
                movi r3, #11   ; bound
            loop:
                add r1, r1, r2
                addi r2, r2, #1
                bne r2, r3, loop
                halt
            "#,
            1000,
        );
        assert!(r.unwrap().1);
        assert_eq!(cpu.reg(1), 55);
    }

    #[test]
    fn memory_load_store_and_bytes() {
        let (cpu, r) = run_src(
            r#"
            .org 0x100
            entry:
                li r1, 0x2000
                li r2, 0xdeadbeef
                stw r2, [r1]
                ldw r3, [r1]
                ldb r4, [r1, #3]
                movi r5, #0x7a
                stb r5, [r1, #1]
                ldw r6, [r1]
                halt
            "#,
            100,
        );
        assert!(r.unwrap().1);
        assert_eq!(cpu.reg(3), 0xdead_beef);
        assert_eq!(cpu.reg(4), 0xde);
        assert_eq!(cpu.reg(6), 0xdead_7aef);
    }

    #[test]
    fn call_and_return() {
        let (cpu, r) = run_src(
            r#"
            .org 0x100
            entry:
                movi r1, #5
                call double
                halt
            double:
                add r1, r1, r1
                ret
            "#,
            100,
        );
        assert!(r.unwrap().1);
        assert_eq!(cpu.reg(1), 10);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (cpu, r) = run_src(
            ".org 0x100\nentry:\n movi r0, #7\n add r1, r0, r0\n halt\n",
            10,
        );
        assert!(r.unwrap().1);
        assert_eq!(cpu.reg(0), 0);
        assert_eq!(cpu.reg(1), 0);
    }

    #[test]
    fn signed_vs_unsigned_branches() {
        let (cpu, r) = run_src(
            r#"
            .org 0x100
            entry:
                li r1, 0xffffffff   ; -1 signed, max unsigned
                movi r2, #1
                movi r5, #0
                blt r1, r2, signed_taken
                j after1
            signed_taken:
                ori r5, r5, #1
            after1:
                bltu r1, r2, unsigned_taken
                j done
            unsigned_taken:
                ori r5, r5, #2
            done:
                halt
            "#,
            100,
        );
        assert!(r.unwrap().1);
        assert_eq!(cpu.reg(5), 1, "signed taken, unsigned not");
    }

    #[test]
    fn faults_are_reported_with_pc() {
        let (_, r) = run_src(
            ".org 0x100\nentry:\n li r1, 0x30000000\n ldw r2, [r1]\n halt\n",
            10,
        );
        match r {
            Err(CpuFault::Unmapped { addr, .. }) => assert_eq!(addr, 0x3000_0000),
            other => panic!("{other:?}"),
        }
        let (_, r) = run_src(
            ".org 0x100\nentry:\n movi r1, #2\n ldw r2, [r1]\n halt\n",
            10,
        );
        assert!(matches!(r, Err(CpuFault::Unaligned { .. })));
        let (_, r) = run_src(".org 0x100\nentry:\n fail\n", 10);
        assert!(matches!(r, Err(CpuFault::FailHit { pc: 0x100 })));
        let (_, r) = run_src(".org 0x100\nentry:\n movi r1, #0\n assert r1\n halt\n", 10);
        assert!(matches!(r, Err(CpuFault::AssertFailed { .. })));
    }

    #[test]
    fn putc_collects_console_output() {
        let (_, r) = run_src(
            r#"
            .org 0x100
            entry:
                movi r1, #72
                putc r1
                movi r1, #105
                putc r1
                halt
            "#,
            100,
        );
        let (console, halted) = r.unwrap();
        assert!(halted);
        assert_eq!(console, b"Hi");
    }

    #[test]
    fn sym_reads_input_tape_concretely() {
        let p = assemble(".org 0x100\nentry:\n sym r1, #0\n sym r2, #1\n halt\n").unwrap();
        let mut cpu = Cpu::new(&p);
        cpu.set_input_tape(vec![11, 22]);
        cpu.run(&mut NoMmio, 10).unwrap();
        assert_eq!(cpu.reg(1), 11);
        assert_eq!(cpu.reg(2), 22);
    }

    #[test]
    fn interrupts_vector_and_iret() {
        let p = assemble(
            r#"
            .org 0x0
            .word isr0, 0, 0, 0, 0, 0, 0, 0
            .org 0x100
            entry:
                sei
                movi r1, #0
            spin:
                addi r1, r1, #1
                j spin
            isr0:
                movi r2, #99
                iret
            "#,
        )
        .unwrap();
        let mut cpu = Cpu::new(&p);
        let mut bus = NoMmio;
        for _ in 0..5 {
            cpu.step(&mut bus).unwrap();
        }
        assert!(cpu.irq_enabled);
        let taken = cpu.take_irq(0b1);
        assert_eq!(taken, Some(0));
        assert!(cpu.in_isr);
        // While in the ISR, further IRQs are not taken (atomicity).
        assert_eq!(cpu.take_irq(0b1), None);
        // Run the ISR to completion.
        cpu.step(&mut bus).unwrap(); // movi r2
        cpu.step(&mut bus).unwrap(); // iret
        assert!(!cpu.in_isr);
        assert_eq!(cpu.reg(2), 99);
        // Execution resumes in the spin loop.
        let pc = cpu.pc;
        assert!(pc >= 0x108, "resumed at {pc:#x}");
    }

    #[test]
    fn unpopulated_vector_leaves_irq_pending() {
        let p = assemble(".org 0x100\nentry:\n sei\n halt\n").unwrap();
        let mut cpu = Cpu::new(&p);
        cpu.step(&mut NoMmio).unwrap();
        assert_eq!(cpu.take_irq(0b10), None);
        assert!(!cpu.in_isr);
    }

    #[test]
    fn state_clone_is_a_software_snapshot() {
        let (mut cpu, _) = run_src(
            ".org 0x100\nentry:\n movi r1, #1\nloop:\n addi r1, r1, #1\n j loop\n",
            50,
        );
        let snap = cpu.clone();
        cpu.run(&mut NoMmio, 100).unwrap();
        assert_ne!(cpu.reg(1), snap.reg(1));
        let mut restored = snap.clone();
        assert_eq!(restored.reg(1), snap.reg(1));
        restored.run(&mut NoMmio, 100).unwrap();
        assert_eq!(
            restored.reg(1),
            cpu.reg(1),
            "deterministic replay from snapshot"
        );
    }
}
