//! HS32 instruction set: encoding and decoding.
//!
//! HS32 is the small 32-bit load/store MCU ISA this reproduction uses in
//! place of the paper's ARM Cortex-M firmware (the claims under test
//! concern the state-management layer, not the ISA — see DESIGN.md §2).
//! It has 16 general registers (`r0` hardwired to zero, `r14` = link
//! register by convention, `r13` = stack pointer by convention), a
//! separate PC, vectored interrupts, and a set of *hypercall*
//! instructions mirroring KLEE intrinsics (`SYM` ≈ `klee_make_symbolic`,
//! `ASSERT` ≈ `klee_assert`).
//!
//! All instructions are 32 bits: `op[31:26] rd[25:22] rs1[21:18]
//! rs2[17:14] / imm16[15:0] / off22[21:0]`.

/// The link register (by convention, written by `jal`).
pub const LR: u8 = 14;
/// The stack pointer (by convention).
pub const SP: u8 = 13;
/// Number of general registers.
pub const NUM_REGS: usize = 16;
/// Reset entry point (see `hardsnap_bus::map::soc::RAM_BASE`).
pub const ENTRY_PC: u32 = 0x100;
/// Base of the interrupt vector table (word per IRQ line, lines 0..=7).
pub const VECTOR_BASE: u32 = 0x0;
/// Number of IRQ lines.
pub const NUM_IRQ_LINES: u32 = 8;

/// Register-register ALU operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (amount masked to 5 bits).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sra,
    /// Wrapping multiplication (low 32 bits).
    Mul,
}

/// Branch conditions (`rs1 ? rs2`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// A decoded HS32 instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    /// No operation.
    Nop,
    /// Stop the CPU.
    Halt,
    /// `rd = rs1 <op> rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: u8,
        /// First source.
        rs1: u8,
        /// Second source.
        rs2: u8,
    },
    /// `rd = rs1 <op> imm` (ADDI sign-extends; logical ops zero-extend;
    /// shifts use the low 5 bits).
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: u8,
        /// Source.
        rs1: u8,
        /// Pre-extended immediate.
        imm: u32,
    },
    /// `rd = imm16 << 16`.
    Lui {
        /// Destination.
        rd: u8,
        /// Upper immediate.
        imm: u16,
    },
    /// `rd = mem32[rs1 + off]`.
    Ldw {
        /// Destination.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Signed byte offset.
        off: i16,
    },
    /// `mem32[rs1 + off] = rs2`.
    Stw {
        /// Value register.
        rs2: u8,
        /// Base register.
        rs1: u8,
        /// Signed byte offset.
        off: i16,
    },
    /// `rd = zext(mem8[rs1 + off])`.
    Ldb {
        /// Destination.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Signed byte offset.
        off: i16,
    },
    /// `mem8[rs1 + off] = rs2[7:0]`.
    Stb {
        /// Value register.
        rs2: u8,
        /// Base register.
        rs1: u8,
        /// Signed byte offset.
        off: i16,
    },
    /// `if (rs1 <cond> rs2) pc += off`.
    Branch {
        /// Condition.
        cond: Cond,
        /// Left operand.
        rs1: u8,
        /// Right operand.
        rs2: u8,
        /// Signed byte offset relative to the *next* instruction.
        off: i16,
    },
    /// `rd = pc + 4; pc += off`.
    Jal {
        /// Link destination (`r0` to discard).
        rd: u8,
        /// Signed byte offset relative to the next instruction (22-bit).
        off: i32,
    },
    /// `rd = pc + 4; pc = rs1 + off`.
    Jalr {
        /// Link destination.
        rd: u8,
        /// Target base.
        rs1: u8,
        /// Signed byte offset.
        off: i16,
    },
    /// Return from interrupt (`pc = epc`, re-enable interrupts).
    Iret,
    /// Disable interrupts.
    Cli,
    /// Enable interrupts.
    Sei,
    /// Make `rd` symbolic (hypercall; concretely reads the input tape).
    Sym {
        /// Destination.
        rd: u8,
        /// Symbolic variable id.
        id: u16,
    },
    /// Fault if `rs1 == 0` (hypercall).
    Assert {
        /// Checked register.
        rs1: u8,
    },
    /// Unconditional fault marker (a planted bug's detonation point).
    Fail,
    /// Write `rs1[7:0]` to the debug console (hypercall).
    Putc {
        /// Source register.
        rs1: u8,
    },
    /// Checkpoint hint for the analysis engine (no semantic effect).
    Chkpt {
        /// Marker id.
        id: u16,
    },
}

const OP_NOP: u32 = 0x00;
const OP_HALT: u32 = 0x01;
const OP_ALU_BASE: u32 = 0x02; // ..=0x0A, AluOp order
const OP_ALUI_BASE: u32 = 0x0B; // ..=0x13
const OP_LUI: u32 = 0x14;
const OP_LDW: u32 = 0x15;
const OP_STW: u32 = 0x16;
const OP_LDB: u32 = 0x17;
const OP_STB: u32 = 0x18;
const OP_BR_BASE: u32 = 0x19; // ..=0x1E, Cond order
const OP_JAL: u32 = 0x1F;
const OP_JALR: u32 = 0x20;
const OP_IRET: u32 = 0x21;
const OP_CLI: u32 = 0x22;
const OP_SEI: u32 = 0x23;
const OP_SYM: u32 = 0x30;
const OP_ASSERT: u32 = 0x31;
const OP_FAIL: u32 = 0x32;
const OP_PUTC: u32 = 0x33;
const OP_CHKPT: u32 = 0x34;

const ALU_OPS: [AluOp; 9] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Sra,
    AluOp::Mul,
];

const CONDS: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];

fn alu_index(op: AluOp) -> u32 {
    ALU_OPS.iter().position(|&o| o == op).unwrap() as u32
}

fn cond_index(c: Cond) -> u32 {
    CONDS.iter().position(|&x| x == c).unwrap() as u32
}

/// True when this immediate-form op sign-extends its 16-bit immediate.
pub fn imm_is_signed(op: AluOp) -> bool {
    matches!(op, AluOp::Add | AluOp::Sub | AluOp::Mul)
}

/// Errors from instruction decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable instruction word.
    pub word: u32,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

impl Instr {
    /// Encodes the instruction to its 32-bit word.
    pub fn encode(&self) -> u32 {
        let r = |op: u32, rd: u8, rs1: u8, rs2: u8| {
            (op << 26) | ((rd as u32) << 22) | ((rs1 as u32) << 18) | ((rs2 as u32) << 14)
        };
        let i = |op: u32, rd: u8, rs1: u8, imm: u16| {
            (op << 26) | ((rd as u32) << 22) | ((rs1 as u32) << 18) | imm as u32
        };
        match *self {
            Instr::Nop => OP_NOP << 26,
            Instr::Halt => OP_HALT << 26,
            Instr::Alu { op, rd, rs1, rs2 } => r(OP_ALU_BASE + alu_index(op), rd, rs1, rs2),
            Instr::AluImm { op, rd, rs1, imm } => {
                i(OP_ALUI_BASE + alu_index(op), rd, rs1, imm as u16)
            }
            Instr::Lui { rd, imm } => i(OP_LUI, rd, 0, imm),
            Instr::Ldw { rd, rs1, off } => i(OP_LDW, rd, rs1, off as u16),
            Instr::Stw { rs2, rs1, off } => i(OP_STW, rs2, rs1, off as u16),
            Instr::Ldb { rd, rs1, off } => i(OP_LDB, rd, rs1, off as u16),
            Instr::Stb { rs2, rs1, off } => i(OP_STB, rs2, rs1, off as u16),
            Instr::Branch {
                cond,
                rs1,
                rs2,
                off,
            } => i(OP_BR_BASE + cond_index(cond), rs1, rs2, off as u16),
            Instr::Jal { rd, off } => {
                (OP_JAL << 26) | ((rd as u32) << 22) | ((off as u32) & 0x3f_ffff)
            }
            Instr::Jalr { rd, rs1, off } => i(OP_JALR, rd, rs1, off as u16),
            Instr::Iret => OP_IRET << 26,
            Instr::Cli => OP_CLI << 26,
            Instr::Sei => OP_SEI << 26,
            Instr::Sym { rd, id } => i(OP_SYM, rd, 0, id),
            Instr::Assert { rs1 } => i(OP_ASSERT, 0, rs1, 0),
            Instr::Fail => OP_FAIL << 26,
            Instr::Putc { rs1 } => i(OP_PUTC, 0, rs1, 0),
            Instr::Chkpt { id } => i(OP_CHKPT, 0, 0, id),
        }
    }

    /// Decodes a 32-bit word.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] for unknown opcodes.
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        let op = word >> 26;
        let rd = ((word >> 22) & 0xf) as u8;
        let rs1 = ((word >> 18) & 0xf) as u8;
        let rs2 = ((word >> 14) & 0xf) as u8;
        let imm16 = (word & 0xffff) as u16;
        Ok(match op {
            OP_NOP => Instr::Nop,
            OP_HALT => Instr::Halt,
            o if (OP_ALU_BASE..OP_ALU_BASE + 9).contains(&o) => Instr::Alu {
                op: ALU_OPS[(o - OP_ALU_BASE) as usize],
                rd,
                rs1,
                rs2,
            },
            o if (OP_ALUI_BASE..OP_ALUI_BASE + 9).contains(&o) => {
                let aop = ALU_OPS[(o - OP_ALUI_BASE) as usize];
                let imm = if imm_is_signed(aop) {
                    imm16 as i16 as i32 as u32
                } else {
                    imm16 as u32
                };
                Instr::AluImm {
                    op: aop,
                    rd,
                    rs1,
                    imm,
                }
            }
            OP_LUI => Instr::Lui { rd, imm: imm16 },
            OP_LDW => Instr::Ldw {
                rd,
                rs1,
                off: imm16 as i16,
            },
            OP_STW => Instr::Stw {
                rs2: rd,
                rs1,
                off: imm16 as i16,
            },
            OP_LDB => Instr::Ldb {
                rd,
                rs1,
                off: imm16 as i16,
            },
            OP_STB => Instr::Stb {
                rs2: rd,
                rs1,
                off: imm16 as i16,
            },
            o if (OP_BR_BASE..OP_BR_BASE + 6).contains(&o) => Instr::Branch {
                cond: CONDS[(o - OP_BR_BASE) as usize],
                rs1: rd,
                rs2: rs1,
                off: imm16 as i16,
            },
            OP_JAL => {
                let raw = word & 0x3f_ffff;
                // Sign-extend 22 bits.
                let off = ((raw << 10) as i32) >> 10;
                Instr::Jal { rd, off }
            }
            OP_JALR => Instr::Jalr {
                rd,
                rs1,
                off: imm16 as i16,
            },
            OP_IRET => Instr::Iret,
            OP_CLI => Instr::Cli,
            OP_SEI => Instr::Sei,
            OP_SYM => Instr::Sym { rd, id: imm16 },
            OP_ASSERT => Instr::Assert { rs1 },
            OP_FAIL => Instr::Fail,
            OP_PUTC => Instr::Putc { rs1 },
            OP_CHKPT => Instr::Chkpt { id: imm16 },
            _ => return Err(DecodeError { word }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instr) {
        let w = i.encode();
        let d = Instr::decode(w).unwrap();
        // Branch encoding moves registers between fields; compare the
        // decoded form against re-encoding instead of field equality.
        assert_eq!(d.encode(), w, "{i:?} -> {w:#x} -> {d:?}");
        assert_eq!(d, Instr::decode(d.encode()).unwrap());
    }

    #[test]
    fn all_instruction_forms_roundtrip() {
        let cases = vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Alu {
                op: AluOp::Add,
                rd: 1,
                rs1: 2,
                rs2: 3,
            },
            Instr::Alu {
                op: AluOp::Mul,
                rd: 15,
                rs1: 14,
                rs2: 13,
            },
            Instr::AluImm {
                op: AluOp::Add,
                rd: 1,
                rs1: 2,
                imm: (-5i32) as u32,
            },
            Instr::AluImm {
                op: AluOp::Xor,
                rd: 3,
                rs1: 3,
                imm: 0xffff,
            },
            Instr::AluImm {
                op: AluOp::Shl,
                rd: 3,
                rs1: 3,
                imm: 12,
            },
            Instr::Lui { rd: 7, imm: 0x4000 },
            Instr::Ldw {
                rd: 2,
                rs1: 13,
                off: -8,
            },
            Instr::Stw {
                rs2: 2,
                rs1: 13,
                off: 12,
            },
            Instr::Ldb {
                rd: 2,
                rs1: 4,
                off: 3,
            },
            Instr::Stb {
                rs2: 2,
                rs1: 4,
                off: -1,
            },
            Instr::Branch {
                cond: Cond::Eq,
                rs1: 1,
                rs2: 2,
                off: -16,
            },
            Instr::Branch {
                cond: Cond::Geu,
                rs1: 9,
                rs2: 10,
                off: 400,
            },
            Instr::Jal { rd: LR, off: -1024 },
            Instr::Jal {
                rd: 0,
                off: 0x1f_fffc,
            },
            Instr::Jalr {
                rd: 0,
                rs1: LR,
                off: 0,
            },
            Instr::Iret,
            Instr::Cli,
            Instr::Sei,
            Instr::Sym { rd: 5, id: 3 },
            Instr::Assert { rs1: 6 },
            Instr::Fail,
            Instr::Putc { rs1: 1 },
            Instr::Chkpt { id: 42 },
        ];
        for c in cases {
            roundtrip(c);
        }
    }

    #[test]
    fn decoded_fields_match_for_exact_forms() {
        let i = Instr::AluImm {
            op: AluOp::Add,
            rd: 4,
            rs1: 5,
            imm: (-100i32) as u32,
        };
        assert_eq!(Instr::decode(i.encode()).unwrap(), i);
        let b = Instr::Branch {
            cond: Cond::Ltu,
            rs1: 3,
            rs2: 8,
            off: -4,
        };
        assert_eq!(Instr::decode(b.encode()).unwrap(), b);
        let j = Instr::Jal { rd: 14, off: -2096 };
        assert_eq!(Instr::decode(j.encode()).unwrap(), j);
    }

    #[test]
    fn unknown_opcode_is_decode_error() {
        assert!(Instr::decode(0x3f << 26).is_err());
        assert!(Instr::decode(0x29 << 26).is_err());
    }

    #[test]
    fn signedness_of_immediates() {
        assert!(imm_is_signed(AluOp::Add));
        assert!(!imm_is_signed(AluOp::And));
        let i = Instr::decode(
            Instr::AluImm {
                op: AluOp::And,
                rd: 1,
                rs1: 1,
                imm: 0x8000,
            }
            .encode(),
        )
        .unwrap();
        match i {
            Instr::AluImm { imm, .. } => assert_eq!(imm, 0x8000, "zero-extended"),
            other => panic!("And-imm decoded to {other:?}, expected AluImm"),
        }
        let i = Instr::decode(
            Instr::AluImm {
                op: AluOp::Add,
                rd: 1,
                rs1: 1,
                imm: 0xffff_8000,
            }
            .encode(),
        )
        .unwrap();
        match i {
            Instr::AluImm { imm, .. } => assert_eq!(imm, 0xffff_8000, "sign-extended"),
            other => panic!("Add-imm decoded to {other:?}, expected AluImm"),
        }
    }
}
