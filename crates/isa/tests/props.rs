//! Property tests for the HS32 instruction codec: decode is total over
//! arbitrary 32-bit words (errors, never panics — firmware images are
//! untrusted input), and encode/decode round-trips every constructible
//! instruction, including the control-flow and hypercall forms the root
//! `tests/properties.rs` suite doesn't cover.

use hardsnap_isa::{Cond, Instr};
use hardsnap_util::prop::any;
use hardsnap_util::prop_check;

/// Any 32-bit word either decodes or reports `DecodeError` — and for
/// words that do decode, re-encoding is stable: the round-tripped
/// instruction decodes to itself (don't-care bits may differ).
#[test]
fn decode_is_total_and_reencode_is_stable() {
    prop_check!(cases = 512, seed = 0xDEC0_DE00, (word in any::<u32>()) => {
        if let Ok(instr) = Instr::decode(word) {
            assert_eq!(Instr::decode(instr.encode()).unwrap(), instr);
        }
    });
}

#[test]
fn control_flow_roundtrip() {
    prop_check!(
        cases = 256,
        seed = 0xB4A_4C11,
        (c in 0usize..6, rd in 0u8..16, rs1 in 0u8..16, rs2 in 0u8..16, raw in any::<u32>()) => {
            let conds = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];
            let off16 = raw as u16 as i16;
            let br = Instr::Branch { cond: conds[c], rs1, rs2, off: off16 };
            assert_eq!(Instr::decode(br.encode()).unwrap(), br);
            // Jal offsets are 22-bit sign-extended.
            let off22 = ((raw as i32) << 10) >> 10;
            let jal = Instr::Jal { rd, off: off22 };
            assert_eq!(Instr::decode(jal.encode()).unwrap(), jal);
            let jalr = Instr::Jalr { rd, rs1, off: off16 };
            assert_eq!(Instr::decode(jalr.encode()).unwrap(), jalr);
        }
    );
}

#[test]
fn memory_and_hypercall_roundtrip() {
    prop_check!(
        cases = 256,
        seed = 0x4E4_CA11,
        (rd in 0u8..16, rs1 in 0u8..16, rs2 in 0u8..16, imm in any::<u16>()) => {
            let off = imm as i16;
            for instr in [
                Instr::Lui { rd, imm },
                Instr::Stw { rs2, rs1, off },
                Instr::Ldb { rd, rs1, off },
                Instr::Stb { rs2, rs1, off },
                Instr::Sym { rd, id: imm },
                Instr::Assert { rs1 },
                Instr::Putc { rs1 },
                Instr::Chkpt { id: imm },
                Instr::Nop,
                Instr::Halt,
                Instr::Iret,
                Instr::Cli,
                Instr::Sei,
                Instr::Fail,
            ] {
                assert_eq!(Instr::decode(instr.encode()).unwrap(), instr, "{instr:?}");
            }
        }
    );
}
