//! # hardsnap-fpga
//!
//! The FPGA-platform hardware target of the HardSnap reproduction
//! (paper §III-A "FPGA target", §III-C snapshot controller IP).
//!
//! A real FPGA offers near-silicon speed but almost no visibility; the
//! paper's answer is RTL-level scan-chain instrumentation plus an
//! on-fabric snapshot-controller IP. This crate models that platform:
//!
//! * [`FpgaTarget`] takes the *uninstrumented* flat design, runs the
//!   `hardsnap-scan` instrumentation pass (the toolchain of Fig. 3 B),
//!   and executes the instrumented netlist. The **visibility firewall**
//!   is enforced in the API: only the design's ports (bus, IRQ and scan
//!   pins) are accessible — there is no peek/poke of internal state, by
//!   construction, exactly like a real fabric.
//! * Snapshots travel through the actual scan chain, bit by bit, through
//!   the simulated netlist: `save` loops `scan_out` back into `scan_in`
//!   (so the state is preserved while being observed) and `restore`
//!   shifts the encoded image in. Memories are drained/filled through
//!   the generated word-access collar. Bit-exactness against the
//!   simulator target is therefore a *tested* property, not an
//!   assumption.
//! * The virtual-time model charges fabric cycles (100 MHz), USB 3.0
//!   round-trips per bus transaction, and per-bit scan cost — the
//!   quantities the paper's evaluation measures.
//! * High-end-FPGA **readback** is modeled as a save-only alternative
//!   with its own (much larger, mostly fixed) cost, for the scan-vs-
//!   readback comparison (experiment E7).

#![warn(missing_docs)]

use hardsnap_bus::{
    axi_ports, mem_words_hash, regs_values_hash, BusError, HwSnapshot, HwTarget, ImageKind,
    LazyRestore, MemImage, RegImage, SectionTag, SnapshotCapture, SnapshotDelta, SnapshotFile,
    TargetCaps, TargetError, TargetKind,
};
use hardsnap_rtl::{Module, NetId};
use hardsnap_scan::{instrument, ports as scan_ports, ChainMap, ScanOptions};
use hardsnap_sim::{AxiLite, SimError, Simulator};
use hardsnap_telemetry::{Counter, Metric, Recorder};
use std::sync::Arc;

/// Virtual-time cost model of the FPGA platform.
///
/// Defaults model a 100 MHz fabric behind a USB 3.0 low-latency debugger
/// (the paper's modified Inception debugger) and a readback path in the
/// tens of milliseconds, matching the orders of magnitude of the
/// hardware the paper used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FpgaTimeModel {
    /// Fabric clock period in nanoseconds (10 ns = 100 MHz).
    pub ns_per_cycle: u64,
    /// USB 3.0 round-trip per bus transaction.
    pub usb_latency_ns: u64,
    /// Fixed controller setup cost per scan save/restore operation.
    pub scan_overhead_ns: u64,
    /// Fixed cost of a configuration readback (frame addressing etc.).
    pub readback_fixed_ns: u64,
    /// Incremental readback cost per state bit.
    pub readback_ns_per_bit: u64,
}

impl Default for FpgaTimeModel {
    fn default() -> Self {
        FpgaTimeModel {
            ns_per_cycle: 10,              // 100 MHz fabric
            usb_latency_ns: 30_000,        // 30 us USB3 round-trip
            scan_overhead_ns: 60_000,      // two USB commands to the scan IP
            readback_fixed_ns: 15_000_000, // 15 ms frame addressing
            readback_ns_per_bit: 5,
        }
    }
}

/// Construction options.
#[derive(Clone, Debug)]
pub struct FpgaOptions {
    /// Instrumentation scope/settings passed to the scan pass. The
    /// default uses a 32-lane chain (`ScanOptions::width = 32`): the
    /// snapshot controller shifts whole 32-bit words per fabric cycle,
    /// cutting scan time ~32× versus the bit-serial chain.
    pub scan: ScanOptions,
    /// Model a high-end FPGA with configuration readback support.
    pub readback: bool,
    /// Time model override.
    pub model: Option<FpgaTimeModel>,
}

impl Default for FpgaOptions {
    fn default() -> Self {
        FpgaOptions {
            scan: ScanOptions {
                width: 32,
                ..ScanOptions::default()
            },
            readback: false,
            model: None,
        }
    }
}

/// The FPGA hardware target.
///
/// # Examples
///
/// ```
/// use hardsnap_bus::HwTarget;
/// use hardsnap_fpga::FpgaTarget;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let soc = hardsnap_periph::soc().unwrap();
/// let mut fpga = FpgaTarget::new(soc, &Default::default())?;
/// fpga.reset();
/// let snap = fpga.save_snapshot()?;        // travels the scan chain
/// fpga.step(1000);
/// fpga.restore_snapshot(&snap)?;           // shifts the image back in
/// # Ok(())
/// # }
/// ```
pub struct FpgaTarget {
    sim: Simulator,
    axi: AxiLite,
    chain: ChainMap,
    model: FpgaTimeModel,
    vtime_ns: u64,
    design: String,
    readback: bool,
    instrumented_name: String,
    /// IRQ port resolved once at construction: `None` means the design
    /// genuinely has no IRQ output, so a failed peek is never silently
    /// read as "no interrupt".
    irq_net: Option<NetId>,
    /// Golden base image the snapshot controller diffs against when
    /// delta captures are enabled.
    base: Option<Arc<HwSnapshot>>,
    delta_mode: bool,
    /// Content hash of the most recent full capture: the checksum
    /// trailer the scan controller IP computes over the complete chain
    /// as it shifts out, reported via [`HwTarget::capture_checksum`].
    capture_checksum: u64,
    rec: Recorder,
}

impl FpgaTarget {
    /// Instruments `module` with a scan chain and "loads it onto the
    /// fabric" (builds the netlist evaluator for the instrumented
    /// design).
    ///
    /// # Errors
    ///
    /// Propagates instrumentation errors ([`hardsnap_scan::ScanError`]
    /// wrapped as [`SimError::Unsupported`] text) and simulator/port
    /// binding errors.
    pub fn new(module: Module, opts: &FpgaOptions) -> Result<Self, SimError> {
        let design = module.name.clone();
        let (instrumented, chain) = instrument(&module, &opts.scan)
            .map_err(|e| SimError::Unsupported(format!("scan instrumentation failed: {e}")))?;
        let instrumented_name = instrumented.name.clone();
        let sim = Simulator::new(instrumented)?;
        let axi = AxiLite::bind(&sim)?;
        let irq_net = sim.module().find_net(axi_ports::IRQ);
        Ok(FpgaTarget {
            sim,
            axi,
            chain,
            model: opts.model.unwrap_or_default(),
            vtime_ns: 0,
            design,
            readback: opts.readback,
            instrumented_name,
            irq_net,
            base: None,
            delta_mode: false,
            capture_checksum: 0,
            rec: Recorder::disabled(),
        })
    }

    /// The scan-chain layout of the instrumented design.
    pub fn chain_map(&self) -> &ChainMap {
        &self.chain
    }

    /// The time model in force.
    pub fn model(&self) -> FpgaTimeModel {
        self.model
    }

    /// Name of the instrumented module loaded on the fabric.
    pub fn instrumented_name(&self) -> &str {
        &self.instrumented_name
    }

    /// Reads a **port** of the design — the only visibility a fabric
    /// offers. Internal nets are unreachable through this API.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownNet`] if the name is not a port of the design.
    pub fn port_peek(&mut self, name: &str) -> Result<u64, SimError> {
        let id = self
            .sim
            .module()
            .find_net(name)
            .filter(|&id| self.sim.module().net(id).port.is_some())
            .ok_or_else(|| SimError::UnknownNet(format!("{name} (not a port)")))?;
        let _ = id;
        Ok(self.sim.peek(name)?.bits())
    }

    /// Drives a **port** of the design; same firewall as
    /// [`FpgaTarget::port_peek`].
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownNet`] if the name is not an input port.
    pub fn port_poke(&mut self, name: &str, value: u64) -> Result<(), SimError> {
        let ok = self
            .sim
            .module()
            .find_net(name)
            .map(|id| self.sim.module().net(id).port == Some(hardsnap_rtl::PortDir::Input))
            .unwrap_or(false);
        if !ok {
            return Err(SimError::UnknownNet(format!("{name} (not an input port)")));
        }
        self.sim.poke(name, value)
    }

    fn charge_cycles(&mut self, cycles: u64) {
        self.vtime_ns = self
            .vtime_ns
            .saturating_add(cycles.saturating_mul(self.model.ns_per_cycle));
    }

    /// Shifts the whole chain once around (out and back in), returning
    /// the observed word stream; state is preserved. One whole
    /// `lanes`-bit word moves per fabric cycle, so the pass costs
    /// `shift_cycles()` cycles, not one per bit.
    fn scan_cycle_preserving(&mut self) -> Vec<u64> {
        let cycles = self.chain.shift_cycles();
        let mut span = self.rec.span("scan", "scan-shift-out");
        span.set_arg(self.chain.shift_plan().cells);
        self.rec.count(Counter::ScanShifts);
        self.rec.observe(Metric::ScanShiftCycles, cycles);
        let mut stream = Vec::with_capacity(cycles as usize);
        self.sim
            .poke(scan_ports::SCAN_ENABLE, 1)
            .expect("scan port exists");
        for _ in 0..cycles {
            let word = self
                .sim
                .peek(scan_ports::SCAN_OUT)
                .expect("scan port")
                .bits();
            stream.push(word);
            // Feeding the observed word straight back rotates the chain
            // by one full turn over the pass: state is preserved.
            self.sim.poke(scan_ports::SCAN_IN, word).expect("scan port");
            self.sim.step(1);
        }
        self.sim
            .poke(scan_ports::SCAN_ENABLE, 0)
            .expect("scan port");
        self.charge_cycles(cycles);
        stream
    }

    /// Shifts `stream` in, one word per cycle (previous state is
    /// discarded).
    fn scan_shift_in(&mut self, stream: &[u64]) {
        let mut span = self.rec.span("scan", "scan-shift-in");
        span.set_arg(self.chain.shift_plan().cells);
        self.rec.count(Counter::ScanShifts);
        self.rec
            .observe(Metric::ScanShiftCycles, stream.len() as u64);
        self.sim
            .poke(scan_ports::SCAN_ENABLE, 1)
            .expect("scan port exists");
        for &word in stream {
            self.sim.poke(scan_ports::SCAN_IN, word).expect("scan port");
            self.sim.step(1);
        }
        self.sim
            .poke(scan_ports::SCAN_ENABLE, 0)
            .expect("scan port");
        self.charge_cycles(stream.len() as u64);
    }

    /// Reads all collared memories through the collar ports.
    fn collar_read_all(&mut self) -> Vec<MemImage> {
        let mut out = Vec::with_capacity(self.chain.mems.len());
        if self.chain.mems.is_empty() {
            return out;
        }
        self.sim.poke(scan_ports::MEM_EN, 1).expect("collar port");
        self.sim.poke(scan_ports::MEM_WE, 0).expect("collar port");
        let mut total_words = 0u64;
        for collar in self.chain.mems.clone() {
            let mut words = Vec::with_capacity(collar.depth as usize);
            self.sim
                .poke(scan_ports::MEM_SEL, collar.sel as u64)
                .expect("collar port");
            for a in 0..collar.depth {
                self.sim
                    .poke(scan_ports::MEM_ADDR, a as u64)
                    .expect("collar port");
                let w = self
                    .sim
                    .peek(scan_ports::MEM_RDATA)
                    .expect("collar port")
                    .bits();
                words.push(w);
                total_words += 1;
            }
            out.push(MemImage {
                name: collar.name.clone(),
                width: collar.width,
                words,
            });
        }
        self.sim.poke(scan_ports::MEM_EN, 0).expect("collar port");
        self.charge_cycles(total_words);
        out
    }

    /// Writes all collared memories through the collar ports.
    fn collar_write_all(&mut self, mems: &[MemImage]) -> Result<(), TargetError> {
        if self.chain.mems.is_empty() {
            return Ok(());
        }
        self.sim.poke(scan_ports::MEM_EN, 1).expect("collar port");
        self.sim.poke(scan_ports::MEM_WE, 1).expect("collar port");
        let mut total_words = 0u64;
        for collar in self.chain.mems.clone() {
            let img = mems.iter().find(|m| m.name == collar.name).ok_or_else(|| {
                TargetError::CorruptSnapshot(format!("missing memory '{}'", collar.name))
            })?;
            if img.words.len() != collar.depth as usize {
                return Err(TargetError::CorruptSnapshot(format!(
                    "memory '{}' has {} words, design expects {}",
                    collar.name,
                    img.words.len(),
                    collar.depth
                )));
            }
            self.sim
                .poke(scan_ports::MEM_SEL, collar.sel as u64)
                .expect("collar port");
            for (a, w) in img.words.iter().enumerate() {
                self.sim
                    .poke(scan_ports::MEM_ADDR, a as u64)
                    .expect("collar port");
                self.sim
                    .poke(scan_ports::MEM_WDATA, *w)
                    .expect("collar port");
                self.sim.step(1); // collar writes are clocked
                total_words += 1;
            }
        }
        self.sim.poke(scan_ports::MEM_WE, 0).expect("collar port");
        self.sim.poke(scan_ports::MEM_EN, 0).expect("collar port");
        self.charge_cycles(total_words);
        Ok(())
    }

    /// Captures a snapshot via the configuration-readback path instead
    /// of the scan chain. Readback is read-only: there is no restore
    /// counterpart, which is exactly why the scan chain exists.
    ///
    /// # Errors
    ///
    /// [`TargetError::Unsupported`] when the modeled fabric lacks
    /// readback (the default).
    pub fn save_via_readback(&mut self) -> Result<HwSnapshot, TargetError> {
        if !self.readback {
            return Err(TargetError::Unsupported(
                "this fabric has no configuration readback; use the scan chain".into(),
            ));
        }
        // Readback observes flip-flop state directly from the fabric
        // configuration plane: model as a privileged dump with readback
        // costs (no cycles consumed on the user clock).
        let snap = self.capture_via_scan_paths_silently();
        self.vtime_ns +=
            self.model.readback_fixed_ns + snap.state_bits() * self.model.readback_ns_per_bit;
        Ok(snap)
    }

    /// Builds the canonical snapshot through the scan paths without
    /// charging time (shared by the scan save and the readback model,
    /// which charge their own costs).
    fn capture_via_scan_paths_silently(&mut self) -> HwSnapshot {
        let saved_vtime = self.vtime_ns;
        let saved_cycle_cost = self.sim.cycle();
        let stream = self.scan_cycle_preserving();
        let values = self
            .chain
            .decode_words(&stream)
            .expect("stream length matches chain");
        let regs = self
            .chain
            .segments
            .iter()
            .zip(values)
            .map(|(seg, bits)| RegImage {
                name: seg.name.clone(),
                width: seg.width,
                bits,
            })
            .collect();
        let mems = self.collar_read_all();
        self.vtime_ns = saved_vtime;
        let _ = saved_cycle_cost;
        HwSnapshot {
            design: self.design.clone(),
            cycle: self.sim.cycle(),
            regs,
            mems,
        }
    }

    /// Checks a restore image against the chain layout — registers
    /// present with in-range values, memories present with the right
    /// depth and normalized words — without touching the fabric. An
    /// image that passes cannot fail mid-shift.
    fn validate_restore_image(&self, snap: &HwSnapshot) -> Result<Vec<u64>, TargetError> {
        let mut values = Vec::with_capacity(self.chain.segments.len());
        for seg in &self.chain.segments {
            let bits = snap.reg(&seg.name).ok_or_else(|| {
                TargetError::CorruptSnapshot(format!("missing register '{}'", seg.name))
            })?;
            if seg.width < 64 && bits >> seg.width != 0 {
                return Err(TargetError::CorruptSnapshot(format!(
                    "register '{}' value {bits:#x} exceeds its {} bits",
                    seg.name, seg.width
                )));
            }
            values.push(bits);
        }
        for collar in &self.chain.mems {
            let img = snap.mem(&collar.name).ok_or_else(|| {
                TargetError::CorruptSnapshot(format!("missing memory '{}'", collar.name))
            })?;
            if img.words.len() != collar.depth as usize {
                return Err(TargetError::CorruptSnapshot(format!(
                    "memory '{}' has {} words, design expects {}",
                    collar.name,
                    img.words.len(),
                    collar.depth
                )));
            }
            if collar.width < 64 {
                let msk = (1u64 << collar.width) - 1;
                if let Some(wi) = img.words.iter().position(|&w| w & !msk != 0) {
                    return Err(TargetError::CorruptSnapshot(format!(
                        "memory '{}'[{wi}] value exceeds its {} bits",
                        collar.name, collar.width
                    )));
                }
            }
        }
        Ok(values)
    }
}

/// Which chain segments and how many collar words differ between the
/// currently-loaded state and a target image (both keyed by the chain
/// layout) — the activity a partial scan pass has to move.
fn diff_activity(cur: &HwSnapshot, want: &HwSnapshot, chain: &ChainMap) -> (Vec<bool>, u64) {
    let dirty_segs: Vec<bool> = chain
        .segments
        .iter()
        .enumerate()
        .map(|(i, seg)| want.reg(&seg.name) != Some(cur.regs[i].bits))
        .collect();
    let mut dirty_words = 0u64;
    for (mi, collar) in chain.mems.iter().enumerate() {
        if let Some(img) = want.mem(&collar.name) {
            dirty_words += cur.mems[mi]
                .words
                .iter()
                .zip(&img.words)
                .filter(|(a, b)| a != b)
                .count() as u64;
        }
    }
    (dirty_segs, dirty_words)
}

impl HwTarget for FpgaTarget {
    fn name(&self) -> &str {
        "fpga"
    }

    fn caps(&self) -> TargetCaps {
        TargetCaps {
            kind: TargetKind::Fpga,
            full_visibility: false,
            readback: self.readback,
            clock_hz: 1_000_000_000 / self.model.ns_per_cycle.max(1),
        }
    }

    fn design_name(&self) -> &str {
        &self.design
    }

    fn reset(&mut self) {
        // Power-on / reconfiguration: fabric BRAM and flip-flops come up
        // zeroed, then the synchronous reset sequence runs.
        self.sim.clear_state();
        let _ = self.sim.poke(scan_ports::SCAN_ENABLE, 0);
        let _ = self.sim.poke(scan_ports::SCAN_IN, 0);
        let _ = self.sim.poke(axi_ports::RST, 1);
        self.sim.step(4);
        let _ = self.sim.poke(axi_ports::RST, 0);
        self.sim.step(1);
        self.charge_cycles(5);
    }

    fn step(&mut self, cycles: u64) {
        self.sim.step(cycles);
        self.charge_cycles(cycles);
    }

    fn cycle(&self) -> u64 {
        self.sim.cycle()
    }

    fn bus_read(&mut self, addr: u32) -> Result<u32, BusError> {
        self.rec.count(Counter::BusReads);
        let (v, cycles) = self.axi.read(&mut self.sim, addr)?;
        self.charge_cycles(cycles);
        self.vtime_ns += self.model.usb_latency_ns;
        Ok(v)
    }

    fn bus_write(&mut self, addr: u32, data: u32) -> Result<(), BusError> {
        self.rec.count(Counter::BusWrites);
        let cycles = self.axi.write(&mut self.sim, addr, data)?;
        self.charge_cycles(cycles);
        self.vtime_ns += self.model.usb_latency_ns;
        Ok(())
    }

    fn irq_lines(&mut self) -> u32 {
        // 0 only when the design genuinely has no IRQ port (resolved at
        // construction); for a design that has one, a failed peek is a
        // wiring bug and must be loud, never read as "no interrupt".
        match self.irq_net {
            Some(_) => self
                .sim
                .peek(axi_ports::IRQ)
                .expect("irq port resolved at construction")
                .bits() as u32,
            None => 0,
        }
    }

    fn save_snapshot(&mut self) -> Result<HwSnapshot, TargetError> {
        let span = self.rec.span("snapshot", "capture");
        let vtime_before = self.vtime_ns;
        let stream = self.scan_cycle_preserving();
        let values = self
            .chain
            .decode_words(&stream)
            .map_err(|e| TargetError::CorruptSnapshot(e.to_string()))?;
        let regs = self
            .chain
            .segments
            .iter()
            .zip(values)
            .map(|(seg, bits)| RegImage {
                name: seg.name.clone(),
                width: seg.width,
                bits,
            })
            .collect();
        let mems = self.collar_read_all();
        self.vtime_ns += self.model.scan_overhead_ns;
        self.rec.count(Counter::SnapshotsSaved);
        self.rec
            .observe(Metric::CaptureVtimeNs, self.vtime_ns - vtime_before);
        drop(span);
        let snap = HwSnapshot {
            design: self.design.clone(),
            cycle: self.sim.cycle(),
            regs,
            mems,
        };
        self.capture_checksum = snap.content_hash();
        Ok(snap)
    }

    fn set_delta_snapshots(&mut self, on: bool) {
        if self.delta_mode != on {
            self.delta_mode = on;
            // A mode change invalidates the golden base; the next
            // delta-mode capture ships a fresh full image.
            self.base = None;
        }
    }

    fn save_snapshot_delta(&mut self) -> Result<SnapshotCapture, TargetError> {
        if !self.delta_mode {
            return self
                .save_snapshot()
                .map(|s| SnapshotCapture::Full(Arc::new(s)));
        }
        let base = match &self.base {
            Some(b) => b.clone(),
            None => {
                // First capture establishes the golden base: full pass.
                let snap = Arc::new(self.save_snapshot()?);
                self.base = Some(snap.clone());
                return Ok(SnapshotCapture::Full(snap));
            }
        };
        let span = self.rec.span("snapshot", "capture_delta");
        let vtime_before = self.vtime_ns;
        // The controller observes state against its golden base and
        // ships only dirty segments / collar words; the modeled cost is
        // a partial-chain pass over exactly that activity.
        let cur = self.capture_via_scan_paths_silently();
        let mut dirty_segs = vec![false; self.chain.segments.len()];
        let mut delta = SnapshotDelta {
            regs: Vec::new(),
            mem_words: Vec::new(),
            cycle: cur.cycle,
        };
        for (i, (c, b)) in cur.regs.iter().zip(&base.regs).enumerate() {
            if c.bits != b.bits {
                dirty_segs[i] = true;
                delta.regs.push((i as u32, c.bits));
            }
        }
        for (mi, (cm, bm)) in cur.mems.iter().zip(&base.mems).enumerate() {
            for (wi, (&cw, &bw)) in cm.words.iter().zip(&bm.words).enumerate() {
                if cw != bw {
                    delta.mem_words.push((mi as u32, wi as u32, cw));
                }
            }
        }
        if delta.byte_size() * 4 >= base.byte_size() {
            // The delta stopped paying for itself: promote the current
            // image to a new golden base, charged as a full pass.
            self.charge_cycles(self.chain.shift_cycles() + self.chain.mem_words());
            self.vtime_ns += self.model.scan_overhead_ns;
            let snap = Arc::new(cur);
            self.capture_checksum = snap.content_hash();
            self.base = Some(snap.clone());
            self.rec.count(Counter::SnapshotsSaved);
            self.rec
                .observe(Metric::CaptureVtimeNs, self.vtime_ns - vtime_before);
            drop(span);
            return Ok(SnapshotCapture::Full(snap));
        }
        let dirty_words = delta.mem_words.len() as u64;
        self.charge_cycles(self.chain.partial_shift_cycles(&dirty_segs) + dirty_words);
        self.vtime_ns += self.model.scan_overhead_ns;
        self.rec.count(Counter::SnapshotsSaved);
        self.rec.count(Counter::DeltaSnapshotsSaved);
        let full = base.byte_size().max(1);
        self.rec.observe(
            Metric::SnapshotDirtyPermille,
            (delta.byte_size().min(full) * 1000 / full) as u64,
        );
        self.rec
            .observe(Metric::CaptureVtimeNs, self.vtime_ns - vtime_before);
        drop(span);
        Ok(SnapshotCapture::Delta { base, delta })
    }

    fn restore_snapshot(&mut self, snap: &HwSnapshot) -> Result<(), TargetError> {
        let span = self.rec.span("snapshot", "restore");
        let vtime_before = self.vtime_ns;
        if snap.design != self.design {
            return Err(TargetError::DesignMismatch {
                expected: snap.design.clone(),
                found: self.design.clone(),
            });
        }
        // Validate everything up front — registers AND memories — so the
        // restore is all-or-nothing: once shifting starts nothing below
        // can fail and leave the fabric half-loaded.
        let values = self.validate_restore_image(snap)?;
        let stream = self
            .chain
            .encode_words(&values)
            .map_err(|e| TargetError::CorruptSnapshot(e.to_string()))?;
        if self.delta_mode {
            // Partial-chain restore: diff the loaded state against the
            // requested image, shift only dirty segments through their
            // bypass muxes and rewrite only dirty collar words. The
            // state transfer itself is exact (full image in, modeled
            // silently); only the charged time is partial.
            let cur = self.capture_via_scan_paths_silently();
            let (dirty_segs, dirty_words) = diff_activity(&cur, snap, &self.chain);
            let saved_vtime = self.vtime_ns;
            self.scan_shift_in(&stream);
            self.collar_write_all(&snap.mems)?;
            self.vtime_ns = saved_vtime;
            self.charge_cycles(self.chain.partial_shift_cycles(&dirty_segs) + dirty_words);
        } else {
            self.scan_shift_in(&stream);
            self.collar_write_all(&snap.mems)?;
        }
        self.vtime_ns += self.model.scan_overhead_ns;
        self.rec.count(Counter::SnapshotsRestored);
        self.rec
            .observe(Metric::RestoreVtimeNs, self.vtime_ns - vtime_before);
        drop(span);
        Ok(())
    }

    fn restore_snapshot_lazy(&mut self, file: &SnapshotFile) -> Result<LazyRestore, TargetError> {
        let span = self.rec.span("snapshot", "restore_lazy");
        let vtime_before = self.vtime_ns;
        if file.kind() != ImageKind::Full {
            return Err(TargetError::Unsupported(
                "lazy restore needs a full snapshot file; resolve the delta chain first".into(),
            ));
        }
        let corrupt = |e: hardsnap_bus::PersistError| TargetError::CorruptSnapshot(e.to_string());
        let meta = file.meta().map_err(corrupt)?;
        if meta.design != self.design {
            return Err(TargetError::DesignMismatch {
                expected: meta.design,
                found: self.design.clone(),
            });
        }
        if meta.shape_hash != self.snapshot_shape() {
            return Err(TargetError::CorruptSnapshot(
                "snapshot file shape does not match the instrumented design".into(),
            ));
        }
        // Observe the loaded state through the scan paths (modeled
        // silently — the partial cost is charged below), then page in
        // only the file sections whose content hash differs from it.
        let cur = self.capture_via_scan_paths_silently();
        let mut want = cur.clone();
        let mut total = 0usize;
        let mut loaded = 0usize;
        let mut bytes = 0u64;
        for entry in file.sections() {
            match entry.tag {
                SectionTag::Regs => {
                    total += 1;
                    if entry.content_hash != regs_values_hash(want.regs.iter().map(|r| r.bits)) {
                        want.regs = file.load_regs().map_err(corrupt)?;
                        loaded += 1;
                        bytes += entry.len;
                    }
                }
                SectionTag::Mem => {
                    total += 1;
                    let idx = entry.index as usize;
                    let live = want.mems.get(idx).ok_or_else(|| {
                        TargetError::CorruptSnapshot(format!(
                            "memory section index {idx} out of range"
                        ))
                    })?;
                    if entry.content_hash != mem_words_hash(&live.words) {
                        want.mems[idx] = file.load_mem(entry.index).map_err(corrupt)?;
                        loaded += 1;
                        bytes += entry.len;
                    }
                }
                _ => {}
            }
        }
        // All-or-nothing from here on, exactly like the eager restore.
        let values = self.validate_restore_image(&want)?;
        let stream = self
            .chain
            .encode_words(&values)
            .map_err(|e| TargetError::CorruptSnapshot(e.to_string()))?;
        // The state transfer is exact (full image in, modeled silently);
        // the charged time is a partial-chain pass over the segments the
        // paged-in sections actually dirtied plus the dirty collar words.
        let (dirty_segs, dirty_words) = diff_activity(&cur, &want, &self.chain);
        let saved_vtime = self.vtime_ns;
        self.scan_shift_in(&stream);
        self.collar_write_all(&want.mems)?;
        self.vtime_ns = saved_vtime;
        self.charge_cycles(self.chain.partial_shift_cycles(&dirty_segs) + dirty_words);
        self.vtime_ns += self.model.scan_overhead_ns;
        self.rec.count(Counter::SnapshotsRestored);
        self.rec
            .observe(Metric::RestoreVtimeNs, self.vtime_ns - vtime_before);
        drop(span);
        Ok(LazyRestore {
            sections_total: total,
            sections_loaded: loaded,
            bytes_loaded: bytes,
        })
    }

    fn virtual_time_ns(&self) -> u64 {
        self.vtime_ns
    }

    fn fork_clean(&self) -> Result<Box<dyn HwTarget>, TargetError> {
        // Replicating a fabric = loading the same bitstream onto another
        // board: shares the elaborated netlist, starts at power-on.
        let sim = self.sim.fork_clean();
        let axi = AxiLite::bind(&sim)
            .map_err(|e| TargetError::CorruptSnapshot(format!("replica AXI bind: {e}")))?;
        Ok(Box::new(FpgaTarget {
            sim,
            axi,
            chain: self.chain.clone(),
            model: self.model,
            vtime_ns: 0,
            design: self.design.clone(),
            readback: self.readback,
            instrumented_name: self.instrumented_name.clone(),
            irq_net: self.irq_net,
            // Replicas inherit the capture mode but start from power-on
            // with no golden base.
            base: None,
            delta_mode: self.delta_mode,
            capture_checksum: 0,
            // Replicas go to other workers; each worker attaches its
            // own track's recorder.
            rec: Recorder::disabled(),
        }))
    }

    fn snapshot_shape(&self) -> u64 {
        // Mirrors `save_snapshot` exactly: registers in chain-segment
        // order, memories in collar order with their declared depths.
        hardsnap_bus::shape_hash_parts(
            &self.design,
            self.chain
                .segments
                .iter()
                .map(|seg| (seg.name.as_str(), seg.width)),
            self.chain
                .mems
                .iter()
                .map(|c| (c.name.as_str(), c.width, c.depth as usize)),
        )
    }

    fn capture_checksum(&self) -> u64 {
        // The scan controller IP checksums the chain as it shifts out;
        // the trailer arrives intact even when payload bits do not.
        self.capture_checksum
    }

    fn attach_recorder(&mut self, rec: &Recorder) {
        self.rec = rec.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardsnap_periph::regs;

    fn fpga() -> FpgaTarget {
        let mut t =
            FpgaTarget::new(hardsnap_periph::soc().unwrap(), &FpgaOptions::default()).unwrap();
        t.reset();
        t
    }

    #[test]
    fn lazy_restore_charges_partial_shift_per_paged_segment() {
        use hardsnap_bus::map::soc as m;
        let mut t = fpga();
        t.bus_write(m::TIMER_BASE + regs::timer::LOAD, 42).unwrap();
        t.step(5);
        let snap = t.save_snapshot().unwrap();
        let file = SnapshotFile::from_bytes(hardsnap_bus::persist::write_full(&snap)).unwrap();

        // Quiescent resume (fabric already holds the file's state): no
        // section is paged in, no segment is dirty, and the charge is
        // the fixed controller overhead alone — far below a full pass.
        t.restore_snapshot(&snap).unwrap();
        let v0 = t.virtual_time_ns();
        let st = t.restore_snapshot_lazy(&file).unwrap();
        assert_eq!(st.sections_loaded, 0);
        assert_eq!(t.virtual_time_ns() - v0, t.model().scan_overhead_ns);

        // Divergent resume: sections page in, dirty segments are shifted
        // partially, and the result is bit-exact against the saved image.
        t.bus_write(m::TIMER_BASE + regs::timer::LOAD, 7).unwrap();
        t.step(50);
        let v1 = t.virtual_time_ns();
        let st2 = t.restore_snapshot_lazy(&file).unwrap();
        assert!(st2.sections_loaded >= 1);
        let full_pass = (t.chain.shift_cycles() + t.chain.mem_words()) * t.model().ns_per_cycle
            + t.model().scan_overhead_ns;
        assert!(
            t.virtual_time_ns() - v1 < full_pass,
            "partial restore must undercut a full scan pass"
        );
        let back = t.save_snapshot().unwrap();
        assert_eq!(back.content_hash(), snap.content_hash());
    }

    #[test]
    fn fpga_runs_the_soc_through_the_bus() {
        use hardsnap_bus::map::soc as m;
        let mut t = fpga();
        t.bus_write(m::TIMER_BASE + regs::timer::LOAD, 7).unwrap();
        assert_eq!(t.bus_read(m::TIMER_BASE + regs::timer::VALUE).unwrap(), 7);
    }

    #[test]
    fn scan_save_preserves_running_state() {
        use hardsnap_bus::map::soc as m;
        let mut t = fpga();
        t.bus_write(m::TIMER_BASE + regs::timer::LOAD, 100_000)
            .unwrap();
        t.bus_write(m::TIMER_BASE + regs::timer::CTRL, regs::timer::CTRL_ENABLE)
            .unwrap();
        let v_before = t.bus_read(m::TIMER_BASE + regs::timer::VALUE).unwrap();
        let snap = t.save_snapshot().unwrap();
        // After the save, the design must still be running correctly
        // from exactly where it was (scan loop-back preserves state).
        let v_after = t.bus_read(m::TIMER_BASE + regs::timer::VALUE).unwrap();
        assert!(v_after < v_before, "timer still counting after save");
        assert!(snap.reg("u_timer.value").is_some());
    }

    #[test]
    fn scan_restore_rewinds_exactly() {
        use hardsnap_bus::map::soc as m;
        let mut t = fpga();
        t.bus_write(m::TIMER_BASE + regs::timer::LOAD, 100_000)
            .unwrap();
        t.bus_write(m::TIMER_BASE + regs::timer::CTRL, regs::timer::CTRL_ENABLE)
            .unwrap();
        t.step(50);
        let snap = t.save_snapshot().unwrap();
        let v_at_snap = snap.reg("u_timer.value").unwrap();
        t.step(5000);
        t.restore_snapshot(&snap).unwrap();
        let snap2 = t.save_snapshot().unwrap();
        assert_eq!(snap2.reg("u_timer.value").unwrap(), v_at_snap);
        // Full equality over every register and memory.
        assert!(
            snap.diff_regs(&snap2).is_empty(),
            "diff: {:?}",
            snap.diff_regs(&snap2)
        );
        assert_eq!(snap.mems, snap2.mems);
    }

    #[test]
    fn snapshot_covers_memories_via_collar() {
        use hardsnap_bus::map::soc as m;
        let mut t = fpga();
        // Load a SHA block: lands in u_sha.w_mem.
        for i in 0..16u32 {
            t.bus_write(m::SHA_BASE + regs::sha256::BLOCK0 + 4 * i, 0x1111_0000 + i)
                .unwrap();
        }
        let snap = t.save_snapshot().unwrap();
        let w = snap.mem("u_sha.w_mem").unwrap();
        assert_eq!(w.words[0], 0x1111_0000);
        assert_eq!(w.words[15], 0x1111_000f);
    }

    #[test]
    fn visibility_firewall_blocks_internal_nets() {
        let mut t = fpga();
        assert!(t.port_peek("irq").is_ok());
        assert!(
            t.port_peek("u_timer.value").is_err(),
            "internal net must be invisible"
        );
        assert!(t.port_poke("u_timer.value", 0).is_err());
        assert!(t.port_poke("irq", 1).is_err(), "outputs are not drivable");
    }

    #[test]
    fn readback_requires_highend_fabric() {
        let mut t = fpga();
        assert!(matches!(
            t.save_via_readback(),
            Err(TargetError::Unsupported(_))
        ));
        let mut hi = FpgaTarget::new(
            hardsnap_periph::soc().unwrap(),
            &FpgaOptions {
                readback: true,
                ..Default::default()
            },
        )
        .unwrap();
        hi.reset();
        let scan_snap = hi.save_snapshot().unwrap();
        let rb_snap = hi.save_via_readback().unwrap();
        assert!(
            scan_snap.diff_regs(&rb_snap).is_empty(),
            "readback and scan must agree"
        );
    }

    #[test]
    fn virtual_time_scales_with_shift_cycles() {
        let mut t = fpga();
        let cycles = t.chain_map().shift_cycles();
        let words = t.chain_map().mem_words();
        let m = t.model();
        let t0 = t.virtual_time_ns();
        let _ = t.save_snapshot().unwrap();
        let elapsed = t.virtual_time_ns() - t0;
        let expected = (cycles + words) * m.ns_per_cycle + m.scan_overhead_ns;
        assert_eq!(elapsed, expected);
    }

    #[test]
    fn wide_chain_batches_whole_words_per_cycle() {
        // The same design with a 1-lane and the default 32-lane chain:
        // identical snapshots, ~32x fewer scan cycles per save.
        let mut serial = FpgaTarget::new(
            hardsnap_periph::soc().unwrap(),
            &FpgaOptions {
                scan: ScanOptions {
                    width: 1,
                    ..ScanOptions::default()
                },
                ..FpgaOptions::default()
            },
        )
        .unwrap();
        serial.reset();
        let mut wide = fpga();
        assert_eq!(wide.chain_map().lanes(), 32);
        assert_eq!(
            wide.chain_map().chain_bits(),
            serial.chain_map().chain_bits(),
            "lanes add pad cells, never chain segments"
        );
        assert_eq!(
            wide.chain_map().shift_cycles(),
            wide.chain_map().total_cells() / 32
        );

        use hardsnap_bus::map::soc as m;
        for t in [&mut serial, &mut wide] {
            t.bus_write(m::TIMER_BASE + regs::timer::LOAD, 1234)
                .unwrap();
            t.bus_write(m::TIMER_BASE + regs::timer::CTRL, regs::timer::CTRL_ENABLE)
                .unwrap();
            t.step(17);
        }
        let t0s = serial.virtual_time_ns();
        let t0w = wide.virtual_time_ns();
        let snap_serial = serial.save_snapshot().unwrap();
        let snap_wide = wide.save_snapshot().unwrap();
        assert!(
            snap_serial.diff_regs(&snap_wide).is_empty(),
            "lane count must not change snapshot content: {:?}",
            snap_serial.diff_regs(&snap_wide)
        );
        // Scan portion shrinks by the lane factor (fixed overheads and
        // collar words are unchanged).
        let scan_serial = serial.virtual_time_ns() - t0s;
        let scan_wide = wide.virtual_time_ns() - t0w;
        assert!(
            scan_wide < scan_serial,
            "wide chain must be faster: {scan_wide} vs {scan_serial}"
        );
        let mdl = wide.model();
        let saved = scan_serial - scan_wide;
        let expected_saved = (serial.chain_map().shift_cycles() - wide.chain_map().shift_cycles())
            * mdl.ns_per_cycle;
        assert_eq!(saved, expected_saved);

        // And the wide image restores exactly (pad bits are discarded).
        wide.step(5000);
        wide.restore_snapshot(&snap_wide).unwrap();
        let back = wide.save_snapshot().unwrap();
        assert!(back.diff_regs(&snap_wide).is_empty());
    }

    #[test]
    fn charge_cycles_saturates_instead_of_overflowing() {
        let mut t = FpgaTarget::new(
            hardsnap_periph::soc().unwrap(),
            &FpgaOptions {
                model: Some(FpgaTimeModel {
                    ns_per_cycle: u64::MAX,
                    ..FpgaTimeModel::default()
                }),
                ..FpgaOptions::default()
            },
        )
        .unwrap();
        // reset() charges 5 cycles; 5 * u64::MAX must clamp, not wrap
        // (or panic in debug builds).
        t.reset();
        assert_eq!(t.virtual_time_ns(), u64::MAX);
    }

    #[test]
    fn restore_is_all_or_nothing() {
        use hardsnap_bus::map::soc as m;
        let mut t = fpga();
        t.bus_write(m::TIMER_BASE + regs::timer::LOAD, 4321)
            .unwrap();
        let good = t.save_snapshot().unwrap();
        t.step(100);
        let before = t.save_snapshot().unwrap();

        // An out-of-range register value is rejected up front...
        let mut bad = good.clone();
        let w = bad.regs[0].width;
        bad.regs[0].bits = 1u64 << w.min(63);
        assert!(matches!(
            t.restore_snapshot(&bad),
            Err(TargetError::CorruptSnapshot(_))
        ));
        // ...as is a truncated memory image...
        let mut bad2 = good.clone();
        bad2.mems[0].words.pop();
        assert!(matches!(
            t.restore_snapshot(&bad2),
            Err(TargetError::CorruptSnapshot(_))
        ));
        // ...and in both cases the fabric was left untouched.
        let after = t.save_snapshot().unwrap();
        assert!(after.diff_regs(&before).is_empty());
        assert_eq!(after.mems, before.mems);
    }

    #[test]
    fn delta_mode_shifts_only_dirty_scan_segments() {
        use hardsnap_bus::map::soc as m;
        let mut t = fpga();
        t.set_delta_snapshots(true);
        t.bus_write(m::TIMER_BASE + regs::timer::LOAD, 100_000)
            .unwrap();
        t.bus_write(m::TIMER_BASE + regs::timer::CTRL, regs::timer::CTRL_ENABLE)
            .unwrap();

        // First capture ships the full golden base.
        let first = t.save_snapshot_delta().unwrap();
        assert!(matches!(first, SnapshotCapture::Full(_)));
        let mdl = t.model();
        let full_cost = (t.chain_map().shift_cycles() + t.chain_map().mem_words())
            * mdl.ns_per_cycle
            + mdl.scan_overhead_ns;

        // A few quiet cycles only tick the timer: the next capture is a
        // small delta, and its modeled vtime is a partial-chain pass —
        // far below the full pass.
        t.step(3);
        let v0 = t.virtual_time_ns();
        let cap = t.save_snapshot_delta().unwrap();
        let delta_cost = t.virtual_time_ns() - v0;
        match &cap {
            SnapshotCapture::Delta { delta, .. } => {
                assert!(!delta.regs.is_empty(), "timer ticked, so something changed");
                assert!(
                    delta_cost < full_cost,
                    "partial pass {delta_cost} must beat full pass {full_cost}"
                );
            }
            SnapshotCapture::Full(_) => panic!("3 quiet cycles must not force a rebase"),
        }

        // Materializing the delta is bit-identical to a full save taken
        // at the same point.
        let img = cap.materialize().unwrap();
        let full = t.save_snapshot().unwrap();
        assert!(
            img.diff_regs(&full).is_empty(),
            "diff: {:?}",
            img.diff_regs(&full)
        );
        assert_eq!(img.mems, full.mems);

        // A delta-mode restore from a nearby state also charges a
        // partial pass.
        t.step(50);
        let v1 = t.virtual_time_ns();
        t.restore_snapshot(&img).unwrap();
        assert!(t.virtual_time_ns() - v1 < full_cost);
        let back = t.save_snapshot().unwrap();
        assert!(back.diff_regs(&img).is_empty());
    }

    #[test]
    fn fork_clean_replicates_the_fabric() {
        use hardsnap_bus::map::soc as m;
        let mut t = fpga();
        t.bus_write(m::TIMER_BASE + regs::timer::LOAD, 77).unwrap();
        let mut r = t.fork_clean().unwrap();
        assert_eq!(r.cycle(), 0, "replica starts at power-on");
        r.reset();
        assert_eq!(
            r.bus_read(m::TIMER_BASE + regs::timer::VALUE).unwrap(),
            0,
            "replica state is independent of the parent"
        );
        // Snapshots interchange between parent and replica.
        let snap = t.save_snapshot().unwrap();
        r.restore_snapshot(&snap).unwrap();
        assert_eq!(r.bus_read(m::TIMER_BASE + regs::timer::VALUE).unwrap(), 77);
    }

    #[test]
    fn snapshot_interchanges_with_simulator_target() {
        use hardsnap_bus::map::soc as m;
        use hardsnap_bus::transfer_state;
        use hardsnap_sim::SimTarget;
        // Run on the FPGA, transfer to the simulator, continue there.
        let mut f = fpga();
        f.bus_write(m::TIMER_BASE + regs::timer::LOAD, 1000)
            .unwrap();
        f.bus_write(
            m::TIMER_BASE + regs::timer::CTRL,
            regs::timer::CTRL_ENABLE | regs::timer::CTRL_ONESHOT | regs::timer::CTRL_IRQ_EN,
        )
        .unwrap();
        f.step(500);
        let mut s = SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap();
        s.reset();
        let snap = transfer_state(&mut f, &mut s).unwrap();
        assert_eq!(snap.design, "soc_top");
        // The simulator continues the countdown and raises the IRQ.
        assert_eq!(s.irq_lines(), 0);
        s.step(600);
        assert_eq!(s.irq_lines() & 0b0010, 0b0010);
        // And the reverse direction: simulator -> FPGA.
        let mut f2 = fpga();
        let snap2 = transfer_state(&mut s, &mut f2).unwrap();
        assert_eq!(
            f2.irq_lines() & 0b0010,
            0b0010,
            "irq state transferred back"
        );
        let _ = snap2;
    }
}
