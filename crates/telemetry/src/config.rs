//! Telemetry configuration, parsed once per process.
//!
//! The single knob is `HARDSNAP_TELEMETRY`, a comma-separated list:
//!
//! * `on` / `1` / `metrics` — enable the recorder (counters,
//!   histograms, spans; exporters become available);
//! * `io` — log every replayed bus transaction to stderr (what the
//!   legacy `HARDSNAP_TRACE_IO` flag did);
//! * `off` / `0` — force everything off, overriding other tokens.
//!
//! `HARDSNAP_TRACE_IO` is deprecated but still honored when
//! `HARDSNAP_TELEMETRY` is unset. Programmatic users (the CLI's
//! `--trace-out`, tests) bypass the env entirely by constructing a
//! `TelemetryConfig` by hand and placing it in `EngineConfig`.

use std::sync::OnceLock;

/// What the telemetry layer should collect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record counters, histograms and spans; attach exporters.
    pub enabled: bool,
    /// Log replayed bus I/O to stderr (successor of
    /// `HARDSNAP_TRACE_IO`).
    pub trace_io: bool,
}

impl TelemetryConfig {
    /// Everything off: records nothing, costs one branch per hook.
    pub const OFF: TelemetryConfig = TelemetryConfig {
        enabled: false,
        trace_io: false,
    };

    /// Recorder on, I/O logging off.
    pub const ON: TelemetryConfig = TelemetryConfig {
        enabled: true,
        trace_io: false,
    };

    /// Parse from the process environment (uncached).
    pub fn from_env() -> TelemetryConfig {
        let mut cfg = TelemetryConfig::OFF;
        match std::env::var("HARDSNAP_TELEMETRY") {
            Ok(spec) => {
                let mut force_off = false;
                for tok in spec.split(',') {
                    match tok.trim() {
                        "" => {}
                        "on" | "1" | "metrics" => cfg.enabled = true,
                        "io" => cfg.trace_io = true,
                        "off" | "0" => force_off = true,
                        other => {
                            eprintln!("[telemetry] ignoring unknown HARDSNAP_TELEMETRY token {other:?} (known: on, off, metrics, io)");
                        }
                    }
                }
                if force_off {
                    cfg = TelemetryConfig::OFF;
                }
            }
            Err(_) => {
                // Deprecated fallback, kept so existing invocations
                // don't silently lose their I/O logs.
                if std::env::var("HARDSNAP_TRACE_IO").is_ok_and(|v| v != "0") {
                    cfg.trace_io = true;
                }
            }
        }
        cfg
    }
}

impl Default for TelemetryConfig {
    /// The process-wide env-derived config — `EngineConfig::default()`
    /// picks this up so `HARDSNAP_TELEMETRY=on` works without code
    /// changes.
    fn default() -> Self {
        *global()
    }
}

/// The env-derived config, parsed once and cached for the process
/// lifetime.
pub fn global() -> &'static TelemetryConfig {
    static GLOBAL: OnceLock<TelemetryConfig> = OnceLock::new();
    GLOBAL.get_or_init(TelemetryConfig::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var manipulation is process-global, so keep it in one test.
    #[test]
    fn parse_tokens() {
        // SAFETY/test-hygiene: set_var is fine here — tests in this
        // crate that read the env go through from_env() directly, and
        // the cached `global()` is never consulted by this test.
        std::env::set_var("HARDSNAP_TELEMETRY", "on,io");
        let cfg = TelemetryConfig::from_env();
        assert!(cfg.enabled && cfg.trace_io);

        std::env::set_var("HARDSNAP_TELEMETRY", "metrics");
        let cfg = TelemetryConfig::from_env();
        assert!(cfg.enabled && !cfg.trace_io);

        std::env::set_var("HARDSNAP_TELEMETRY", "on,off");
        assert_eq!(TelemetryConfig::from_env(), TelemetryConfig::OFF);

        std::env::remove_var("HARDSNAP_TELEMETRY");
        std::env::set_var("HARDSNAP_TRACE_IO", "1");
        let cfg = TelemetryConfig::from_env();
        assert!(!cfg.enabled && cfg.trace_io);

        std::env::remove_var("HARDSNAP_TRACE_IO");
        assert_eq!(TelemetryConfig::from_env(), TelemetryConfig::OFF);
    }
}
