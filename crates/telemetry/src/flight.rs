//! Bounded in-memory flight recorder.
//!
//! A ring buffer of the most recent observability events, kept by the
//! campaign daemon so that a crash (panic, SIGTERM, watchdog kill of
//! the process) leaves a post-mortem trail on disk next to the job
//! journal. The ring is strictly bounded: when full, the oldest entry
//! is evicted and counted, never blocking or growing. Entries carry a
//! monotonic sequence number so a reader can tell exactly how much
//! history was shed.

use hardsnap_util::json::{write_escaped, Value};
use hardsnap_util::sync::Mutex;
use std::collections::VecDeque;

/// One recorded entry: a sequenced, timestamped, pre-rendered event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// Monotonic sequence number (never reused, gaps = evictions
    /// happened before this entry was captured by a dump).
    pub seq: u64,
    /// Milliseconds since the recorder was created.
    pub ts_ms: u64,
    /// Event kind tag (e.g. `"admitted"`, `"terminal"`, `"panic"`).
    pub kind: String,
    /// Free-form detail — the daemon stores the event's JSON here.
    pub detail: String,
}

struct FlightInner {
    next_seq: u64,
    dropped: u64,
    entries: VecDeque<FlightEntry>,
}

/// Fixed-capacity ring of recent [`FlightEntry`] records.
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<FlightInner>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(FlightInner {
                next_seq: 0,
                dropped: 0,
                entries: VecDeque::new(),
            }),
        }
    }

    /// Maximum number of entries retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append an entry, evicting the oldest if the ring is full.
    pub fn push(&self, ts_ms: u64, kind: &str, detail: String) {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.entries.len() == self.capacity {
            inner.entries.pop_front();
            inner.dropped += 1;
        }
        inner.entries.push_back(FlightEntry {
            seq,
            ts_ms,
            kind: kind.to_string(),
            detail,
        });
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Serialize the ring as JSON (schema `hardsnap-flight-v1`):
    /// capacity, evicted count, and the retained entries oldest-first.
    pub fn dump_json(&self) -> String {
        let inner = self.inner.lock();
        let mut out = format!(
            "{{\n  \"schema\": \"hardsnap-flight-v1\",\n  \"capacity\": {},\n  \
             \"dropped\": {},\n  \"entries\": [\n",
            self.capacity, inner.dropped
        );
        for (i, e) in inner.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let mut kind = String::new();
            write_escaped(&e.kind, &mut kind);
            let mut detail = String::new();
            write_escaped(&e.detail, &mut detail);
            out.push_str(&format!(
                "    {{\"seq\": {}, \"ts_ms\": {}, \"kind\": {kind}, \"detail\": {detail}}}",
                e.seq, e.ts_ms
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// The dump as a parsed [`Value`] tree (what the `dump-flight`
    /// verb puts on the wire).
    pub fn to_value(&self) -> Value {
        hardsnap_util::json::parse(&self.dump_json()).expect("dump_json is well-formed")
    }
}

/// Validate a parsed flight dump: schema tag, bounded entry list,
/// strictly increasing sequence numbers, required fields. Returns a
/// message naming the offending field on failure.
pub fn validate_flight_dump(v: &Value) -> Result<(), String> {
    match v.get("schema").and_then(Value::as_str) {
        Some("hardsnap-flight-v1") => {}
        Some(other) => return Err(format!("unsupported flight schema {other:?}")),
        None => return Err("missing \"schema\" field".into()),
    }
    let capacity = v
        .get("capacity")
        .and_then(Value::as_u64)
        .ok_or("\"capacity\" must be a non-negative integer")?;
    v.get("dropped")
        .and_then(Value::as_u64)
        .ok_or("\"dropped\" must be a non-negative integer")?;
    let entries = v
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or("\"entries\" must be an array")?;
    if entries.len() as u64 > capacity {
        return Err(format!(
            "{} entries exceed declared capacity {capacity}",
            entries.len()
        ));
    }
    let mut prev_seq: Option<u64> = None;
    for (i, e) in entries.iter().enumerate() {
        let seq = e
            .get("seq")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("entries[{i}].seq must be a non-negative integer"))?;
        e.get("ts_ms")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("entries[{i}].ts_ms must be a non-negative integer"))?;
        e.get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("entries[{i}].kind must be a string"))?;
        e.get("detail")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("entries[{i}].detail must be a string"))?;
        if let Some(p) = prev_seq {
            if seq <= p {
                return Err(format!("entries[{i}].seq {seq} not increasing (prev {p})"));
            }
        }
        prev_seq = Some(seq);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_stays_bounded_and_counts_evictions() {
        let fr = FlightRecorder::new(4);
        for i in 0..10u64 {
            fr.push(i, "tick", format!("{{\"n\": {i}}}"));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.dropped(), 6);
        let v = fr.to_value();
        validate_flight_dump(&v).unwrap();
        let entries = v.get("entries").unwrap().as_arr().unwrap();
        // Oldest retained entry is seq 6 (0..=5 evicted).
        assert_eq!(entries[0].get("seq").unwrap().as_u64(), Some(6));
        assert_eq!(entries[3].get("seq").unwrap().as_u64(), Some(9));
    }

    #[test]
    fn dump_parses_and_validates() {
        let fr = FlightRecorder::new(16);
        fr.push(0, "started", "{}".into());
        fr.push(5, "admitted", "{\"id\": 1}".into());
        let v = fr.to_value();
        validate_flight_dump(&v).unwrap();
        assert_eq!(v.get("capacity").unwrap().as_u64(), Some(16));
        assert_eq!(v.get("dropped").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn validator_rejects_malformed() {
        let over = hardsnap_util::json::parse(
            "{\"schema\": \"hardsnap-flight-v1\", \"capacity\": 1, \"dropped\": 0, \
             \"entries\": [{\"seq\": 0, \"ts_ms\": 0, \"kind\": \"a\", \"detail\": \"\"}, \
             {\"seq\": 1, \"ts_ms\": 0, \"kind\": \"b\", \"detail\": \"\"}]}",
        )
        .unwrap();
        assert!(validate_flight_dump(&over)
            .unwrap_err()
            .contains("capacity"));
        let bad_seq = hardsnap_util::json::parse(
            "{\"schema\": \"hardsnap-flight-v1\", \"capacity\": 8, \"dropped\": 0, \
             \"entries\": [{\"seq\": 3, \"ts_ms\": 0, \"kind\": \"a\", \"detail\": \"\"}, \
             {\"seq\": 3, \"ts_ms\": 0, \"kind\": \"b\", \"detail\": \"\"}]}",
        )
        .unwrap();
        assert!(validate_flight_dump(&bad_seq)
            .unwrap_err()
            .contains("not increasing"));
    }
}
