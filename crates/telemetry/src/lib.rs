//! # hardsnap-telemetry
//!
//! Structured observability for the HardSnap reproduction: where does
//! the time go — snapshot capture/restore, scan shifting, context
//! switches, fault recovery, or symbolic execution? (The paper's §V
//! cost breakdown asks exactly this.)
//!
//! Three primitives, recorded through a per-worker [`Recorder`]:
//!
//! * **counters** — monotonically increasing event tallies, indexed by
//!   the [`Counter`] enum for hot-path speed (one array slot, one
//!   relaxed atomic add);
//! * **histograms** — log2-bucketed distributions ([`Metric`]), used
//!   for both *virtual-time* latencies (deterministic, from the target
//!   cost models) and value distributions like quantum sizes;
//! * **spans** — begin/end intervals stamped with *wall-clock* time
//!   and a track id (worker replica), exported in Chrome
//!   `trace_event` format for Perfetto / `about://tracing`.
//!
//! ## Zero-cost when disabled, deterministic when enabled
//!
//! A disabled `Recorder` is `None` inside: every record call is one
//! branch on an `Option` discriminant and no `Instant::now()` is ever
//! taken. Crucially, telemetry is **observe-only**: nothing the
//! recorder collects feeds back into engine decisions, so canonical
//! digests are bit-identical with telemetry on or off, at any worker
//! count. Wall-clock values exist only in the exporter side-channel.
//!
//! Configuration is parsed once from `HARDSNAP_TELEMETRY` (see
//! [`TelemetryConfig`]); the legacy `HARDSNAP_TRACE_IO` flag is still
//! honored for bus I/O logging.

#![warn(missing_docs)]

mod config;
mod export;
mod flight;
mod prom;
mod recorder;

pub use config::{global, TelemetryConfig};
pub use export::MetricsSnapshot;
pub use flight::{validate_flight_dump, FlightEntry, FlightRecorder};
pub use prom::{
    parse_prometheus, prom_name, prometheus_text, validate_exposition, PromError, PromFamily,
    PromSample,
};
pub use recorder::{
    bucket_index, bucket_lower_bound, Counter, FaultClass, HistSnapshot, Metric, Recorder,
    SpanEvent, SpanGuard,
};
