//! The per-worker recorder: counters, log2 histograms, spans.
//!
//! Design constraints, in order:
//!
//! 1. **Zero-cost when disabled.** `Recorder` is a newtype over
//!    `Option<Arc<Inner>>`; a disabled recorder records nothing and
//!    never calls `Instant::now()`. Hot hooks cost one branch.
//! 2. **Lock-free-ish when enabled.** Counters and histogram buckets
//!    are relaxed atomics (a recorder may be shared between an engine,
//!    its supervisor and its target, all on the same worker thread, so
//!    contention is nil — the atomics buy `Sync` without a lock).
//!    Spans append under a `Mutex` that is only ever contended at
//!    snapshot time.
//! 3. **Determinism-safe.** Nothing here is readable by the engine
//!    while it runs; wall-clock timestamps exist only inside span
//!    events, which only exporters consume.

use hardsnap_util::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Number of log2 buckets per histogram. Bucket 0 holds exact zeros;
/// bucket `i >= 1` holds values in `[2^(i-1), 2^i)`; the last bucket
/// absorbs everything above.
pub const BUCKETS: usize = 64;

/// Bucket index for a value: 0 for 0, otherwise `floor(log2(v)) + 1`,
/// clamped to the last bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of a bucket (0, 1, 2, 4, 8, ...).
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

macro_rules! enum_metric {
    ($(#[$doc:meta])* $name:ident { $($(#[$vdoc:meta])* $variant:ident => $label:literal,)* }) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum $name {
            $($(#[$vdoc])* $variant,)*
        }

        impl $name {
            /// Every variant, in declaration (and export) order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)*];

            /// Number of variants (array sizing).
            pub const COUNT: usize = $name::ALL.len();

            /// snake_case name used by exporters.
            pub fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $label,)*
                }
            }
        }
    };
}

enum_metric! {
    /// Named event counters. Kept as an enum (not strings) so the hot
    /// path is an array index, not a map lookup.
    Counter {
        /// Algorithm-1 `switch_target` handoffs (UpdateState +
        /// RestoreState pairs).
        ContextSwitches => "context_switches",
        /// Hardware snapshot captures (UpdateState).
        SnapshotsSaved => "snapshots_saved",
        /// Hardware snapshot restores (RestoreState).
        SnapshotsRestored => "snapshots_restored",
        /// Captures that shipped as a delta against a shared base
        /// instead of a full image.
        DeltaSnapshotsSaved => "delta_snapshots_saved",
        /// Scheduler quanta executed.
        Quanta => "quanta",
        /// MMIO reads forwarded to the target.
        BusReads => "bus_reads",
        /// MMIO writes forwarded to the target.
        BusWrites => "bus_writes",
        /// Interrupts delivered to the CPU.
        IrqsDelivered => "irqs_delivered",
        /// Scan-chain shift passes (FPGA backend).
        ScanShifts => "scan_shifts",
        /// Full reboots (NaiveConsistent reboot+replay).
        Reboots => "reboots",
        /// Transport operations retried by the supervisor.
        Retries => "retries",
        /// Operations that eventually succeeded after retries.
        Recovered => "recovered",
        /// Replicas quarantined and rebuilt.
        Quarantines => "quarantines",
        /// Faults injected by a `FaultyTarget` transport.
        FaultsInjected => "faults_injected",
        /// Bytecode-simulator comb ops executed (dirty blocks only).
        SimOpsExecuted => "sim.ops_executed",
        /// Bytecode-simulator comb ops skipped by activity scheduling.
        SimOpsSkipped => "sim.ops_skipped",
        /// Campaign-service jobs admitted (scheduled or queued).
        JobsAdmitted => "serve.jobs_admitted",
        /// Campaign-service submissions rejected with `Saturated`.
        JobsRejected => "serve.jobs_rejected",
        /// Campaign-service jobs that reached a terminal verdict.
        JobsCompleted => "serve.jobs_completed",
        /// Campaign-service jobs cancelled (watchdog or client).
        JobsCancelled => "serve.jobs_cancelled",
        /// In-flight jobs recovered after a daemon restart.
        JobsRecovered => "serve.jobs_recovered",
        /// Running jobs cancelled by the daemon watchdog (wall-clock
        /// deadline exceeded).
        ServeWatchdogCancels => "serve.watchdog_cancels",
        /// Lifecycle/progress events published on the daemon event bus.
        ServeEventsPublished => "serve.events_published",
        /// Events dropped because a subscriber queue was full (the bus
        /// never blocks the runner; it sheds load and counts it).
        ServeEventsDropped => "serve.events_dropped",
        /// Metrics snapshots served (`metrics` verb or Prometheus
        /// scrape).
        ServeMetricsScrapes => "serve.metrics_scrapes",
        /// Flight-recorder dumps written (verb, SIGTERM, or panic).
        ServeFlightDumps => "serve.flight_dumps",
        /// Jobs that leased a pre-armed warm-pool replica instead of
        /// cold-booting one.
        ServePoolHits => "serve.pool_hits",
        /// Jobs that wanted a warm replica but fell back to a cold
        /// boot (pool empty, disabled, or shape mismatch).
        ServePoolMisses => "serve.pool_misses",
        /// Warm-pool replicas re-armed (restored back to the baseline
        /// snapshot) after a lease was returned.
        ServePoolRearms => "serve.pool_rearms",
        /// Warm-pool arm/re-arm attempts that failed (the replica is
        /// retired; the pool shrinks rather than leasing bad state).
        ServePoolRearmFails => "serve.pool_rearm_fails",
    }
}

enum_metric! {
    /// Named log2-bucketed histograms. Virtual-time metrics are
    /// deterministic (they come from the target cost models);
    /// wall-time lives only in spans.
    Metric {
        /// Virtual nanoseconds charged per snapshot capture.
        CaptureVtimeNs => "capture_vtime_ns",
        /// Virtual nanoseconds charged per snapshot restore.
        RestoreVtimeNs => "restore_vtime_ns",
        /// Per-capture dirty fraction: delta bytes as a permille of the
        /// full image size (1000 = a full capture).
        SnapshotDirtyPermille => "snapshot_dirty_permille",
        /// Scan-chain cycles per shift pass (FPGA backend).
        ScanShiftCycles => "scan_shift_cycles",
        /// Instructions retired per scheduler quantum.
        QuantumInstructions => "quantum_instructions",
        /// Virtual nanoseconds of backoff charged per retry pause.
        BackoffNs => "backoff_ns",
        /// Recovery latency (charged vtime) for bus-timeout faults.
        RecoveryVtimeBusTimeout => "recovery_vtime_ns.bus_timeout",
        /// Recovery latency (charged vtime) for not-ready/hang faults.
        RecoveryVtimeNotReady => "recovery_vtime_ns.not_ready",
        /// Recovery latency (charged vtime) for corrupt-capture faults.
        RecoveryVtimeCorruptCapture => "recovery_vtime_ns.corrupt_capture",
        /// Recovery latency (charged vtime) for restore-path faults.
        RecoveryVtimeRestore => "recovery_vtime_ns.restore",
        /// Attempts needed to recover from bus-timeout faults.
        RecoveryRetriesBusTimeout => "recovery_retries.bus_timeout",
        /// Attempts needed to recover from not-ready/hang faults.
        RecoveryRetriesNotReady => "recovery_retries.not_ready",
        /// Attempts needed to recover from corrupt-capture faults.
        RecoveryRetriesCorruptCapture => "recovery_retries.corrupt_capture",
        /// Attempts needed to recover from restore-path faults.
        RecoveryRetriesRestore => "recovery_retries.restore",
        /// Recovery latency (charged vtime) for glitched IRQ polls.
        RecoveryVtimeIrqGlitch => "recovery_vtime_ns.irq_glitch",
        /// Samples needed to settle a glitched IRQ poll.
        RecoveryRetriesIrqGlitch => "recovery_retries.irq_glitch",
        /// Comb ops executed per simulator `step()` (dirty-cone
        /// activity; 0 for a fully quiescent cycle).
        SimCombOpsPerStep => "sim.comb_ops_per_step",
        /// Campaign-service queue depth sampled at each admission (a
        /// distribution; the instantaneous depth is the
        /// `serve.queue_depth` gauge).
        ServeQueueDepth => "serve.queue_depth_at_admission",
        /// Virtual queue-wait: milliseconds between a job's submission
        /// and its first leg starting.
        ServeQueueWaitMs => "serve.queue_wait_ms",
        /// Wall-clock microseconds per crash-atomic journal write
        /// (tmp + fsync + rename).
        ServeJournalFsyncUs => "serve.journal_fsync_us",
        /// Queue wait (ms) for jobs admitted into priority lane 0
        /// (lowest). One histogram per lane so starvation shows up as
        /// a fat tail on exactly the lane suffering it.
        ServeQueueWaitLane0Ms => "serve.queue_wait_ms.lane0",
        /// Queue wait (ms) for lane 1.
        ServeQueueWaitLane1Ms => "serve.queue_wait_ms.lane1",
        /// Queue wait (ms) for lane 2.
        ServeQueueWaitLane2Ms => "serve.queue_wait_ms.lane2",
        /// Queue wait (ms) for lane 3 (the default submission lane).
        ServeQueueWaitLane3Ms => "serve.queue_wait_ms.lane3",
        /// Queue wait (ms) for lane 4.
        ServeQueueWaitLane4Ms => "serve.queue_wait_ms.lane4",
        /// Queue wait (ms) for lane 5.
        ServeQueueWaitLane5Ms => "serve.queue_wait_ms.lane5",
        /// Queue wait (ms) for lane 6.
        ServeQueueWaitLane6Ms => "serve.queue_wait_ms.lane6",
        /// Queue wait (ms) for lane 7 (highest priority).
        ServeQueueWaitLane7Ms => "serve.queue_wait_ms.lane7",
        /// Wall-clock microseconds per warm-pool re-arm (power-on
        /// reset + lazy restore from the baseline snapshot). Runs off
        /// the critical path; this histogram proves it stays cheap.
        ServePoolRearmUs => "serve.pool_rearm_us",
    }
}

impl Metric {
    /// The per-lane queue-wait histogram for `lane` (clamped to the
    /// highest lane).
    pub fn queue_wait_lane(lane: u64) -> Metric {
        match lane {
            0 => Metric::ServeQueueWaitLane0Ms,
            1 => Metric::ServeQueueWaitLane1Ms,
            2 => Metric::ServeQueueWaitLane2Ms,
            3 => Metric::ServeQueueWaitLane3Ms,
            4 => Metric::ServeQueueWaitLane4Ms,
            5 => Metric::ServeQueueWaitLane5Ms,
            6 => Metric::ServeQueueWaitLane6Ms,
            _ => Metric::ServeQueueWaitLane7Ms,
        }
    }
}

/// Coarse classification of a recoverable transport fault, used to
/// pick the per-kind recovery histograms. The supervisor classifies
/// by *observed error*, which is the honest view: a scan bit flip and
/// a truncated capture both surface as a corrupt capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Bus handshake timed out.
    BusTimeout,
    /// Target not ready / wedged (hang-like).
    NotReady,
    /// Capture failed integrity validation (bit flip, truncation).
    CorruptCapture,
    /// Failure on the restore path.
    Restore,
    /// IRQ-line poll observed a glitched bitmask and was re-sampled.
    IrqGlitch,
}

impl FaultClass {
    /// All classes, in export order.
    pub const ALL: &'static [FaultClass] = &[
        FaultClass::BusTimeout,
        FaultClass::NotReady,
        FaultClass::CorruptCapture,
        FaultClass::Restore,
        FaultClass::IrqGlitch,
    ];

    /// Human label (matches the metric name suffix).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::BusTimeout => "bus_timeout",
            FaultClass::NotReady => "not_ready",
            FaultClass::CorruptCapture => "corrupt_capture",
            FaultClass::Restore => "restore",
            FaultClass::IrqGlitch => "irq_glitch",
        }
    }

    /// Histogram of charged recovery vtime for this class.
    pub fn latency_metric(self) -> Metric {
        match self {
            FaultClass::BusTimeout => Metric::RecoveryVtimeBusTimeout,
            FaultClass::NotReady => Metric::RecoveryVtimeNotReady,
            FaultClass::CorruptCapture => Metric::RecoveryVtimeCorruptCapture,
            FaultClass::Restore => Metric::RecoveryVtimeRestore,
            FaultClass::IrqGlitch => Metric::RecoveryVtimeIrqGlitch,
        }
    }

    /// Histogram of attempts-to-recover for this class.
    pub fn retries_metric(self) -> Metric {
        match self {
            FaultClass::BusTimeout => Metric::RecoveryRetriesBusTimeout,
            FaultClass::NotReady => Metric::RecoveryRetriesNotReady,
            FaultClass::CorruptCapture => Metric::RecoveryRetriesCorruptCapture,
            FaultClass::Restore => Metric::RecoveryRetriesRestore,
            FaultClass::IrqGlitch => Metric::RecoveryRetriesIrqGlitch,
        }
    }

    /// Span name for the retry interval of this class.
    pub fn span_name(self) -> &'static str {
        match self {
            FaultClass::BusTimeout => "retry:bus-timeout",
            FaultClass::NotReady => "retry:not-ready",
            FaultClass::CorruptCapture => "retry:corrupt-capture",
            FaultClass::Restore => "retry:restore",
            FaultClass::IrqGlitch => "retry:irq-glitch",
        }
    }
}

/// A completed span: wall-clock interval on a worker track. Instant
/// events (duration 0) share the representation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Event name (e.g. `"capture"`, `"context-switch"`).
    pub name: &'static str,
    /// Category (`"snapshot"`, `"scan"`, `"engine"`, `"fault"`).
    pub cat: &'static str,
    /// Track (worker replica) id.
    pub track: u32,
    /// Nanoseconds since the process-wide trace epoch.
    pub ts_ns: u64,
    /// Wall-clock duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// One numeric argument (bytes, cycles, attempts — span-specific).
    pub arg: u64,
}

/// Process-wide trace epoch: all recorders stamp spans relative to
/// this, so per-worker tracks share one timeline.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

struct Inner {
    track: u32,
    label: String,
    epoch: Instant,
    counters: [AtomicU64; Counter::COUNT],
    hists: [[AtomicU64; BUCKETS]; Metric::COUNT],
    sums: [AtomicU64; Metric::COUNT],
    spans: Mutex<Vec<SpanEvent>>,
}

/// Handle to a per-worker telemetry sink. Cheap to clone; all clones
/// share one sink. A disabled recorder (the default) records nothing.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Recorder(disabled)"),
            Some(i) => write!(f, "Recorder(track {} {:?})", i.track, i.label),
        }
    }
}

impl Recorder {
    /// A recorder that records nothing (every hook is one branch).
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled recorder for the given track (worker replica).
    pub fn enabled(track: u32, label: impl Into<String>) -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                track,
                label: label.into(),
                epoch: epoch(),
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                hists: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
                sums: std::array::from_fn(|_| AtomicU64::new(0)),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Build from a config: enabled iff `cfg.enabled`.
    pub fn from_config(
        cfg: &crate::TelemetryConfig,
        track: u32,
        label: impl Into<String>,
    ) -> Recorder {
        if cfg.enabled {
            Recorder::enabled(track, label)
        } else {
            Recorder::disabled()
        }
    }

    /// Is this recorder collecting anything?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Bump a counter by 1.
    #[inline]
    pub fn count(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Bump a counter by `n`.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            inner.counters[c as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one observation into a histogram. The running sum is
    /// kept alongside the buckets so exporters (Prometheus `_sum`) can
    /// report exact totals, not bucket approximations.
    #[inline]
    pub fn observe(&self, m: Metric, v: u64) {
        if let Some(inner) = &self.inner {
            inner.hists[m as usize][bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            inner.sums[m as usize].fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Open a span; it records itself when the guard drops. Disabled
    /// recorders hand back an inert guard without reading the clock.
    /// The guard owns a clone of the sink, so the recorder (and the
    /// struct holding it) stays freely borrowable while a span is open.
    #[inline]
    #[must_use = "the span measures until the guard drops"]
    pub fn span(&self, cat: &'static str, name: &'static str) -> SpanGuard {
        SpanGuard {
            inner: self.inner.as_ref().map(|i| (Arc::clone(i), Instant::now())),
            cat,
            name,
            arg: 0,
        }
    }

    /// Record a zero-duration instant event.
    #[inline]
    pub fn instant(&self, cat: &'static str, name: &'static str, arg: u64) {
        if let Some(inner) = &self.inner {
            let ts_ns = inner.epoch.elapsed().as_nanos() as u64;
            inner.spans.lock().push(SpanEvent {
                name,
                cat,
                track: inner.track,
                ts_ns,
                dur_ns: 0,
                arg,
            });
        }
    }

    /// Drain this recorder into an exportable snapshot. Returns `None`
    /// when disabled. Spans are taken (subsequent snapshots see only
    /// new spans); counters and histograms are cumulative reads.
    pub fn snapshot(&self) -> Option<crate::MetricsSnapshot> {
        let inner = self.inner.as_ref()?;
        let mut snap = crate::MetricsSnapshot::empty();
        snap.tracks.push((inner.track, inner.label.clone()));
        for &c in Counter::ALL {
            let v = inner.counters[c as usize].load(Ordering::Relaxed);
            if v != 0 {
                snap.add_counter(c.name(), v);
            }
        }
        for &m in Metric::ALL {
            let buckets: Vec<u64> = inner.hists[m as usize]
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
            if buckets.iter().any(|&b| b != 0) {
                snap.hists.push(HistSnapshot {
                    name: m.name().to_string(),
                    buckets,
                    sum: inner.sums[m as usize].load(Ordering::Relaxed),
                });
            }
        }
        snap.spans = std::mem::take(&mut *inner.spans.lock());
        Some(snap)
    }
}

/// RAII guard returned by [`Recorder::span`]; records the interval on
/// drop. Inert (no clock reads, no sink) when the recorder is
/// disabled.
pub struct SpanGuard {
    inner: Option<(Arc<Inner>, Instant)>,
    cat: &'static str,
    name: &'static str,
    arg: u64,
}

impl SpanGuard {
    /// Attach the span's numeric argument (bytes, cycles, attempts).
    #[inline]
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((inner, start)) = self.inner.take() {
            let end = inner.epoch.elapsed().as_nanos() as u64;
            let ts_ns = (start.duration_since(inner.epoch).as_nanos() as u64).min(end);
            inner.spans.lock().push(SpanEvent {
                name: self.name,
                cat: self.cat,
                track: inner.track,
                ts_ns,
                dur_ns: end - ts_ns,
                arg: self.arg,
            });
        }
    }
}

/// One exported histogram: name plus per-bucket counts (see
/// [`bucket_lower_bound`] for bucket boundaries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Metric name (snake_case, may be dotted for per-kind families).
    pub name: String,
    /// `BUCKETS` counts; bucket 0 is exact zeros.
    pub buckets: Vec<u64>,
    /// Exact sum of all observed values (buckets only bound them).
    pub sum: u64,
}

impl HistSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Approximate quantile: the lower bound of the bucket containing
    /// the `q`-th observation (`q` in `[0, 1]`).
    pub fn approx_quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_lower_bound(i);
            }
        }
        bucket_lower_bound(BUCKETS - 1)
    }

    /// Merge another histogram's buckets into this one (same metric).
    /// Bucket-wise addition plus sum addition: associative and
    /// commutative, so daemon-side aggregation order never matters.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardsnap_util::prop::{any, vec_of};
    use hardsnap_util::prop_check;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(5), 16);
    }

    #[test]
    fn prop_value_falls_in_its_bucket() {
        prop_check!((v in any::<u64>()) => {
            let i = bucket_index(v);
            let lo = bucket_lower_bound(i);
            assert!(v >= lo, "{v} below bucket {i} lower bound {lo}");
            // Last bucket is open-ended; otherwise v < next bound.
            if i < BUCKETS - 1 {
                assert!(v < bucket_lower_bound(i + 1), "{v} past bucket {i}");
            }
        });
    }

    #[test]
    fn prop_bucket_index_monotonic() {
        prop_check!((a in any::<u64>(), b in any::<u64>()) => {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            assert!(bucket_index(lo) <= bucket_index(hi));
        });
    }

    #[test]
    fn prop_merge_preserves_count() {
        let mk = |vals: &[u16]| {
            let mut h = HistSnapshot {
                name: "t".into(),
                buckets: vec![0; BUCKETS],
                sum: 0,
            };
            for &v in vals {
                h.buckets[bucket_index(v as u64)] += 1;
                h.sum += v as u64;
            }
            h
        };
        prop_check!((xs in vec_of(any::<u16>(), 0..32), ys in vec_of(any::<u16>(), 0..32)) => {
            let mut a = mk(&xs);
            let b = mk(&ys);
            let want_sum = a.sum + b.sum;
            a.merge(&b);
            assert_eq!(a.count(), (xs.len() + ys.len()) as u64);
            assert_eq!(a.sum, want_sum);
        });
    }

    #[test]
    fn prop_quantile_monotone_and_bounded() {
        prop_check!((xs in vec_of(any::<u32>(), 0..64)) => {
            let mut h = HistSnapshot {
                name: "t".into(),
                buckets: vec![0; BUCKETS],
                sum: 0,
            };
            let mut max = 0u64;
            for &v in &xs {
                h.buckets[bucket_index(v as u64)] += 1;
                max = max.max(v as u64);
            }
            let p50 = h.approx_quantile(0.5);
            let p99 = h.approx_quantile(0.99);
            assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
            // Quantiles report bucket lower bounds, so they never
            // exceed the true maximum.
            assert!(p99 <= max, "p99 {p99} > max {max}");
        });
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.count(Counter::ContextSwitches);
        r.observe(Metric::CaptureVtimeNs, 42);
        {
            let mut g = r.span("engine", "quantum");
            g.set_arg(7);
        }
        r.instant("fault", "inject", 1);
        assert!(r.snapshot().is_none());
    }

    #[test]
    fn enabled_recorder_collects() {
        let r = Recorder::enabled(3, "worker-3");
        r.count(Counter::Retries);
        r.add(Counter::Retries, 2);
        r.observe(Metric::BackoffNs, 1000);
        {
            let mut g = r.span("snapshot", "capture");
            g.set_arg(128);
        }
        r.instant("fault", "inject:bus-timeout", 1);
        let snap = r.snapshot().unwrap();
        assert_eq!(snap.tracks, vec![(3, "worker-3".to_string())]);
        assert_eq!(snap.counter("retries"), 3);
        let h = snap.hist("backoff_ns").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.buckets[bucket_index(1000)], 1);
        assert_eq!(snap.spans.len(), 2);
        let cap = snap.spans.iter().find(|s| s.name == "capture").unwrap();
        assert_eq!((cap.track, cap.arg), (3, 128));
        // Spans drain; counters are cumulative.
        let again = r.snapshot().unwrap();
        assert!(again.spans.is_empty());
        assert_eq!(again.counter("retries"), 3);
    }
}
