//! Exportable, mergeable metrics snapshots and the three exporters:
//! human summary table, machine JSON dump, Chrome `trace_event` JSON.

use crate::recorder::{bucket_lower_bound, HistSnapshot, SpanEvent};
use hardsnap_util::json::Value;

/// Everything one run collected, merged across worker recorders.
/// Lives in `RunResult::telemetry`; purely observational — the
/// canonical digest never includes it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(track id, label)` per worker recorder, sorted by id.
    pub tracks: Vec<(u32, String)>,
    /// Named counters, sorted by name, zero entries omitted.
    pub counters: Vec<(String, u64)>,
    /// Named point-in-time levels (queue depth, pool occupancy),
    /// sorted by name. Unlike counters these are not cumulative;
    /// merging takes the max, which keeps merge associative,
    /// commutative and idempotent.
    pub gauges: Vec<(String, u64)>,
    /// Named histograms, sorted by name, empty ones omitted.
    pub hists: Vec<HistSnapshot>,
    /// All spans from all tracks (exporters sort per track).
    pub spans: Vec<SpanEvent>,
}

impl MetricsSnapshot {
    /// A snapshot with nothing in it.
    pub fn empty() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Add `v` to the named counter (creating it if new).
    pub fn add_counter(&mut self, name: &str, v: u64) {
        if v == 0 {
            return;
        }
        match self
            .counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
        {
            Ok(i) => self.counters[i].1 += v,
            Err(i) => self.counters.insert(i, (name.to_string(), v)),
        }
    }

    /// Value of a named counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// The named histogram, if any observations were recorded.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Set the named gauge to `v` (last write wins; gauges are levels,
    /// not tallies).
    pub fn set_gauge(&mut self, name: &str, v: u64) {
        match self.gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.gauges[i].1 = v,
            Err(i) => self.gauges.insert(i, (name.to_string(), v)),
        }
    }

    /// Value of a named gauge (0 if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| self.gauges[i].1)
            .unwrap_or(0)
    }

    /// Fold another snapshot into this one. The merge is associative
    /// and commutative — daemon aggregation folds many per-job
    /// snapshots in whatever order jobs finish, and the totals must
    /// not depend on that order:
    ///
    /// * counters add (commutative monoid),
    /// * histograms merge bucket-wise and sum-wise (same),
    /// * gauges take the max (idempotent, so re-merging is safe),
    /// * tracks union as a sorted `(id, label)` set,
    /// * spans append — their multiset is order-independent; use
    ///   [`MetricsSnapshot::normalize`] before comparing snapshots
    ///   structurally.
    pub fn merge(&mut self, other: MetricsSnapshot) {
        for (t, l) in other.tracks {
            if !self.tracks.iter().any(|(id, lbl)| *id == t && *lbl == l) {
                self.tracks.push((t, l));
            }
        }
        self.tracks.sort();
        for (name, v) in other.counters {
            self.add_counter(&name, v);
        }
        for (name, v) in other.gauges {
            let cur = self.gauge(&name);
            self.set_gauge(&name, cur.max(v));
        }
        for h in other.hists {
            match self.hists.iter_mut().find(|mine| mine.name == h.name) {
                Some(mine) => mine.merge(&h),
                None => {
                    self.hists.push(h);
                    self.hists.sort_by(|a, b| a.name.cmp(&b.name));
                }
            }
        }
        self.spans.extend(other.spans);
    }

    /// Sort spans into a canonical order so that snapshots merged in
    /// different orders compare equal. Everything else is already
    /// kept sorted by construction.
    pub fn normalize(&mut self) {
        self.spans
            .sort_by_key(|s| (s.track, s.ts_ns, s.dur_ns, s.name, s.cat, s.arg));
    }

    /// A copy with the spans stripped: counters, gauges, histograms
    /// and tracks only. The daemon aggregates per-job telemetry this
    /// way — span payloads belong in the per-job Chrome trace, not in
    /// every scrape.
    pub fn counts_only(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            tracks: self.tracks.clone(),
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            hists: self.hists.clone(),
            spans: Vec::new(),
        }
    }

    /// Human-readable end-of-run summary: counters, then histogram
    /// count/p50/p99/max rows.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str("telemetry summary\n");
        let labels: Vec<String> = self.tracks.iter().map(|(_, l)| l.clone()).collect();
        out.push_str(&format!(
            "  tracks    : {}\n",
            if labels.is_empty() {
                "(none)".to_string()
            } else {
                labels.join(", ")
            }
        ));
        out.push_str(&format!("  spans     : {}\n", self.spans.len()));
        if !self.counters.is_empty() {
            out.push_str("  counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("    {name:<34} {v:>12}\n"));
            }
        }
        if !self.hists.is_empty() {
            out.push_str("  histograms (log2 buckets; quantiles are bucket lower bounds):\n");
            out.push_str(&format!(
                "    {:<34} {:>8} {:>12} {:>12} {:>12}\n",
                "metric", "count", "~p50", "~p99", "max<"
            ));
            for h in &self.hists {
                let top = h
                    .buckets
                    .iter()
                    .rposition(|&n| n != 0)
                    .map(|i| {
                        if i + 1 < h.buckets.len() {
                            bucket_lower_bound(i + 1).to_string()
                        } else {
                            "inf".to_string()
                        }
                    })
                    .unwrap_or_else(|| "0".to_string());
                out.push_str(&format!(
                    "    {:<34} {:>8} {:>12} {:>12} {:>12}\n",
                    h.name,
                    h.count(),
                    h.approx_quantile(0.5),
                    h.approx_quantile(0.99),
                    top,
                ));
            }
        }
        out
    }

    /// Machine-readable metrics dump (schema
    /// `hardsnap-telemetry-v1`). Histograms list only non-empty
    /// buckets as `[lower_bound, count]` pairs.
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"hardsnap-telemetry-v1\",\n");
        out.push_str("  \"tracks\": [");
        for (i, (id, label)) in self.tracks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{{\"id\": {id}, \"label\": {}}}", json_str(label)));
        }
        out.push_str("],\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {v}", json_str(name)));
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {v}", json_str(name)));
        }
        out.push_str("},\n  \"histograms\": [\n");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n != 0)
                .map(|(b, &n)| format!("[{}, {n}]", bucket_lower_bound(b)))
                .collect();
            out.push_str(&format!(
                "    {{\"name\": {}, \"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}, \
                 \"buckets\": [{}]}}",
                json_str(&h.name),
                h.count(),
                h.sum,
                h.approx_quantile(0.5),
                h.approx_quantile(0.99),
                buckets.join(", ")
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"span_count\": {}\n}}\n",
            self.spans.len()
        ));
        out
    }

    /// Chrome `trace_event`-format JSON: complete (`ph:"X"`) events in
    /// microseconds, one `tid` per worker track with `thread_name`
    /// metadata, events sorted per track by start time. Load in
    /// Perfetto (ui.perfetto.dev) or `about://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        let mut events: Vec<&SpanEvent> = self.spans.iter().collect();
        events.sort_by_key(|e| (e.track, e.ts_ns, e.dur_ns));
        let mut lines = Vec::with_capacity(self.tracks.len() + events.len());
        for (id, label) in &self.tracks {
            lines.push(format!(
                "  {{\"ph\": \"M\", \"pid\": 1, \"tid\": {id}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": {}}}}}",
                json_str(label)
            ));
        }
        for e in events {
            let ph = if e.dur_ns == 0 { "i" } else { "X" };
            let mut line = format!(
                "  {{\"ph\": \"{ph}\", \"pid\": 1, \"tid\": {}, \"name\": {}, \"cat\": {}, \
                 \"ts\": {:.3}",
                e.track,
                json_str(e.name),
                json_str(e.cat),
                e.ts_ns as f64 / 1000.0,
            );
            if e.dur_ns != 0 {
                line.push_str(&format!(", \"dur\": {:.3}", e.dur_ns as f64 / 1000.0));
            } else {
                line.push_str(", \"s\": \"t\"");
            }
            line.push_str(&format!(", \"args\": {{\"v\": {}}}}}", e.arg));
            lines.push(line);
        }
        format!(
            "{{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n{}\n]}}\n",
            lines.join(",\n")
        )
    }

    /// The metrics dump as a parsed [`Value`] tree (same shape as
    /// [`MetricsSnapshot::metrics_json`]); what the `metrics` verb
    /// puts on the wire.
    pub fn to_value(&self) -> Value {
        hardsnap_util::json::parse(&self.metrics_json()).expect("metrics_json is well-formed")
    }

    /// Parse a metrics dump back into a snapshot. Validates the
    /// schema tag and every field shape, returning a typed message
    /// naming the offending field. Spans are not round-tripped (the
    /// dump only records their count); `span_count` is ignored.
    pub fn from_value(v: &Value) -> Result<MetricsSnapshot, String> {
        match v.get("schema").and_then(Value::as_str) {
            Some("hardsnap-telemetry-v1") => {}
            Some(other) => return Err(format!("unsupported metrics schema {other:?}")),
            None => return Err("missing \"schema\" field".into()),
        }
        let mut snap = MetricsSnapshot::empty();
        for (i, t) in v
            .get("tracks")
            .and_then(Value::as_arr)
            .ok_or("\"tracks\" must be an array")?
            .iter()
            .enumerate()
        {
            let id = t
                .get("id")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("tracks[{i}].id must be a non-negative integer"))?;
            let label = t
                .get("label")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("tracks[{i}].label must be a string"))?;
            snap.tracks.push((id as u32, label.to_string()));
        }
        let counters = match v.get("counters") {
            Some(Value::Obj(m)) => m,
            _ => return Err("\"counters\" must be an object".into()),
        };
        for (name, val) in counters {
            let n = val
                .as_u64()
                .ok_or_else(|| format!("counter {name:?} must be a non-negative integer"))?;
            snap.add_counter(name, n);
        }
        if let Some(g) = v.get("gauges") {
            let gauges = match g {
                Value::Obj(m) => m,
                _ => return Err("\"gauges\" must be an object".into()),
            };
            for (name, val) in gauges {
                let n = val
                    .as_u64()
                    .ok_or_else(|| format!("gauge {name:?} must be a non-negative integer"))?;
                snap.set_gauge(name, n);
            }
        }
        for (i, h) in v
            .get("histograms")
            .and_then(Value::as_arr)
            .ok_or("\"histograms\" must be an array")?
            .iter()
            .enumerate()
        {
            let name = h
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("histograms[{i}].name must be a string"))?;
            let mut hist = HistSnapshot {
                name: name.to_string(),
                buckets: vec![0; crate::recorder::BUCKETS],
                sum: h.get("sum").and_then(Value::as_u64).unwrap_or(0),
            };
            for (j, pair) in h
                .get("buckets")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("histograms[{i}].buckets must be an array"))?
                .iter()
                .enumerate()
            {
                let p = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                    format!("histograms[{i}].buckets[{j}] must be a [lower_bound, count] pair")
                })?;
                let (lb, n) = (p[0].as_u64(), p[1].as_u64());
                let (lb, n) = match (lb, n) {
                    (Some(lb), Some(n)) => (lb, n),
                    _ => {
                        return Err(format!(
                            "histograms[{i}].buckets[{j}] entries must be non-negative integers"
                        ))
                    }
                };
                let idx = crate::recorder::bucket_index(lb);
                if crate::recorder::bucket_lower_bound(idx) != lb {
                    return Err(format!(
                        "histograms[{i}].buckets[{j}] lower bound {lb} is not a bucket boundary"
                    ));
                }
                hist.buckets[idx] += n;
            }
            let declared = h
                .get("count")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("histograms[{i}].count must be a non-negative integer"))?;
            if declared != hist.count() {
                return Err(format!(
                    "histograms[{i}] declares count {declared} but buckets sum to {}",
                    hist.count()
                ));
            }
            snap.hists.push(hist);
        }
        snap.hists.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(snap)
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::new();
    hardsnap_util::json::write_escaped(s, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Counter, Metric, Recorder};
    use hardsnap_util::json;

    fn sample() -> MetricsSnapshot {
        let r0 = Recorder::enabled(0, "worker-0");
        let r1 = Recorder::enabled(1, "worker-1");
        r0.count(Counter::ContextSwitches);
        r0.observe(Metric::CaptureVtimeNs, 20_000_000);
        r1.add(Counter::ContextSwitches, 2);
        r1.observe(Metric::CaptureVtimeNs, 19_000_000);
        drop(r0.span("snapshot", "capture"));
        drop(r1.span("snapshot", "restore"));
        drop(r1.span("engine", "quantum"));
        let mut snap = r0.snapshot().unwrap();
        snap.merge(r1.snapshot().unwrap());
        snap
    }

    #[test]
    fn merge_sums_and_orders() {
        let snap = sample();
        assert_eq!(
            snap.tracks,
            vec![(0, "worker-0".into()), (1, "worker-1".into())]
        );
        assert_eq!(snap.counter("context_switches"), 3);
        assert_eq!(snap.hist("capture_vtime_ns").unwrap().count(), 2);
        assert_eq!(snap.spans.len(), 3);
    }

    #[test]
    fn summary_table_mentions_everything() {
        let table = sample().summary_table();
        assert!(table.contains("context_switches"));
        assert!(table.contains("capture_vtime_ns"));
        assert!(table.contains("worker-1"));
    }

    #[test]
    fn metrics_json_parses() {
        let v = json::parse(&sample().metrics_json()).unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some("hardsnap-telemetry-v1")
        );
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("context_switches")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        let hists = v.get("histograms").unwrap().as_arr().unwrap();
        assert_eq!(
            hists[0].get("name").unwrap().as_str(),
            Some("capture_vtime_ns")
        );
        assert_eq!(hists[0].get("count").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn value_roundtrip_preserves_counts() {
        let mut snap = sample();
        snap.set_gauge("serve.queue_depth", 3);
        snap.set_gauge("serve.pool_busy", 2);
        let back = MetricsSnapshot::from_value(&snap.to_value()).unwrap();
        assert_eq!(back.tracks, snap.tracks);
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.hists, snap.hists);
        assert!(back.spans.is_empty(), "spans are not round-tripped");
    }

    #[test]
    fn from_value_rejects_malformed() {
        let bad_schema = json::parse("{\"schema\": \"nope\"}").unwrap();
        assert!(MetricsSnapshot::from_value(&bad_schema)
            .unwrap_err()
            .contains("schema"));
        let bad_count = json::parse(
            "{\"schema\": \"hardsnap-telemetry-v1\", \"tracks\": [], \"counters\": {}, \
             \"histograms\": [{\"name\": \"x\", \"count\": 5, \"buckets\": [[1, 2]]}]}",
        )
        .unwrap();
        assert!(MetricsSnapshot::from_value(&bad_count)
            .unwrap_err()
            .contains("count"));
        let bad_bound = json::parse(
            "{\"schema\": \"hardsnap-telemetry-v1\", \"tracks\": [], \"counters\": {}, \
             \"histograms\": [{\"name\": \"x\", \"count\": 1, \"buckets\": [[3, 1]]}]}",
        )
        .unwrap();
        assert!(MetricsSnapshot::from_value(&bad_bound)
            .unwrap_err()
            .contains("boundary"));
    }

    #[test]
    fn gauges_merge_by_max() {
        let mut a = MetricsSnapshot::empty();
        a.set_gauge("depth", 2);
        let mut b = MetricsSnapshot::empty();
        b.set_gauge("depth", 5);
        b.set_gauge("busy", 1);
        a.merge(b.clone());
        assert_eq!(a.gauge("depth"), 5);
        assert_eq!(a.gauge("busy"), 1);
        // Idempotent: merging the same snapshot again changes nothing.
        let before = a.clone();
        a.merge(b);
        assert_eq!(a.gauges, before.gauges);
    }

    #[test]
    fn chrome_trace_parses_and_is_per_track_monotonic() {
        let trace = sample().chrome_trace_json();
        let v = json::parse(&trace).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events.len() >= 5, "2 metadata + 3 spans");
        let mut last_ts: std::collections::BTreeMap<u64, f64> = Default::default();
        let mut names = Vec::new();
        for e in events {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            let tid = e.get("tid").unwrap().as_u64().unwrap();
            match ph {
                "M" => {
                    assert_eq!(e.get("name").unwrap().as_str(), Some("thread_name"));
                }
                "X" | "i" => {
                    let ts = e.get("ts").unwrap().as_f64().unwrap();
                    let prev = last_ts.insert(tid, ts).unwrap_or(f64::MIN);
                    assert!(ts >= prev, "track {tid} not monotonic");
                    names.push(e.get("name").unwrap().as_str().unwrap().to_string());
                }
                other => panic!("unexpected ph {other:?}"),
            }
        }
        for expected in ["capture", "restore", "quantum"] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }
}
