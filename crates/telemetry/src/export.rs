//! Exportable, mergeable metrics snapshots and the three exporters:
//! human summary table, machine JSON dump, Chrome `trace_event` JSON.

use crate::recorder::{bucket_lower_bound, HistSnapshot, SpanEvent};

/// Everything one run collected, merged across worker recorders.
/// Lives in `RunResult::telemetry`; purely observational — the
/// canonical digest never includes it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(track id, label)` per worker recorder, sorted by id.
    pub tracks: Vec<(u32, String)>,
    /// Named counters, sorted by name, zero entries omitted.
    pub counters: Vec<(String, u64)>,
    /// Named histograms, sorted by name, empty ones omitted.
    pub hists: Vec<HistSnapshot>,
    /// All spans from all tracks (exporters sort per track).
    pub spans: Vec<SpanEvent>,
}

impl MetricsSnapshot {
    /// A snapshot with nothing in it.
    pub fn empty() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Add `v` to the named counter (creating it if new).
    pub fn add_counter(&mut self, name: &str, v: u64) {
        if v == 0 {
            return;
        }
        match self
            .counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
        {
            Ok(i) => self.counters[i].1 += v,
            Err(i) => self.counters.insert(i, (name.to_string(), v)),
        }
    }

    /// Value of a named counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// The named histogram, if any observations were recorded.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Fold another worker's snapshot into this one. Counters and
    /// histogram buckets add; tracks and spans append. Deterministic
    /// given a deterministic merge order (callers merge workers in
    /// replica order).
    pub fn merge(&mut self, other: MetricsSnapshot) {
        for (t, l) in other.tracks {
            if !self.tracks.iter().any(|(id, _)| *id == t) {
                self.tracks.push((t, l));
            }
        }
        self.tracks.sort();
        for (name, v) in other.counters {
            self.add_counter(&name, v);
        }
        for h in other.hists {
            match self.hists.iter_mut().find(|mine| mine.name == h.name) {
                Some(mine) => mine.merge(&h),
                None => {
                    self.hists.push(h);
                    self.hists.sort_by(|a, b| a.name.cmp(&b.name));
                }
            }
        }
        self.spans.extend(other.spans);
    }

    /// Human-readable end-of-run summary: counters, then histogram
    /// count/p50/p99/max rows.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str("telemetry summary\n");
        let labels: Vec<String> = self.tracks.iter().map(|(_, l)| l.clone()).collect();
        out.push_str(&format!(
            "  tracks    : {}\n",
            if labels.is_empty() {
                "(none)".to_string()
            } else {
                labels.join(", ")
            }
        ));
        out.push_str(&format!("  spans     : {}\n", self.spans.len()));
        if !self.counters.is_empty() {
            out.push_str("  counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("    {name:<34} {v:>12}\n"));
            }
        }
        if !self.hists.is_empty() {
            out.push_str("  histograms (log2 buckets; quantiles are bucket lower bounds):\n");
            out.push_str(&format!(
                "    {:<34} {:>8} {:>12} {:>12} {:>12}\n",
                "metric", "count", "~p50", "~p99", "max<"
            ));
            for h in &self.hists {
                let top = h
                    .buckets
                    .iter()
                    .rposition(|&n| n != 0)
                    .map(|i| {
                        if i + 1 < h.buckets.len() {
                            bucket_lower_bound(i + 1).to_string()
                        } else {
                            "inf".to_string()
                        }
                    })
                    .unwrap_or_else(|| "0".to_string());
                out.push_str(&format!(
                    "    {:<34} {:>8} {:>12} {:>12} {:>12}\n",
                    h.name,
                    h.count(),
                    h.approx_quantile(0.5),
                    h.approx_quantile(0.99),
                    top,
                ));
            }
        }
        out
    }

    /// Machine-readable metrics dump (schema
    /// `hardsnap-telemetry-v1`). Histograms list only non-empty
    /// buckets as `[lower_bound, count]` pairs.
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"hardsnap-telemetry-v1\",\n");
        out.push_str("  \"tracks\": [");
        for (i, (id, label)) in self.tracks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{{\"id\": {id}, \"label\": {}}}", json_str(label)));
        }
        out.push_str("],\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {v}", json_str(name)));
        }
        out.push_str("},\n  \"histograms\": [\n");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n != 0)
                .map(|(b, &n)| format!("[{}, {n}]", bucket_lower_bound(b)))
                .collect();
            out.push_str(&format!(
                "    {{\"name\": {}, \"count\": {}, \"p50\": {}, \"p99\": {}, \"buckets\": [{}]}}",
                json_str(&h.name),
                h.count(),
                h.approx_quantile(0.5),
                h.approx_quantile(0.99),
                buckets.join(", ")
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"span_count\": {}\n}}\n",
            self.spans.len()
        ));
        out
    }

    /// Chrome `trace_event`-format JSON: complete (`ph:"X"`) events in
    /// microseconds, one `tid` per worker track with `thread_name`
    /// metadata, events sorted per track by start time. Load in
    /// Perfetto (ui.perfetto.dev) or `about://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        let mut events: Vec<&SpanEvent> = self.spans.iter().collect();
        events.sort_by_key(|e| (e.track, e.ts_ns, e.dur_ns));
        let mut lines = Vec::with_capacity(self.tracks.len() + events.len());
        for (id, label) in &self.tracks {
            lines.push(format!(
                "  {{\"ph\": \"M\", \"pid\": 1, \"tid\": {id}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": {}}}}}",
                json_str(label)
            ));
        }
        for e in events {
            let ph = if e.dur_ns == 0 { "i" } else { "X" };
            let mut line = format!(
                "  {{\"ph\": \"{ph}\", \"pid\": 1, \"tid\": {}, \"name\": {}, \"cat\": {}, \
                 \"ts\": {:.3}",
                e.track,
                json_str(e.name),
                json_str(e.cat),
                e.ts_ns as f64 / 1000.0,
            );
            if e.dur_ns != 0 {
                line.push_str(&format!(", \"dur\": {:.3}", e.dur_ns as f64 / 1000.0));
            } else {
                line.push_str(", \"s\": \"t\"");
            }
            line.push_str(&format!(", \"args\": {{\"v\": {}}}}}", e.arg));
            lines.push(line);
        }
        format!(
            "{{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n{}\n]}}\n",
            lines.join(",\n")
        )
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::new();
    hardsnap_util::json::write_escaped(s, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Counter, Metric, Recorder};
    use hardsnap_util::json;

    fn sample() -> MetricsSnapshot {
        let r0 = Recorder::enabled(0, "worker-0");
        let r1 = Recorder::enabled(1, "worker-1");
        r0.count(Counter::ContextSwitches);
        r0.observe(Metric::CaptureVtimeNs, 20_000_000);
        r1.add(Counter::ContextSwitches, 2);
        r1.observe(Metric::CaptureVtimeNs, 19_000_000);
        drop(r0.span("snapshot", "capture"));
        drop(r1.span("snapshot", "restore"));
        drop(r1.span("engine", "quantum"));
        let mut snap = r0.snapshot().unwrap();
        snap.merge(r1.snapshot().unwrap());
        snap
    }

    #[test]
    fn merge_sums_and_orders() {
        let snap = sample();
        assert_eq!(
            snap.tracks,
            vec![(0, "worker-0".into()), (1, "worker-1".into())]
        );
        assert_eq!(snap.counter("context_switches"), 3);
        assert_eq!(snap.hist("capture_vtime_ns").unwrap().count(), 2);
        assert_eq!(snap.spans.len(), 3);
    }

    #[test]
    fn summary_table_mentions_everything() {
        let table = sample().summary_table();
        assert!(table.contains("context_switches"));
        assert!(table.contains("capture_vtime_ns"));
        assert!(table.contains("worker-1"));
    }

    #[test]
    fn metrics_json_parses() {
        let v = json::parse(&sample().metrics_json()).unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some("hardsnap-telemetry-v1")
        );
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("context_switches")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        let hists = v.get("histograms").unwrap().as_arr().unwrap();
        assert_eq!(
            hists[0].get("name").unwrap().as_str(),
            Some("capture_vtime_ns")
        );
        assert_eq!(hists[0].get("count").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn chrome_trace_parses_and_is_per_track_monotonic() {
        let trace = sample().chrome_trace_json();
        let v = json::parse(&trace).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events.len() >= 5, "2 metadata + 3 spans");
        let mut last_ts: std::collections::BTreeMap<u64, f64> = Default::default();
        let mut names = Vec::new();
        for e in events {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            let tid = e.get("tid").unwrap().as_u64().unwrap();
            match ph {
                "M" => {
                    assert_eq!(e.get("name").unwrap().as_str(), Some("thread_name"));
                }
                "X" | "i" => {
                    let ts = e.get("ts").unwrap().as_f64().unwrap();
                    let prev = last_ts.insert(tid, ts).unwrap_or(f64::MIN);
                    assert!(ts >= prev, "track {tid} not monotonic");
                    names.push(e.get("name").unwrap().as_str().unwrap().to_string());
                }
                other => panic!("unexpected ph {other:?}"),
            }
        }
        for expected in ["capture", "restore", "quantum"] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }
}
