//! Prometheus text-exposition format: in-tree formatter and parser.
//!
//! The workspace is offline, so there is no `prometheus` crate; the
//! daemon formats [`MetricsSnapshot`] into the text exposition format
//! (version 0.0.4) by hand, and CI parses it back with the equally
//! hand-rolled parser below to prove the output is well-formed. The
//! subset implemented is exactly what the snapshot model needs:
//!
//! * counters  → `# TYPE name counter` + one `name_total` sample,
//! * gauges    → `# TYPE name gauge` + one sample,
//! * histograms → cumulative `name_bucket{le="..."}` samples (log2
//!   boundaries), plus `name_sum` and `name_count`.
//!
//! Metric names are mapped from the dotted telemetry names
//! (`serve.queue_depth`) to Prometheus conventions
//! (`hardsnap_serve_queue_depth`).

use crate::export::MetricsSnapshot;
use crate::recorder::bucket_lower_bound;

/// A typed exposition-format error: the 1-based line it occurred on
/// plus what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromError {
    /// 1-based line number in the exposition text.
    pub line: usize,
    /// What was malformed.
    pub message: String,
}

impl std::fmt::Display for PromError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exposition line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PromError {}

/// One parsed sample: metric name, sorted labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Full sample name (including `_total`/`_bucket` suffixes).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// One metric family: the `# TYPE` declaration plus its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct PromFamily {
    /// Declared family name (without suffixes).
    pub name: String,
    /// Declared type: `counter`, `gauge` or `histogram`.
    pub kind: String,
    /// Samples belonging to this family.
    pub samples: Vec<PromSample>,
}

/// Map a dotted telemetry name to a Prometheus metric name:
/// `hardsnap_` prefix, non-alphanumerics become underscores.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("hardsnap_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render a snapshot in Prometheus text-exposition format. Spans are
/// not exported (they belong in the Chrome trace); tracks surface as
/// a single `hardsnap_tracks` gauge.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} counter\n{p}_total {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} gauge\n{p} {v}\n"));
    }
    if !snap.tracks.is_empty() {
        out.push_str(&format!(
            "# TYPE hardsnap_tracks gauge\nhardsnap_tracks {}\n",
            snap.tracks.len()
        ));
    }
    for h in &snap.hists {
        let p = prom_name(&h.name);
        out.push_str(&format!("# TYPE {p} histogram\n"));
        let top = h.buckets.iter().rposition(|&n| n != 0).unwrap_or(0);
        let mut cum = 0u64;
        for (i, &n) in h.buckets.iter().enumerate().take(top + 1) {
            cum += n;
            // Bucket i holds values in [lower_bound(i), lower_bound(i+1)),
            // so its inclusive `le` upper edge is lower_bound(i+1) - 1.
            if i + 1 < h.buckets.len() {
                let le = bucket_lower_bound(i + 1) - 1;
                out.push_str(&format!("{p}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
        }
        out.push_str(&format!("{p}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
        out.push_str(&format!("{p}_sum {}\n{p}_count {}\n", h.sum, h.count()));
    }
    out
}

fn parse_labels(s: &str, line: usize) -> Result<Vec<(String, String)>, PromError> {
    let err = |message: String| PromError { line, message };
    let mut labels = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| err(format!("label {rest:?} missing '='")))?;
        let key = rest[..eq].trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(err(format!("invalid label name {key:?}")));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(err("label value must be double-quoted".into()));
        }
        let close = rest[1..]
            .find('"')
            .ok_or_else(|| err("unterminated label value".into()))?;
        let value = &rest[1..1 + close];
        labels.push((key.to_string(), value.to_string()));
        rest = rest[close + 2..].trim_start_matches(',').trim_start();
    }
    Ok(labels)
}

/// Parse exposition text into metric families. Every sample must
/// follow a `# TYPE` declaration it belongs to (sample name equals
/// the family name, optionally suffixed `_total`, `_bucket`, `_sum`
/// or `_count` as the declared type allows).
pub fn parse_prometheus(text: &str) -> Result<Vec<PromFamily>, PromError> {
    let mut families: Vec<PromFamily> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let err = |message: String| PromError {
            line: lineno,
            message,
        };
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| err("TYPE line missing metric name".into()))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| err("TYPE line missing metric type".into()))?;
                if !matches!(kind, "counter" | "gauge" | "histogram") {
                    return Err(err(format!("unsupported metric type {kind:?}")));
                }
                if families.iter().any(|f| f.name == name) {
                    return Err(err(format!("duplicate TYPE declaration for {name:?}")));
                }
                families.push(PromFamily {
                    name: name.to_string(),
                    kind: kind.to_string(),
                    samples: Vec::new(),
                });
            }
            // HELP and other comments are ignored.
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.find(|c| c == ' ' || c == '\t') {
            Some(sp) if !line[..sp].contains('{') => (&line[..sp], line[sp..].trim()),
            _ => {
                let close = line
                    .find('}')
                    .ok_or_else(|| err(format!("malformed sample line {line:?}")))?;
                (&line[..close + 1], line[close + 1..].trim())
            }
        };
        let (name, labels) = match name_part.find('{') {
            Some(open) => {
                if !name_part.ends_with('}') {
                    return Err(err("unterminated label set".into()));
                }
                (
                    &name_part[..open],
                    parse_labels(&name_part[open + 1..name_part.len() - 1], lineno)?,
                )
            }
            None => (name_part, Vec::new()),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(err(format!("invalid metric name {name:?}")));
        }
        let value: f64 = if value_part == "+Inf" {
            f64::INFINITY
        } else {
            value_part
                .parse()
                .map_err(|_| err(format!("invalid sample value {value_part:?}")))?
        };
        let family = families
            .iter_mut()
            .rev()
            .find(|f| {
                name == f.name
                    || (name.strip_prefix(f.name.as_str()).is_some_and(|suffix| {
                        matches!(suffix, "_total" | "_bucket" | "_sum" | "_count")
                    }))
            })
            .ok_or_else(|| err(format!("sample {name:?} has no TYPE declaration")))?;
        family.samples.push(PromSample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(families)
}

/// Structural validation beyond parsing: every family has at least
/// one sample, counter samples carry the `_total` suffix, histogram
/// buckets are cumulative (monotone in `le`), end in `+Inf`, and the
/// `+Inf` bucket equals `_count`.
pub fn validate_exposition(families: &[PromFamily]) -> Result<(), PromError> {
    let err = |message: String| PromError { line: 0, message };
    for f in families {
        if f.samples.is_empty() {
            return Err(err(format!(
                "family {:?} declared but has no samples",
                f.name
            )));
        }
        match f.kind.as_str() {
            "counter" => {
                for s in &f.samples {
                    if s.name != format!("{}_total", f.name) {
                        return Err(err(format!(
                            "counter family {:?} has sample {:?} without _total suffix",
                            f.name, s.name
                        )));
                    }
                }
            }
            "gauge" => {}
            "histogram" => {
                let buckets: Vec<&PromSample> = f
                    .samples
                    .iter()
                    .filter(|s| s.name == format!("{}_bucket", f.name))
                    .collect();
                if buckets.is_empty() {
                    return Err(err(format!("histogram {:?} has no buckets", f.name)));
                }
                let mut prev_le = f64::NEG_INFINITY;
                let mut prev_cum = 0.0;
                for b in &buckets {
                    let le = b
                        .labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .ok_or_else(|| {
                            err(format!("histogram {:?} bucket missing le label", f.name))
                        })?
                        .1
                        .as_str();
                    let le = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse().map_err(|_| {
                            err(format!("histogram {:?} has bad le value {le:?}", f.name))
                        })?
                    };
                    if le <= prev_le {
                        return Err(err(format!("histogram {:?} le not increasing", f.name)));
                    }
                    if b.value < prev_cum {
                        return Err(err(format!(
                            "histogram {:?} buckets not cumulative",
                            f.name
                        )));
                    }
                    prev_le = le;
                    prev_cum = b.value;
                }
                if prev_le != f64::INFINITY {
                    return Err(err(format!("histogram {:?} missing +Inf bucket", f.name)));
                }
                let count = f
                    .samples
                    .iter()
                    .find(|s| s.name == format!("{}_count", f.name))
                    .ok_or_else(|| err(format!("histogram {:?} missing _count", f.name)))?;
                if (count.value - prev_cum).abs() > f64::EPSILON {
                    return Err(err(format!(
                        "histogram {:?} _count {} != +Inf bucket {}",
                        f.name, count.value, prev_cum
                    )));
                }
                if !f
                    .samples
                    .iter()
                    .any(|s| s.name == format!("{}_sum", f.name))
                {
                    return Err(err(format!("histogram {:?} missing _sum", f.name)));
                }
            }
            other => return Err(err(format!("unsupported family type {other:?}"))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Counter, Metric, Recorder};

    fn sample() -> MetricsSnapshot {
        let r = Recorder::enabled(0, "worker-0");
        r.add(Counter::ContextSwitches, 7);
        r.observe(Metric::CaptureVtimeNs, 0);
        r.observe(Metric::CaptureVtimeNs, 3);
        r.observe(Metric::CaptureVtimeNs, 1_000_000);
        let mut snap = r.snapshot().unwrap();
        snap.set_gauge("serve.queue_depth", 4);
        snap
    }

    #[test]
    fn name_mapping() {
        assert_eq!(prom_name("serve.queue_depth"), "hardsnap_serve_queue_depth");
        assert_eq!(
            prom_name("recovery_vtime_ns.bus_timeout"),
            "hardsnap_recovery_vtime_ns_bus_timeout"
        );
    }

    #[test]
    fn roundtrip_and_validate() {
        let text = prometheus_text(&sample());
        let families = parse_prometheus(&text).unwrap();
        validate_exposition(&families).unwrap();
        let ctr = families
            .iter()
            .find(|f| f.name == "hardsnap_context_switches")
            .unwrap();
        assert_eq!(ctr.kind, "counter");
        assert_eq!(ctr.samples[0].value, 7.0);
        let g = families
            .iter()
            .find(|f| f.name == "hardsnap_serve_queue_depth")
            .unwrap();
        assert_eq!((g.kind.as_str(), g.samples[0].value), ("gauge", 4.0));
        let h = families
            .iter()
            .find(|f| f.name == "hardsnap_capture_vtime_ns")
            .unwrap();
        assert_eq!(h.kind, "histogram");
        let count = h
            .samples
            .iter()
            .find(|s| s.name.ends_with("_count"))
            .unwrap();
        assert_eq!(count.value, 3.0);
        let sum = h.samples.iter().find(|s| s.name.ends_with("_sum")).unwrap();
        assert_eq!(sum.value, 1_000_003.0);
        let inf = h
            .samples
            .iter()
            .find(|s| s.labels.iter().any(|(_, v)| v == "+Inf"))
            .unwrap();
        assert_eq!(inf.value, 3.0);
    }

    #[test]
    fn parser_rejects_malformed() {
        let orphan = "hardsnap_x_total 3\n";
        assert!(parse_prometheus(orphan)
            .unwrap_err()
            .message
            .contains("no TYPE"));
        let bad_value = "# TYPE hardsnap_x counter\nhardsnap_x_total banana\n";
        let e = parse_prometheus(bad_value).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("invalid sample value"));
        let bad_type = "# TYPE hardsnap_x summary\n";
        assert!(parse_prometheus(bad_type)
            .unwrap_err()
            .message
            .contains("unsupported metric type"));
        let bad_label = "# TYPE hardsnap_x histogram\nhardsnap_x_bucket{le=7} 1\n";
        assert!(parse_prometheus(bad_label)
            .unwrap_err()
            .message
            .contains("double-quoted"));
    }

    #[test]
    fn validator_rejects_non_cumulative_buckets() {
        let text = "# TYPE hardsnap_x histogram\n\
                    hardsnap_x_bucket{le=\"1\"} 5\n\
                    hardsnap_x_bucket{le=\"2\"} 3\n\
                    hardsnap_x_bucket{le=\"+Inf\"} 5\n\
                    hardsnap_x_sum 9\nhardsnap_x_count 5\n";
        let families = parse_prometheus(text).unwrap();
        assert!(validate_exposition(&families)
            .unwrap_err()
            .message
            .contains("cumulative"));
        let no_inf = "# TYPE hardsnap_y histogram\n\
                      hardsnap_y_bucket{le=\"1\"} 1\n\
                      hardsnap_y_sum 1\nhardsnap_y_count 1\n";
        let families = parse_prometheus(no_inf).unwrap();
        assert!(validate_exposition(&families)
            .unwrap_err()
            .message
            .contains("+Inf"));
    }
}
