//! Property tests for `MetricsSnapshot::merge`: the daemon aggregates
//! per-job snapshots in whatever order jobs finish, so merge must be
//! associative and commutative — totals can never depend on fold
//! order. Spans are compared as a multiset (via `normalize`), since
//! only their order of concatenation differs.

use hardsnap_telemetry::{bucket_index, HistSnapshot, MetricsSnapshot, SpanEvent};
use hardsnap_util::prop::from_fn;
use hardsnap_util::prop_check;
use hardsnap_util::rng::Rng;

fn arb_snapshot(rng: &mut Rng) -> MetricsSnapshot {
    const COUNTER_NAMES: &[&str] = &["alpha", "beta", "gamma.delta", "serve.jobs_admitted"];
    const GAUGE_NAMES: &[&str] = &["serve.queue_depth", "serve.pool_busy"];
    const HIST_NAMES: &[&str] = &["lat_ns", "quantum_instructions"];
    const SPAN_NAMES: &[&str] = &["capture", "restore", "quantum"];
    let mut snap = MetricsSnapshot::empty();
    let n_tracks = rng.gen_range(0usize..3);
    for _ in 0..n_tracks {
        let id = rng.gen_range(0u32..4);
        let label = format!("worker-{id}");
        if !snap.tracks.iter().any(|(t, l)| *t == id && *l == label) {
            snap.tracks.push((id, label));
        }
    }
    snap.tracks.sort();
    for name in COUNTER_NAMES {
        if rng.gen_bool(0.6) {
            snap.add_counter(name, rng.gen_range(0u64..1000));
        }
    }
    for name in GAUGE_NAMES {
        if rng.gen_bool(0.6) {
            snap.set_gauge(name, rng.gen_range(0u64..100));
        }
    }
    for name in HIST_NAMES {
        if rng.gen_bool(0.6) {
            let mut h = HistSnapshot {
                name: name.to_string(),
                buckets: vec![0; probe_buckets()],
                sum: 0,
            };
            for _ in 0..rng.gen_range(1usize..16) {
                let v = rng.gen_range(0u64..1_000_000);
                h.buckets[bucket_index(v)] += 1;
                h.sum += v;
            }
            snap.hists.push(h);
        }
    }
    snap.hists.sort_by(|a, b| a.name.cmp(&b.name));
    for _ in 0..rng.gen_range(0usize..5) {
        snap.spans.push(SpanEvent {
            name: SPAN_NAMES[rng.gen_range(0usize..SPAN_NAMES.len())],
            cat: "engine",
            track: rng.gen_range(0u32..4),
            ts_ns: rng.gen_range(0u64..1_000_000),
            dur_ns: rng.gen_range(0u64..10_000),
            arg: rng.gen_range(0u64..256),
        });
    }
    snap
}

/// Number of buckets per histogram, probed from a real recorder so
/// this test does not hard-code the constant.
fn probe_buckets() -> usize {
    use hardsnap_telemetry::{Metric, Recorder};
    let r = Recorder::enabled(0, "probe");
    r.observe(Metric::CaptureVtimeNs, 1);
    r.snapshot().unwrap().hists[0].buckets.len()
}

fn merged(parts: &[MetricsSnapshot]) -> MetricsSnapshot {
    let mut acc = MetricsSnapshot::empty();
    for p in parts {
        acc.merge(p.clone());
    }
    acc.normalize();
    acc
}

#[test]
fn prop_merge_commutative() {
    prop_check!(cases = 64, (seed in from_fn(|r: &mut Rng| r.next_u64())) => {
        let mut rng = Rng::seed_from_u64(seed);
        let a = arb_snapshot(&mut rng);
        let b = arb_snapshot(&mut rng);
        assert_eq!(merged(&[a.clone(), b.clone()]), merged(&[b, a]));
    });
}

#[test]
fn prop_merge_associative() {
    prop_check!(cases = 64, (seed in from_fn(|r: &mut Rng| r.next_u64())) => {
        let mut rng = Rng::seed_from_u64(seed);
        let a = arb_snapshot(&mut rng);
        let b = arb_snapshot(&mut rng);
        let c = arb_snapshot(&mut rng);
        // (a ⊕ b) ⊕ c
        let mut left = MetricsSnapshot::empty();
        left.merge(a.clone());
        left.merge(b.clone());
        left.merge(c.clone());
        left.normalize();
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(c.clone());
        let mut right = a.clone();
        right.merge(bc);
        right.normalize();
        assert_eq!(left, right);
    });
}

#[test]
fn prop_merge_preserves_totals() {
    prop_check!(cases = 64, (seed in from_fn(|r: &mut Rng| r.next_u64()), order in 0u8..6) => {
        let mut rng = Rng::seed_from_u64(seed);
        let parts = [
            arb_snapshot(&mut rng),
            arb_snapshot(&mut rng),
            arb_snapshot(&mut rng),
        ];
        let perms: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let p = perms[order as usize];
        let shuffled = merged(&[parts[p[0]].clone(), parts[p[1]].clone(), parts[p[2]].clone()]);
        // Counter totals, histogram counts/sums and span multiplicity
        // all match the canonical fold regardless of order.
        let canon = merged(&parts);
        assert_eq!(shuffled.counters, canon.counters);
        assert_eq!(shuffled.gauges, canon.gauges);
        for h in &canon.hists {
            let other = shuffled.hist(&h.name).expect("histogram lost in merge");
            assert_eq!(other.count(), h.count());
            assert_eq!(other.sum, h.sum);
            assert_eq!(other.buckets, h.buckets);
        }
        assert_eq!(shuffled.spans.len(), canon.spans.len());
        assert_eq!(shuffled.spans, canon.spans);
    });
}
