//! The canonical hardware-snapshot format.
//!
//! A [`HwSnapshot`] is the paper's "offline representation" of hardware
//! state: every flip-flop register and every memory of the design under
//! test, by hierarchical name. Both targets produce and consume this one
//! format, which is precisely what makes multi-target state transfer
//! (FPGA → simulator and back, paper §III-B "target orchestration")
//! possible: a snapshot saved on one target restores bit-exactly on the
//! other.
//!
//! Snapshots also serialize to a compact byte image
//! ([`HwSnapshot::to_bytes`]) — the analogue of the CRIU checkpoint file
//! the paper stores on persistent storage — and the image size drives the
//! save/restore cost models in the benchmarks.

use std::collections::HashMap;

/// One flip-flop register's saved state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegImage {
    /// Hierarchical register name (e.g. `u_aes.round_cnt`).
    pub name: String,
    /// Width in bits (1..=64).
    pub width: u32,
    /// The saved bits (normalized to the width).
    pub bits: u64,
}

/// One memory's saved state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemImage {
    /// Hierarchical memory name.
    pub name: String,
    /// Word width in bits.
    pub width: u32,
    /// All words, index 0 first.
    pub words: Vec<u64>,
}

/// A complete hardware snapshot: the set `S_hw` of all hardware register
/// values of the peripherals under test at a point in time (paper §IV-B).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HwSnapshot {
    /// Name of the (flattened) design this snapshot was taken from; used
    /// to reject cross-design restores.
    pub design: String,
    /// Target cycle counter at capture time.
    pub cycle: u64,
    /// All registers, in scan-chain order.
    pub regs: Vec<RegImage>,
    /// All memories, in scan-chain order.
    pub mems: Vec<MemImage>,
}

const MAGIC: &[u8; 8] = b"HSNAPv2\0";

/// FNV-1a over a byte slice (the workspace's standard cheap digest).
pub(crate) fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fingerprint of a snapshot *shape* — the design name plus the ordered
/// register `(name, width)` and memory `(name, width, depth)` layout,
/// with all values excluded. A target that knows its own design can
/// compute the same fingerprint without any reference snapshot (see
/// `HwTarget::snapshot_shape`), which is what lets a supervision layer
/// detect truncated or misassembled images at **capture** time: an image
/// whose shape hash differs from the design's was damaged in transit.
pub fn shape_hash_parts<'a>(
    design: &str,
    regs: impl Iterator<Item = (&'a str, u32)>,
    mems: impl Iterator<Item = (&'a str, u32, usize)>,
) -> u64 {
    let mut h = fnv1a(design.as_bytes(), FNV_OFFSET);
    for (name, width) in regs {
        h = fnv1a(b"R", h);
        h = fnv1a(name.as_bytes(), h);
        h = fnv1a(&width.to_le_bytes(), h);
    }
    for (name, width, depth) in mems {
        h = fnv1a(b"M", h);
        h = fnv1a(name.as_bytes(), h);
        h = fnv1a(&width.to_le_bytes(), h);
        h = fnv1a(&(depth as u64).to_le_bytes(), h);
    }
    h
}

impl HwSnapshot {
    /// Total architectural state bits captured.
    pub fn state_bits(&self) -> u64 {
        let r: u64 = self.regs.iter().map(|r| r.width as u64).sum();
        let m: u64 = self
            .mems
            .iter()
            .map(|m| m.width as u64 * m.words.len() as u64)
            .sum();
        r + m
    }

    /// Looks up a register's saved bits by hierarchical name.
    pub fn reg(&self, name: &str) -> Option<u64> {
        self.regs.iter().find(|r| r.name == name).map(|r| r.bits)
    }

    /// Looks up a memory image by hierarchical name.
    pub fn mem(&self, name: &str) -> Option<&MemImage> {
        self.mems.iter().find(|m| m.name == name)
    }

    /// Builds a name → bits map for diffing snapshots in diagnostics.
    pub fn reg_map(&self) -> HashMap<&str, u64> {
        self.regs
            .iter()
            .map(|r| (r.name.as_str(), r.bits))
            .collect()
    }

    /// Names of registers whose value differs between `self` and `other`
    /// (used by root-cause diagnosis in examples and tests).
    pub fn diff_regs<'a>(&'a self, other: &'a HwSnapshot) -> Vec<&'a str> {
        let theirs = other.reg_map();
        self.regs
            .iter()
            .filter(|r| theirs.get(r.name.as_str()).is_none_or(|&b| b != r.bits))
            .map(|r| r.name.as_str())
            .collect()
    }

    /// Shape fingerprint of this image (see [`shape_hash_parts`]).
    pub fn shape_hash(&self) -> u64 {
        shape_hash_parts(
            &self.design,
            self.regs.iter().map(|r| (r.name.as_str(), r.width)),
            self.mems
                .iter()
                .map(|m| (m.name.as_str(), m.width, m.words.len())),
        )
    }

    /// Content fingerprint: shape plus every register bit and memory
    /// word. The capture-time `cycle` counter is deliberately excluded
    /// so that two captures of the same hardware state hash equal even
    /// when the second capture happened later (e.g. a re-capture after
    /// a corrupted scan-out).
    pub fn content_hash(&self) -> u64 {
        let mut h = self.shape_hash();
        for r in &self.regs {
            h = fnv1a(&r.bits.to_le_bytes(), h);
        }
        for m in &self.mems {
            for w in &m.words {
                h = fnv1a(&w.to_le_bytes(), h);
            }
        }
        h
    }

    /// Checks the structural invariants every honestly captured image
    /// satisfies: register/memory widths in `1..=64` and every value
    /// normalized to its declared width. A scan chain that dropped or
    /// gained a bit misaligns everything downstream, so some register
    /// image ends up carrying bits outside its width — exactly what
    /// this check catches without needing a reference image.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for r in &self.regs {
            if r.width == 0 || r.width > 64 {
                return Err(format!(
                    "register '{}' has invalid width {}",
                    r.name, r.width
                ));
            }
            if r.width < 64 && r.bits >> r.width != 0 {
                return Err(format!(
                    "register '{}' carries bits outside its {}-bit width ({:#x})",
                    r.name, r.width, r.bits
                ));
            }
        }
        for m in &self.mems {
            if m.width == 0 || m.width > 64 {
                return Err(format!("memory '{}' has invalid width {}", m.name, m.width));
            }
            if m.width < 64 {
                for (i, w) in m.words.iter().enumerate() {
                    if w >> m.width != 0 {
                        return Err(format!(
                            "memory '{}'[{i}] carries bits outside its {}-bit width ({w:#x})",
                            m.name, m.width
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Serializes to the on-disk image format (the CRIU-checkpoint
    /// analogue). The format is self-describing, versioned, and ends
    /// with an FNV-1a checksum of the preceding bytes, so bit rot or
    /// truncation of a stored image is detected on load.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.regs.len() * 24);
        out.extend_from_slice(MAGIC);
        put_str(&mut out, &self.design);
        out.extend_from_slice(&self.cycle.to_le_bytes());
        out.extend_from_slice(&(self.regs.len() as u32).to_le_bytes());
        for r in &self.regs {
            put_str(&mut out, &r.name);
            out.extend_from_slice(&r.width.to_le_bytes());
            out.extend_from_slice(&r.bits.to_le_bytes());
        }
        out.extend_from_slice(&(self.mems.len() as u32).to_le_bytes());
        for m in &self.mems {
            put_str(&mut out, &m.name);
            out.extend_from_slice(&m.width.to_le_bytes());
            out.extend_from_slice(&(m.words.len() as u32).to_le_bytes());
            for w in &m.words {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        let sum = fnv1a(&out, FNV_OFFSET);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Deserializes an image produced by [`HwSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found
    /// (bad magic, truncation, or count overflow).
    pub fn from_bytes(data: &[u8]) -> Result<HwSnapshot, String> {
        if data.len() < 8 {
            return Err("truncated snapshot: missing checksum".into());
        }
        let (body, tail) = data.split_at(data.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv1a(body, FNV_OFFSET) != stored {
            return Err("snapshot checksum mismatch".into());
        }
        let mut cur = Cursor { data: body, pos: 0 };
        let magic = cur.take(8)?;
        if magic != MAGIC {
            return Err("bad snapshot magic".into());
        }
        let design = cur.get_str()?;
        let cycle = cur.get_u64()?;
        let nregs = cur.get_u32()? as usize;
        if nregs > 1 << 24 {
            return Err(format!("implausible register count {nregs}"));
        }
        let mut regs = Vec::with_capacity(nregs);
        for _ in 0..nregs {
            let name = cur.get_str()?;
            let width = cur.get_u32()?;
            let bits = cur.get_u64()?;
            if width == 0 || width > 64 {
                return Err(format!("register '{name}' has invalid width {width}"));
            }
            regs.push(RegImage { name, width, bits });
        }
        let nmems = cur.get_u32()? as usize;
        if nmems > 1 << 20 {
            return Err(format!("implausible memory count {nmems}"));
        }
        let mut mems = Vec::with_capacity(nmems);
        for _ in 0..nmems {
            let name = cur.get_str()?;
            let width = cur.get_u32()?;
            let depth = cur.get_u32()? as usize;
            if width == 0 || width > 64 {
                return Err(format!("memory '{name}' has invalid width {width}"));
            }
            if depth > 1 << 28 {
                return Err(format!("implausible memory depth {depth}"));
            }
            let mut words = Vec::with_capacity(depth);
            for _ in 0..depth {
                words.push(cur.get_u64()?);
            }
            mems.push(MemImage { name, width, words });
        }
        Ok(HwSnapshot {
            design,
            cycle,
            regs,
            mems,
        })
    }

    /// Size of the serialized image in bytes (without serializing);
    /// drives the simulator-target save/restore cost model.
    pub fn byte_size(&self) -> usize {
        // Magic + design + cycle + counts + trailing checksum.
        let mut n = 8 + 4 + self.design.len() + 8 + 4 + 4 + 8;
        for r in &self.regs {
            n += 4 + r.name.len() + 4 + 8;
        }
        for m in &self.mems {
            n += 4 + m.name.len() + 4 + 4 + 8 * m.words.len();
        }
        n
    }
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

pub(crate) struct Cursor<'a> {
    pub(crate) data: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.data.len() {
            return Err(format!("truncated snapshot at offset {}", self.pos));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn get_u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn get_u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn get_str(&mut self) -> Result<String, String> {
        let len = self.get_u32()? as usize;
        if len > 1 << 16 {
            return Err(format!("implausible string length {len}"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 name in snapshot".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HwSnapshot {
        HwSnapshot {
            design: "soc_top".into(),
            cycle: 1234,
            regs: vec![
                RegImage {
                    name: "u_uart.txfifo_head".into(),
                    width: 4,
                    bits: 7,
                },
                RegImage {
                    name: "u_aes.busy".into(),
                    width: 1,
                    bits: 1,
                },
            ],
            mems: vec![MemImage {
                name: "u_sha.w_mem".into(),
                width: 32,
                words: vec![0xdeadbeef, 0x01020304],
            }],
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let s = sample();
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), s.byte_size());
        let s2 = HwSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn state_bits_counts_regs_and_mems() {
        assert_eq!(sample().state_bits(), 4 + 1 + 64);
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.reg("u_aes.busy"), Some(1));
        assert_eq!(s.reg("nope"), None);
        assert_eq!(s.mem("u_sha.w_mem").unwrap().words[0], 0xdeadbeef);
    }

    #[test]
    fn diff_regs_reports_changes() {
        let a = sample();
        let mut b = sample();
        b.regs[1].bits = 0;
        assert_eq!(a.diff_regs(&b), vec!["u_aes.busy"]);
        assert!(a.diff_regs(&a.clone()).is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(HwSnapshot::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        for cut in [7, 15, bytes.len() - 1] {
            assert!(
                HwSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bit_rot_rejected_by_checksum() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let err = HwSnapshot::from_bytes(&bytes).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn shape_hash_detects_truncation_and_relabeling() {
        let s = sample();
        let mut truncated = s.clone();
        truncated.regs.pop();
        assert_ne!(s.shape_hash(), truncated.shape_hash());
        let mut relabeled = s.clone();
        relabeled.design = "other".into();
        assert_ne!(s.shape_hash(), relabeled.shape_hash());
        // Values do not affect the shape, only the content hash.
        let mut mutated = s.clone();
        mutated.regs[0].bits ^= 1;
        assert_eq!(s.shape_hash(), mutated.shape_hash());
        assert_ne!(s.content_hash(), mutated.content_hash());
    }

    #[test]
    fn content_hash_ignores_cycle() {
        let s = sample();
        let mut later = s.clone();
        later.cycle += 1000;
        assert_eq!(s.content_hash(), later.content_hash());
    }

    #[test]
    fn validate_catches_out_of_width_bits() {
        let s = sample();
        assert!(s.validate().is_ok());
        let mut bad = s.clone();
        bad.regs[0].bits = 1 << bad.regs[0].width; // one bit above the width
        assert!(bad.validate().unwrap_err().contains("u_uart.txfifo_head"));
        let mut bad = s.clone();
        bad.mems[0].words[1] = 1 << 33; // 32-bit memory word
        assert!(bad.validate().unwrap_err().contains("u_sha.w_mem"));
        let mut bad = s;
        bad.regs[1].width = 65;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let s = HwSnapshot {
            design: "d".into(),
            cycle: 0,
            regs: vec![],
            mems: vec![],
        };
        assert_eq!(HwSnapshot::from_bytes(&s.to_bytes()).unwrap(), s);
        assert_eq!(s.state_bits(), 0);
    }
}

/// A delta between two snapshots of the same design: only the registers
/// and memory words that changed. This is the storage optimization the
/// snapshot controller uses when many states share a recent ancestor
/// (cf. the paper's SRAM staging of snapshots for performance): a fork's
/// children start bit-identical to the parent, so their images compress
/// to nearly nothing until they diverge.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotDelta {
    /// Changed registers: (index into the base's `regs`, new bits).
    pub regs: Vec<(u32, u64)>,
    /// Changed memory words: (memory index, word index, new value).
    pub mem_words: Vec<(u32, u32, u64)>,
    /// New cycle counter.
    pub cycle: u64,
}

impl SnapshotDelta {
    /// Computes the delta that turns `base` into `new`.
    ///
    /// # Errors
    ///
    /// Returns a description if the snapshots have different shapes
    /// (different design, register lists or memory layouts).
    pub fn between(base: &HwSnapshot, new: &HwSnapshot) -> Result<SnapshotDelta, String> {
        if base.design != new.design {
            return Err(format!(
                "delta across designs '{}' vs '{}'",
                base.design, new.design
            ));
        }
        if base.regs.len() != new.regs.len() || base.mems.len() != new.mems.len() {
            return Err("snapshot shapes differ".into());
        }
        let mut delta = SnapshotDelta {
            cycle: new.cycle,
            ..Default::default()
        };
        for (i, (b, n)) in base.regs.iter().zip(&new.regs).enumerate() {
            if b.name != n.name || b.width != n.width {
                return Err(format!("register {i} layout differs"));
            }
            if b.bits != n.bits {
                delta.regs.push((i as u32, n.bits));
            }
        }
        for (mi, (bm, nm)) in base.mems.iter().zip(&new.mems).enumerate() {
            if bm.name != nm.name || bm.words.len() != nm.words.len() {
                return Err(format!("memory {mi} layout differs"));
            }
            for (wi, (bw, nw)) in bm.words.iter().zip(&nm.words).enumerate() {
                if bw != nw {
                    delta.mem_words.push((mi as u32, wi as u32, *nw));
                }
            }
        }
        Ok(delta)
    }

    /// Applies the delta to `base`, producing the target snapshot.
    ///
    /// # Errors
    ///
    /// Returns a description on out-of-range indices.
    pub fn apply(&self, base: &HwSnapshot) -> Result<HwSnapshot, String> {
        let mut out = base.clone();
        out.cycle = self.cycle;
        for &(i, bits) in &self.regs {
            let r = out
                .regs
                .get_mut(i as usize)
                .ok_or_else(|| format!("register index {i} out of range"))?;
            r.bits = bits;
        }
        for &(mi, wi, v) in &self.mem_words {
            let m = out
                .mems
                .get_mut(mi as usize)
                .ok_or_else(|| format!("memory index {mi} out of range"))?;
            let w = m
                .words
                .get_mut(wi as usize)
                .ok_or_else(|| format!("word index {wi} out of range"))?;
            *w = v;
        }
        Ok(out)
    }

    /// Approximate stored size in bytes.
    pub fn byte_size(&self) -> usize {
        8 + self.regs.len() * 12 + self.mem_words.len() * 16
    }

    /// Validates this delta against the base it claims to patch, in
    /// O(delta): every register index must exist in the base and carry
    /// no bits outside that register's width, and every memory word
    /// reference must be in range and normalized. This is the capture
    /// supervision check for delta-native images — the full-image
    /// analogue is [`HwSnapshot::validate`] plus the shape hash, but a
    /// delta shares its base's shape by construction, so only the
    /// patched entries need inspection.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn validate_against(&self, base: &HwSnapshot) -> Result<(), String> {
        for &(i, bits) in &self.regs {
            let r = base
                .regs
                .get(i as usize)
                .ok_or_else(|| format!("delta register index {i} out of range"))?;
            if r.width < 64 && bits >> r.width != 0 {
                return Err(format!(
                    "delta for register '{}' carries bits outside its {}-bit width ({bits:#x})",
                    r.name, r.width
                ));
            }
        }
        for &(mi, wi, v) in &self.mem_words {
            let m = base
                .mems
                .get(mi as usize)
                .ok_or_else(|| format!("delta memory index {mi} out of range"))?;
            if wi as usize >= m.words.len() {
                return Err(format!(
                    "delta word index {wi} out of range for memory '{}'",
                    m.name
                ));
            }
            if m.width < 64 && v >> m.width != 0 {
                return Err(format!(
                    "delta for memory '{}'[{wi}] carries bits outside its {}-bit width ({v:#x})",
                    m.name, m.width
                ));
            }
        }
        Ok(())
    }
}

/// A capture as a target emits it: either a complete image, or a
/// copy-on-write delta against a shared immutable base the target and
/// its driver both hold. This is the Firecracker full-vs-diff snapshot
/// split applied to hardware state: a target in delta mode tracks which
/// registers and memory words it dirtied since its base capture and
/// ships only those, so capture cost is proportional to activity, not
/// design size. [`SnapshotCapture::materialize`] recovers the full
/// image bit-identically, which is what keeps the canonical result
/// digest invariant under the delta/full choice.
#[derive(Clone, Debug)]
pub enum SnapshotCapture {
    /// A complete image (also the base for subsequent deltas).
    Full(std::sync::Arc<HwSnapshot>),
    /// Only what changed since `base` was captured.
    Delta {
        /// The shared immutable base image this delta patches.
        base: std::sync::Arc<HwSnapshot>,
        /// The changed registers and memory words.
        delta: SnapshotDelta,
    },
}

impl SnapshotCapture {
    /// The design the capture was taken from.
    pub fn design(&self) -> &str {
        match self {
            SnapshotCapture::Full(s) => &s.design,
            SnapshotCapture::Delta { base, .. } => &base.design,
        }
    }

    /// Target cycle counter at capture time.
    pub fn cycle(&self) -> u64 {
        match self {
            SnapshotCapture::Full(s) => s.cycle,
            SnapshotCapture::Delta { delta, .. } => delta.cycle,
        }
    }

    /// Bytes this capture costs to transfer/store: the full image size,
    /// or just the delta's — the quantity the save cost models scale
    /// with.
    pub fn byte_size(&self) -> usize {
        match self {
            SnapshotCapture::Full(s) => s.byte_size(),
            SnapshotCapture::Delta { delta, .. } => delta.byte_size(),
        }
    }

    /// Shape fingerprint (a delta shares its base's shape).
    pub fn shape_hash(&self) -> u64 {
        match self {
            SnapshotCapture::Full(s) => s.shape_hash(),
            SnapshotCapture::Delta { base, .. } => base.shape_hash(),
        }
    }

    /// Structural validation: [`HwSnapshot::validate`] for a full image,
    /// [`SnapshotDelta::validate_against`] (O(delta)) for a delta.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            SnapshotCapture::Full(s) => s.validate(),
            SnapshotCapture::Delta { base, delta } => delta.validate_against(base),
        }
    }

    /// Recovers the complete image: a no-op clone for a full capture,
    /// [`SnapshotDelta::apply`] for a delta. Bit-identical to what a
    /// full capture of the same hardware state would have produced.
    ///
    /// # Errors
    ///
    /// Delta indices out of range (an image that would fail
    /// [`SnapshotCapture::validate`]).
    pub fn materialize(&self) -> Result<HwSnapshot, String> {
        match self {
            SnapshotCapture::Full(s) => Ok((**s).clone()),
            SnapshotCapture::Delta { base, delta } => delta.apply(base),
        }
    }
}

#[cfg(test)]
mod delta_tests {
    use super::*;

    fn base() -> HwSnapshot {
        HwSnapshot {
            design: "d".into(),
            cycle: 10,
            regs: (0..8)
                .map(|i| RegImage {
                    name: format!("r{i}"),
                    width: 32,
                    bits: i,
                })
                .collect(),
            mems: vec![MemImage {
                name: "m".into(),
                width: 32,
                words: vec![0; 16],
            }],
        }
    }

    #[test]
    fn delta_roundtrip() {
        let b = base();
        let mut n = b.clone();
        n.cycle = 99;
        n.regs[3].bits = 0xdead;
        n.mems[0].words[7] = 42;
        let d = SnapshotDelta::between(&b, &n).unwrap();
        assert_eq!(d.regs, vec![(3, 0xdead)]);
        assert_eq!(d.mem_words, vec![(0, 7, 42)]);
        assert_eq!(d.apply(&b).unwrap(), n);
        assert!(d.byte_size() < b.byte_size() / 4);
    }

    #[test]
    fn identical_snapshots_have_empty_delta() {
        let b = base();
        let d = SnapshotDelta::between(&b, &b.clone()).unwrap();
        assert!(d.regs.is_empty() && d.mem_words.is_empty());
        assert_eq!(d.apply(&b).unwrap(), b);
    }

    #[test]
    fn cross_design_delta_rejected() {
        let b = base();
        let mut o = base();
        o.design = "other".into();
        assert!(SnapshotDelta::between(&b, &o).is_err());
        let mut o = base();
        o.regs.pop();
        assert!(SnapshotDelta::between(&b, &o).is_err());
    }

    #[test]
    fn validate_against_checks_ranges_and_widths() {
        let b = base();
        let ok = SnapshotDelta {
            regs: vec![(3, 0xdead)],
            mem_words: vec![(0, 7, 42)],
            cycle: 1,
        };
        assert!(ok.validate_against(&b).is_ok());
        let bad_idx = SnapshotDelta {
            regs: vec![(99, 0)],
            ..Default::default()
        };
        assert!(bad_idx.validate_against(&b).is_err());
        let bad_word = SnapshotDelta {
            mem_words: vec![(0, 999, 0)],
            ..Default::default()
        };
        assert!(bad_word.validate_against(&b).is_err());
        let wide = SnapshotDelta {
            regs: vec![(0, 1 << 33)], // 32-bit register
            ..Default::default()
        };
        assert!(wide.validate_against(&b).unwrap_err().contains("width"));
        let wide_mem = SnapshotDelta {
            mem_words: vec![(0, 0, 1 << 40)], // 32-bit memory
            ..Default::default()
        };
        assert!(wide_mem.validate_against(&b).is_err());
    }

    #[test]
    fn capture_materializes_bit_identically() {
        let b = base();
        let mut n = b.clone();
        n.cycle = 77;
        n.regs[5].bits = 9;
        n.mems[0].words[2] = 3;
        let d = SnapshotDelta::between(&b, &n).unwrap();
        let cap = SnapshotCapture::Delta {
            base: std::sync::Arc::new(b.clone()),
            delta: d,
        };
        assert_eq!(cap.materialize().unwrap(), n);
        assert_eq!(cap.shape_hash(), n.shape_hash());
        assert_eq!(cap.cycle(), 77);
        assert!(cap.byte_size() < b.byte_size() / 4);
        assert!(cap.validate().is_ok());
        let full = SnapshotCapture::Full(std::sync::Arc::new(n.clone()));
        assert_eq!(full.materialize().unwrap(), n);
        assert_eq!(full.byte_size(), n.byte_size());
    }

    #[test]
    fn apply_range_checks() {
        let b = base();
        let d = SnapshotDelta {
            regs: vec![(99, 0)],
            mem_words: vec![],
            cycle: 0,
        };
        assert!(d.apply(&b).is_err());
        let d = SnapshotDelta {
            regs: vec![],
            mem_words: vec![(0, 999, 0)],
            cycle: 0,
        };
        assert!(d.apply(&b).is_err());
    }
}
