//! The canonical hardware-snapshot format.
//!
//! A [`HwSnapshot`] is the paper's "offline representation" of hardware
//! state: every flip-flop register and every memory of the design under
//! test, by hierarchical name. Both targets produce and consume this one
//! format, which is precisely what makes multi-target state transfer
//! (FPGA → simulator and back, paper §III-B "target orchestration")
//! possible: a snapshot saved on one target restores bit-exactly on the
//! other.
//!
//! Snapshots also serialize to a compact byte image
//! ([`HwSnapshot::to_bytes`]) — the analogue of the CRIU checkpoint file
//! the paper stores on persistent storage — and the image size drives the
//! save/restore cost models in the benchmarks.

use std::collections::HashMap;

/// One flip-flop register's saved state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegImage {
    /// Hierarchical register name (e.g. `u_aes.round_cnt`).
    pub name: String,
    /// Width in bits (1..=64).
    pub width: u32,
    /// The saved bits (normalized to the width).
    pub bits: u64,
}

/// One memory's saved state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemImage {
    /// Hierarchical memory name.
    pub name: String,
    /// Word width in bits.
    pub width: u32,
    /// All words, index 0 first.
    pub words: Vec<u64>,
}

/// A complete hardware snapshot: the set `S_hw` of all hardware register
/// values of the peripherals under test at a point in time (paper §IV-B).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HwSnapshot {
    /// Name of the (flattened) design this snapshot was taken from; used
    /// to reject cross-design restores.
    pub design: String,
    /// Target cycle counter at capture time.
    pub cycle: u64,
    /// All registers, in scan-chain order.
    pub regs: Vec<RegImage>,
    /// All memories, in scan-chain order.
    pub mems: Vec<MemImage>,
}

const MAGIC: &[u8; 8] = b"HSNAPv1\0";

impl HwSnapshot {
    /// Total architectural state bits captured.
    pub fn state_bits(&self) -> u64 {
        let r: u64 = self.regs.iter().map(|r| r.width as u64).sum();
        let m: u64 = self
            .mems
            .iter()
            .map(|m| m.width as u64 * m.words.len() as u64)
            .sum();
        r + m
    }

    /// Looks up a register's saved bits by hierarchical name.
    pub fn reg(&self, name: &str) -> Option<u64> {
        self.regs.iter().find(|r| r.name == name).map(|r| r.bits)
    }

    /// Looks up a memory image by hierarchical name.
    pub fn mem(&self, name: &str) -> Option<&MemImage> {
        self.mems.iter().find(|m| m.name == name)
    }

    /// Builds a name → bits map for diffing snapshots in diagnostics.
    pub fn reg_map(&self) -> HashMap<&str, u64> {
        self.regs
            .iter()
            .map(|r| (r.name.as_str(), r.bits))
            .collect()
    }

    /// Names of registers whose value differs between `self` and `other`
    /// (used by root-cause diagnosis in examples and tests).
    pub fn diff_regs<'a>(&'a self, other: &'a HwSnapshot) -> Vec<&'a str> {
        let theirs = other.reg_map();
        self.regs
            .iter()
            .filter(|r| theirs.get(r.name.as_str()).is_none_or(|&b| b != r.bits))
            .map(|r| r.name.as_str())
            .collect()
    }

    /// Serializes to the on-disk image format (the CRIU-checkpoint
    /// analogue). The format is self-describing and versioned.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.regs.len() * 24);
        out.extend_from_slice(MAGIC);
        put_str(&mut out, &self.design);
        out.extend_from_slice(&self.cycle.to_le_bytes());
        out.extend_from_slice(&(self.regs.len() as u32).to_le_bytes());
        for r in &self.regs {
            put_str(&mut out, &r.name);
            out.extend_from_slice(&r.width.to_le_bytes());
            out.extend_from_slice(&r.bits.to_le_bytes());
        }
        out.extend_from_slice(&(self.mems.len() as u32).to_le_bytes());
        for m in &self.mems {
            put_str(&mut out, &m.name);
            out.extend_from_slice(&m.width.to_le_bytes());
            out.extend_from_slice(&(m.words.len() as u32).to_le_bytes());
            for w in &m.words {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes an image produced by [`HwSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found
    /// (bad magic, truncation, or count overflow).
    pub fn from_bytes(data: &[u8]) -> Result<HwSnapshot, String> {
        let mut cur = Cursor { data, pos: 0 };
        let magic = cur.take(8)?;
        if magic != MAGIC {
            return Err("bad snapshot magic".into());
        }
        let design = cur.get_str()?;
        let cycle = cur.get_u64()?;
        let nregs = cur.get_u32()? as usize;
        if nregs > 1 << 24 {
            return Err(format!("implausible register count {nregs}"));
        }
        let mut regs = Vec::with_capacity(nregs);
        for _ in 0..nregs {
            let name = cur.get_str()?;
            let width = cur.get_u32()?;
            let bits = cur.get_u64()?;
            if width == 0 || width > 64 {
                return Err(format!("register '{name}' has invalid width {width}"));
            }
            regs.push(RegImage { name, width, bits });
        }
        let nmems = cur.get_u32()? as usize;
        if nmems > 1 << 20 {
            return Err(format!("implausible memory count {nmems}"));
        }
        let mut mems = Vec::with_capacity(nmems);
        for _ in 0..nmems {
            let name = cur.get_str()?;
            let width = cur.get_u32()?;
            let depth = cur.get_u32()? as usize;
            if width == 0 || width > 64 {
                return Err(format!("memory '{name}' has invalid width {width}"));
            }
            if depth > 1 << 28 {
                return Err(format!("implausible memory depth {depth}"));
            }
            let mut words = Vec::with_capacity(depth);
            for _ in 0..depth {
                words.push(cur.get_u64()?);
            }
            mems.push(MemImage { name, width, words });
        }
        Ok(HwSnapshot {
            design,
            cycle,
            regs,
            mems,
        })
    }

    /// Size of the serialized image in bytes (without serializing);
    /// drives the simulator-target save/restore cost model.
    pub fn byte_size(&self) -> usize {
        let mut n = 8 + 4 + self.design.len() + 8 + 4 + 4;
        for r in &self.regs {
            n += 4 + r.name.len() + 4 + 8;
        }
        for m in &self.mems {
            n += 4 + m.name.len() + 4 + 4 + 8 * m.words.len();
        }
        n
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.data.len() {
            return Err(format!("truncated snapshot at offset {}", self.pos));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn get_u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn get_str(&mut self) -> Result<String, String> {
        let len = self.get_u32()? as usize;
        if len > 1 << 16 {
            return Err(format!("implausible string length {len}"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 name in snapshot".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HwSnapshot {
        HwSnapshot {
            design: "soc_top".into(),
            cycle: 1234,
            regs: vec![
                RegImage {
                    name: "u_uart.txfifo_head".into(),
                    width: 4,
                    bits: 7,
                },
                RegImage {
                    name: "u_aes.busy".into(),
                    width: 1,
                    bits: 1,
                },
            ],
            mems: vec![MemImage {
                name: "u_sha.w_mem".into(),
                width: 32,
                words: vec![0xdeadbeef, 0x01020304],
            }],
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let s = sample();
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), s.byte_size());
        let s2 = HwSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn state_bits_counts_regs_and_mems() {
        assert_eq!(sample().state_bits(), 4 + 1 + 64);
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.reg("u_aes.busy"), Some(1));
        assert_eq!(s.reg("nope"), None);
        assert_eq!(s.mem("u_sha.w_mem").unwrap().words[0], 0xdeadbeef);
    }

    #[test]
    fn diff_regs_reports_changes() {
        let a = sample();
        let mut b = sample();
        b.regs[1].bits = 0;
        assert_eq!(a.diff_regs(&b), vec!["u_aes.busy"]);
        assert!(a.diff_regs(&a.clone()).is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(HwSnapshot::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        for cut in [7, 15, bytes.len() - 1] {
            assert!(
                HwSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let s = HwSnapshot {
            design: "d".into(),
            cycle: 0,
            regs: vec![],
            mems: vec![],
        };
        assert_eq!(HwSnapshot::from_bytes(&s.to_bytes()).unwrap(), s);
        assert_eq!(s.state_bits(), 0);
    }
}

/// A delta between two snapshots of the same design: only the registers
/// and memory words that changed. This is the storage optimization the
/// snapshot controller uses when many states share a recent ancestor
/// (cf. the paper's SRAM staging of snapshots for performance): a fork's
/// children start bit-identical to the parent, so their images compress
/// to nearly nothing until they diverge.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotDelta {
    /// Changed registers: (index into the base's `regs`, new bits).
    pub regs: Vec<(u32, u64)>,
    /// Changed memory words: (memory index, word index, new value).
    pub mem_words: Vec<(u32, u32, u64)>,
    /// New cycle counter.
    pub cycle: u64,
}

impl SnapshotDelta {
    /// Computes the delta that turns `base` into `new`.
    ///
    /// # Errors
    ///
    /// Returns a description if the snapshots have different shapes
    /// (different design, register lists or memory layouts).
    pub fn between(base: &HwSnapshot, new: &HwSnapshot) -> Result<SnapshotDelta, String> {
        if base.design != new.design {
            return Err(format!(
                "delta across designs '{}' vs '{}'",
                base.design, new.design
            ));
        }
        if base.regs.len() != new.regs.len() || base.mems.len() != new.mems.len() {
            return Err("snapshot shapes differ".into());
        }
        let mut delta = SnapshotDelta {
            cycle: new.cycle,
            ..Default::default()
        };
        for (i, (b, n)) in base.regs.iter().zip(&new.regs).enumerate() {
            if b.name != n.name || b.width != n.width {
                return Err(format!("register {i} layout differs"));
            }
            if b.bits != n.bits {
                delta.regs.push((i as u32, n.bits));
            }
        }
        for (mi, (bm, nm)) in base.mems.iter().zip(&new.mems).enumerate() {
            if bm.name != nm.name || bm.words.len() != nm.words.len() {
                return Err(format!("memory {mi} layout differs"));
            }
            for (wi, (bw, nw)) in bm.words.iter().zip(&nm.words).enumerate() {
                if bw != nw {
                    delta.mem_words.push((mi as u32, wi as u32, *nw));
                }
            }
        }
        Ok(delta)
    }

    /// Applies the delta to `base`, producing the target snapshot.
    ///
    /// # Errors
    ///
    /// Returns a description on out-of-range indices.
    pub fn apply(&self, base: &HwSnapshot) -> Result<HwSnapshot, String> {
        let mut out = base.clone();
        out.cycle = self.cycle;
        for &(i, bits) in &self.regs {
            let r = out
                .regs
                .get_mut(i as usize)
                .ok_or_else(|| format!("register index {i} out of range"))?;
            r.bits = bits;
        }
        for &(mi, wi, v) in &self.mem_words {
            let m = out
                .mems
                .get_mut(mi as usize)
                .ok_or_else(|| format!("memory index {mi} out of range"))?;
            let w = m
                .words
                .get_mut(wi as usize)
                .ok_or_else(|| format!("word index {wi} out of range"))?;
            *w = v;
        }
        Ok(out)
    }

    /// Approximate stored size in bytes.
    pub fn byte_size(&self) -> usize {
        8 + self.regs.len() * 12 + self.mem_words.len() * 16
    }
}

#[cfg(test)]
mod delta_tests {
    use super::*;

    fn base() -> HwSnapshot {
        HwSnapshot {
            design: "d".into(),
            cycle: 10,
            regs: (0..8)
                .map(|i| RegImage {
                    name: format!("r{i}"),
                    width: 32,
                    bits: i,
                })
                .collect(),
            mems: vec![MemImage {
                name: "m".into(),
                width: 32,
                words: vec![0; 16],
            }],
        }
    }

    #[test]
    fn delta_roundtrip() {
        let b = base();
        let mut n = b.clone();
        n.cycle = 99;
        n.regs[3].bits = 0xdead;
        n.mems[0].words[7] = 42;
        let d = SnapshotDelta::between(&b, &n).unwrap();
        assert_eq!(d.regs, vec![(3, 0xdead)]);
        assert_eq!(d.mem_words, vec![(0, 7, 42)]);
        assert_eq!(d.apply(&b).unwrap(), n);
        assert!(d.byte_size() < b.byte_size() / 4);
    }

    #[test]
    fn identical_snapshots_have_empty_delta() {
        let b = base();
        let d = SnapshotDelta::between(&b, &b.clone()).unwrap();
        assert!(d.regs.is_empty() && d.mem_words.is_empty());
        assert_eq!(d.apply(&b).unwrap(), b);
    }

    #[test]
    fn cross_design_delta_rejected() {
        let b = base();
        let mut o = base();
        o.design = "other".into();
        assert!(SnapshotDelta::between(&b, &o).is_err());
        let mut o = base();
        o.regs.pop();
        assert!(SnapshotDelta::between(&b, &o).is_err());
    }

    #[test]
    fn apply_range_checks() {
        let b = base();
        let d = SnapshotDelta {
            regs: vec![(99, 0)],
            mem_words: vec![],
            cycle: 0,
        };
        assert!(d.apply(&b).is_err());
        let d = SnapshotDelta {
            regs: vec![],
            mem_words: vec![(0, 999, 0)],
            cycle: 0,
        };
        assert!(d.apply(&b).is_err());
    }
}
