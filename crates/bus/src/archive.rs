//! Portable snapshot archives: a tar-like container for a checkpoint /
//! campaign directory, with a manifest that carries the design identity
//! (`shape_hash`) and per-file content hashes up front.
//!
//! HardSnap's cross-host story (ROADMAP: ship a campaign to another
//! machine, seed a warm pool from it) needs snapshot state to travel as
//! one artifact — and needs the *receiving* side to refuse an
//! incompatible design before any section payload is transferred. The
//! archive therefore leads with a JSON manifest:
//!
//! ```text
//! "HSPACK1\0"            8-byte magic
//! manifest_len   u32 LE  length of the manifest JSON
//! manifest_fnv   u64 LE  FNV-1a over the manifest bytes
//! manifest JSON          schema hardsnap-pack-v1 (see below)
//! payloads               member file bytes, concatenated in manifest order
//! ```
//!
//! The manifest records `design` and `shape_hash` (extracted from the
//! member `.hsnap` images' META sections, which all have to agree) plus
//! each member's length and FNV-1a checksum. [`unpack_to`] parses and
//! verifies only the manifest, runs [`PersistMeta::check_shape`]-style
//! admission against the receiver's shape, and only then streams the
//! payloads out — so "wrong design" costs a few hundred bytes of I/O,
//! not the transfer.
//!
//! Member names are flat (no directories); [`unpack_to`] rejects names
//! with path separators or `..` so a hostile archive cannot escape the
//! destination directory.

use crate::persist::{PersistError, SnapshotFile};
use crate::snapshot::{fnv1a, FNV_OFFSET};
use hardsnap_util::json::{self, Value};
use std::collections::BTreeMap;
use std::path::Path;

/// Archive magic, distinct from both snapshot image magics.
pub const PACK_MAGIC: &[u8; 8] = b"HSPACK1\0";
/// Manifest schema identifier.
pub const PACK_SCHEMA: &str = "hardsnap-pack-v1";

/// Sanity bound on the manifest; a real manifest is a few KiB.
const MAX_MANIFEST_LEN: usize = 16 << 20;

/// One member file of an archive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackEntry {
    /// Flat file name inside the archived directory.
    pub name: String,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a over the payload bytes.
    pub checksum: u64,
}

/// The archive's leading manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackManifest {
    /// Design the archived snapshots belong to.
    pub design: String,
    /// Shape hash shared by every `.hsnap` member (a receiver compares
    /// this against its own live shape before extracting anything).
    pub shape_hash: u64,
    /// Members, in payload order.
    pub files: Vec<PackEntry>,
}

impl PackManifest {
    /// Total payload bytes following the manifest.
    pub fn payload_len(&self) -> u64 {
        self.files.iter().map(|f| f.len).sum()
    }

    /// The manifest as a JSON value (hashes as hex strings — the JSON
    /// layer holds numbers as `f64`, which cannot carry a 64-bit hash).
    pub fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("schema".into(), Value::Str(PACK_SCHEMA.into()));
        m.insert("design".into(), Value::Str(self.design.clone()));
        m.insert(
            "shape_hash".into(),
            Value::Str(format!("{:#018x}", self.shape_hash)),
        );
        let files = self
            .files
            .iter()
            .map(|f| {
                let mut e = BTreeMap::new();
                e.insert("name".into(), Value::Str(f.name.clone()));
                e.insert("len".into(), Value::Num(f.len as f64));
                e.insert("fnv".into(), Value::Str(format!("{:#018x}", f.checksum)));
                Value::Obj(e)
            })
            .collect();
        m.insert("files".into(), Value::Arr(files));
        Value::Obj(m)
    }

    /// Parses a manifest value, validating schema and member names.
    pub fn from_value(v: &Value) -> Result<PackManifest, PersistError> {
        let bad = |m: &str| PersistError::Malformed(format!("pack manifest: {m}"));
        match v.get("schema").and_then(Value::as_str) {
            Some(PACK_SCHEMA) => {}
            Some(other) => return Err(bad(&format!("unknown schema '{other}'"))),
            None => return Err(bad("missing schema")),
        }
        let design = v
            .get("design")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing design"))?
            .to_string();
        let shape_hash = parse_hex_u64(v.get("shape_hash")).ok_or_else(|| bad("bad shape_hash"))?;
        let mut files = Vec::new();
        for e in v
            .get("files")
            .and_then(Value::as_arr)
            .ok_or_else(|| bad("missing files"))?
        {
            let name = e
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("member missing name"))?
                .to_string();
            check_member_name(&name)?;
            let len = e
                .get("len")
                .and_then(Value::as_u64)
                .ok_or_else(|| bad("member missing len"))?;
            let checksum = parse_hex_u64(e.get("fnv")).ok_or_else(|| bad("member missing fnv"))?;
            files.push(PackEntry {
                name,
                len,
                checksum,
            });
        }
        Ok(PackManifest {
            design,
            shape_hash,
            files,
        })
    }
}

fn parse_hex_u64(v: Option<&Value>) -> Option<u64> {
    let s = v?.as_str()?;
    let digits = s.strip_prefix("0x").unwrap_or(s);
    u64::from_str_radix(digits, 16).ok()
}

/// Flat names only: a member must not be able to write outside the
/// destination directory.
fn check_member_name(name: &str) -> Result<(), PersistError> {
    if name.is_empty()
        || name == "."
        || name == ".."
        || name.contains('/')
        || name.contains('\\')
        || name.contains('\0')
    {
        return Err(PersistError::Malformed(format!(
            "pack manifest: unsafe member name '{}'",
            name.escape_default()
        )));
    }
    Ok(())
}

/// Packs every regular file at the top level of `dir` into an archive.
///
/// All `.hsnap` members are opened (table-checksum verified) and their
/// META sections must agree on design and shape; the common identity is
/// recorded in the manifest. A directory with no snapshot image is
/// refused — an archive that cannot state its shape is useless to the
/// receiver's admission check.
pub fn pack_dir(dir: &Path) -> Result<(PackManifest, Vec<u8>), PersistError> {
    let mut names: Vec<String> = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| PersistError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| PersistError::io(dir, e))?;
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        match entry.file_name().into_string() {
            Ok(n) => names.push(n),
            Err(_) => {
                return Err(PersistError::Malformed(format!(
                    "non-UTF-8 file name in {}",
                    dir.display()
                )))
            }
        }
    }
    names.sort();

    let mut design: Option<String> = None;
    let mut shape_hash: Option<u64> = None;
    let mut files = Vec::new();
    let mut payloads: Vec<u8> = Vec::new();
    for name in &names {
        let path = dir.join(name);
        let data = std::fs::read(&path).map_err(|e| PersistError::io(&path, e))?;
        if name.ends_with(".hsnap") {
            let snap = SnapshotFile::from_bytes(data.clone())?;
            let meta = snap.meta()?;
            match (&design, shape_hash) {
                (None, _) => {
                    design = Some(meta.design.clone());
                    shape_hash = Some(meta.shape_hash);
                }
                (Some(d), Some(s)) if *d == meta.design && s == meta.shape_hash => {}
                (Some(_), _) => {
                    return Err(PersistError::Malformed(format!(
                        "mixed designs in {}: '{}' does not match the rest",
                        dir.display(),
                        name
                    )))
                }
            }
        }
        files.push(PackEntry {
            name: name.clone(),
            len: data.len() as u64,
            checksum: fnv1a(&data, FNV_OFFSET),
        });
        payloads.extend_from_slice(&data);
    }
    let (design, shape_hash) = match (design, shape_hash) {
        (Some(d), Some(s)) => (d, s),
        _ => {
            return Err(PersistError::Malformed(format!(
                "no snapshot image (.hsnap) in {}",
                dir.display()
            )))
        }
    };

    let manifest = PackManifest {
        design,
        shape_hash,
        files,
    };
    let mjson = manifest.to_value().to_json();
    let mbytes = mjson.as_bytes();
    let mut out = Vec::with_capacity(PACK_MAGIC.len() + 12 + mbytes.len() + payloads.len());
    out.extend_from_slice(PACK_MAGIC);
    out.extend_from_slice(&(mbytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(mbytes, FNV_OFFSET).to_le_bytes());
    out.extend_from_slice(mbytes);
    out.extend_from_slice(&payloads);
    Ok((manifest, out))
}

/// [`pack_dir`] straight to a file.
pub fn pack_dir_to(dir: &Path, out: &Path) -> Result<PackManifest, PersistError> {
    let (manifest, bytes) = pack_dir(dir)?;
    std::fs::write(out, bytes).map_err(|e| PersistError::io(out, e))?;
    Ok(manifest)
}

/// Parses and verifies just the manifest of `bytes`; returns it together
/// with the offset at which payloads begin.
pub fn read_manifest(bytes: &[u8]) -> Result<(PackManifest, usize), PersistError> {
    if bytes.len() < PACK_MAGIC.len() + 12 {
        return Err(PersistError::Truncated { at: bytes.len() });
    }
    if &bytes[..PACK_MAGIC.len()] != PACK_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let mut off = PACK_MAGIC.len();
    let mlen = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
    off += 4;
    let mfnv = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    off += 8;
    if mlen > MAX_MANIFEST_LEN {
        return Err(PersistError::Malformed(format!(
            "manifest length {mlen} exceeds bound"
        )));
    }
    if bytes.len() < off + mlen {
        return Err(PersistError::Truncated { at: bytes.len() });
    }
    let mbytes = &bytes[off..off + mlen];
    if fnv1a(mbytes, FNV_OFFSET) != mfnv {
        return Err(PersistError::ChecksumMismatch {
            what: "manifest".into(),
        });
    }
    let text = std::str::from_utf8(mbytes)
        .map_err(|_| PersistError::Malformed("manifest is not UTF-8".into()))?;
    let value =
        json::parse(text).map_err(|e| PersistError::Malformed(format!("manifest JSON: {e}")))?;
    let manifest = PackManifest::from_value(&value)?;
    Ok((manifest, off + mlen))
}

/// Reads only the manifest of an archive file.
pub fn inspect(path: &Path) -> Result<PackManifest, PersistError> {
    let bytes = std::fs::read(path).map_err(|e| PersistError::io(path, e))?;
    Ok(read_manifest(&bytes)?.0)
}

/// Unpacks `archive` into `dest` (created if absent).
///
/// The admission gate runs *before* any payload is read: when
/// `live_shape` is nonzero and differs from the manifest's `shape_hash`,
/// the call fails with [`PersistError::ShapeMismatch`] and nothing is
/// written. Each extracted member is verified against its manifest
/// checksum.
pub fn unpack_to(
    archive: &Path,
    dest: &Path,
    live_shape: u64,
) -> Result<PackManifest, PersistError> {
    let bytes = std::fs::read(archive).map_err(|e| PersistError::io(archive, e))?;
    let (manifest, mut off) = read_manifest(&bytes)?;
    if live_shape != 0 && manifest.shape_hash != live_shape {
        return Err(PersistError::ShapeMismatch {
            expected: manifest.shape_hash,
            found: live_shape,
        });
    }
    std::fs::create_dir_all(dest).map_err(|e| PersistError::io(dest, e))?;
    for entry in &manifest.files {
        let len = entry.len as usize;
        if bytes.len() < off + len {
            return Err(PersistError::Truncated { at: bytes.len() });
        }
        let payload = &bytes[off..off + len];
        off += len;
        if fnv1a(payload, FNV_OFFSET) != entry.checksum {
            return Err(PersistError::ChecksumMismatch {
                what: entry.name.clone(),
            });
        }
        let path = dest.join(&entry.name);
        std::fs::write(&path, payload).map_err(|e| PersistError::io(&path, e))?;
    }
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::write_full;
    use crate::snapshot::{HwSnapshot, MemImage, RegImage};

    fn snap(design: &str, seed: u64) -> HwSnapshot {
        HwSnapshot {
            design: design.to_string(),
            cycle: seed,
            regs: vec![
                RegImage {
                    name: "r0".into(),
                    width: 32,
                    bits: seed & 0xffff_ffff,
                },
                RegImage {
                    name: "r1".into(),
                    width: 8,
                    bits: seed & 0xff,
                },
            ],
            mems: vec![MemImage {
                name: "ram".into(),
                width: 32,
                words: vec![seed & 0xffff_ffff, 2, 3, 4],
            }],
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("hspack-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn checkpoint_dir(name: &str, design: &str) -> std::path::PathBuf {
        let dir = tmp(name);
        std::fs::write(dir.join("snap-0.hsnap"), write_full(&snap(design, 7))).unwrap();
        std::fs::write(dir.join("snap-1.hsnap"), write_full(&snap(design, 9))).unwrap();
        std::fs::write(dir.join("campaign.hscamp"), b"opaque manifest").unwrap();
        dir
    }

    #[test]
    fn pack_unpack_round_trips() {
        let src = checkpoint_dir("rt-src", "soc");
        let shape = snap("soc", 7).shape_hash();
        let ar = src.join("pack.hspack");
        let manifest = pack_dir_to(&src, &ar).unwrap();
        assert_eq!(manifest.design, "soc");
        assert_eq!(manifest.shape_hash, shape);
        assert_eq!(manifest.files.len(), 3);

        let dest = tmp("rt-dest");
        let got = unpack_to(&ar, &dest, shape).unwrap();
        assert_eq!(got, manifest);
        for e in &manifest.files {
            let data = std::fs::read(dest.join(&e.name)).unwrap();
            assert_eq!(data.len() as u64, e.len);
            assert_eq!(fnv1a(&data, FNV_OFFSET), e.checksum);
        }
        // Unpacked snapshots still open as valid TLV images.
        let reopened = SnapshotFile::open(&dest.join("snap-0.hsnap")).unwrap();
        assert_eq!(reopened.meta().unwrap().design, "soc");
    }

    #[test]
    fn shape_gate_refuses_before_extracting() {
        let src = checkpoint_dir("gate-src", "soc");
        let ar = src.join("pack.hspack");
        let manifest = pack_dir_to(&src, &ar).unwrap();
        let dest = tmp("gate-dest");
        std::fs::remove_dir_all(&dest).unwrap();
        let err = unpack_to(&ar, &dest, manifest.shape_hash ^ 1).unwrap_err();
        assert!(matches!(err, PersistError::ShapeMismatch { .. }));
        // Refused before extraction: the destination was never created.
        assert!(!dest.exists());
        // Shape 0 (unknown receiver) skips the gate.
        unpack_to(&ar, &dest, 0).unwrap();
    }

    #[test]
    fn traversal_names_and_corruption_are_rejected() {
        let src = checkpoint_dir("evil-src", "soc");
        let ar = src.join("pack.hspack");
        pack_dir_to(&src, &ar).unwrap();
        let mut bytes = std::fs::read(&ar).unwrap();

        // Corrupt one payload byte: the member checksum catches it.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let bad = src.join("corrupt.hspack");
        std::fs::write(&bad, &bytes).unwrap();
        let err = unpack_to(&bad, &tmp("evil-dest"), 0).unwrap_err();
        assert!(matches!(err, PersistError::ChecksumMismatch { .. }));

        // A manifest member name with a path separator is refused.
        let m = PackManifest {
            design: "soc".into(),
            shape_hash: 1,
            files: vec![PackEntry {
                name: "../escape".into(),
                len: 0,
                checksum: FNV_OFFSET,
            }],
        };
        assert!(matches!(
            PackManifest::from_value(&m.to_value()),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn mixed_designs_refuse_to_pack() {
        let dir = tmp("mixed");
        std::fs::write(dir.join("a.hsnap"), write_full(&snap("soc", 1))).unwrap();
        std::fs::write(dir.join("b.hsnap"), write_full(&snap("other", 1))).unwrap();
        assert!(matches!(pack_dir(&dir), Err(PersistError::Malformed(_))));
        let empty = tmp("empty");
        assert!(matches!(pack_dir(&empty), Err(PersistError::Malformed(_))));
    }
}
