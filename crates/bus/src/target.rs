//! The [`HwTarget`] trait: one interface over both hardware platforms.
//!
//! The paper's multi-target orchestration (§III-B) demands that the
//! virtual machine can drive, snapshot and restore *either* the
//! Verilator-style simulator *or* the FPGA through one mechanism, and
//! transfer state between them mid-analysis. `HwTarget` is that
//! mechanism.

use crate::persist::{ImageKind, PersistedImage, SnapshotFile};
use crate::{BusError, HwSnapshot, SnapshotCapture, TargetError};
use std::sync::Arc;

/// Outcome of a lazy (demand-paged) restore from a snapshot file: how
/// much of the file actually had to be loaded and applied. Targets that
/// implement the sectioned path report `sections_loaded <
/// sections_total` whenever part of the saved state already matches the
/// live design, which is what makes time-to-first-quantum on a resumed
/// campaign scale with *touched* state rather than design size.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LazyRestore {
    /// Data sections (register files + memory regions) in the file.
    pub sections_total: usize,
    /// Sections whose payload was loaded and applied because their
    /// content differed from the live state.
    pub sections_loaded: usize,
    /// Payload bytes read for the loaded sections.
    pub bytes_loaded: u64,
}

/// Which physical platform a target models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TargetKind {
    /// Cycle-accurate software simulation (Verilator analogue): slow,
    /// full traces, snapshot by direct state copy.
    Simulator,
    /// FPGA emulation: near-silicon speed, no internal visibility,
    /// snapshot via the scan-chain controller IP (or readback).
    Fpga,
}

impl std::fmt::Display for TargetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TargetKind::Simulator => f.write_str("simulator"),
            TargetKind::Fpga => f.write_str("fpga"),
        }
    }
}

/// What a target can do; drives both orchestration decisions and the
/// evaluation's scan-vs-readback comparison (experiment E7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TargetCaps {
    /// Platform kind.
    pub kind: TargetKind,
    /// Full per-cycle signal visibility (tracing). True only for the
    /// simulator; this is the property the orchestrator trades speed for.
    pub full_visibility: bool,
    /// Supports the high-end-FPGA configuration-readback path.
    pub readback: bool,
    /// Modeled clock frequency in Hz (used for virtual time).
    pub clock_hz: u64,
}

/// A hardware platform running the design under test.
///
/// Both `hardsnap-sim::SimTarget` and `hardsnap-fpga::FpgaTarget`
/// implement this. All methods that model work advance **virtual time**
/// ([`HwTarget::virtual_time_ns`]), which is what the evaluation
/// harnesses report: it reflects the modeled platform (FPGA clock, USB3
/// link, scan shifting) rather than host wall-clock.
///
/// Targets are `Send` so the parallel engine can hand each worker
/// thread a private replica (see [`HwTarget::fork_clean`]).
pub trait HwTarget: Send {
    /// Human-readable target name for reports.
    fn name(&self) -> &str;

    /// Capabilities and timing parameters.
    fn caps(&self) -> TargetCaps;

    /// The flattened design's name (snapshot compatibility key).
    fn design_name(&self) -> &str;

    /// Asserts reset for a full reset sequence and leaves the design in
    /// its power-on state.
    fn reset(&mut self);

    /// Runs the design for `cycles` clock cycles with no bus activity.
    fn step(&mut self, cycles: u64);

    /// Elapsed cycles since construction or the last [`HwTarget::reset`].
    fn cycle(&self) -> u64;

    /// Performs a 32-bit AXI4-Lite read.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] on slave error or handshake timeout.
    fn bus_read(&mut self, addr: u32) -> Result<u32, BusError>;

    /// Performs a 32-bit AXI4-Lite write.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] on slave error or handshake timeout.
    fn bus_write(&mut self, addr: u32, data: u32) -> Result<(), BusError>;

    /// Current interrupt-line bitmask (bit i = IRQ line i asserted).
    fn irq_lines(&mut self) -> u32;

    /// Suspends execution and captures the complete hardware state.
    ///
    /// # Errors
    ///
    /// Returns [`TargetError`] if the platform's snapshot mechanism
    /// fails.
    fn save_snapshot(&mut self) -> Result<HwSnapshot, TargetError>;

    /// Suspends execution and overwrites the complete hardware state.
    ///
    /// # Errors
    ///
    /// Returns [`TargetError::DesignMismatch`] for a snapshot of another
    /// design, or [`TargetError::CorruptSnapshot`] if names/shapes do not
    /// match the running design.
    fn restore_snapshot(&mut self, snap: &HwSnapshot) -> Result<(), TargetError>;

    /// Virtual nanoseconds elapsed on this platform (cycles, link
    /// latencies, scan/readback operations — everything modeled).
    fn virtual_time_ns(&self) -> u64;

    /// Creates an independent replica of this target in its power-on
    /// state (the paper's replicated-device model: one physical board
    /// per analysis worker). Replicas share immutable design data where
    /// the platform allows it, but carry no runtime state of `self`.
    ///
    /// # Errors
    ///
    /// Returns [`TargetError::Unsupported`] for platforms that cannot
    /// be replicated (the default).
    fn fork_clean(&self) -> Result<Box<dyn HwTarget>, TargetError> {
        Err(TargetError::Unsupported(format!(
            "fork_clean on target '{}'",
            self.name()
        )))
    }

    /// Shape fingerprint of the snapshots this target produces (see
    /// `hardsnap_bus::shape_hash_parts`), computed from the target's own
    /// design knowledge rather than from any captured image. A
    /// supervision layer compares a captured image's
    /// `HwSnapshot::shape_hash` against this value to detect truncated
    /// or misassembled captures before they are ever stored. `0` (the
    /// default) means the target cannot predict its shape and the check
    /// is skipped.
    fn snapshot_shape(&self) -> u64 {
        0
    }

    /// Content checksum ([`HwSnapshot::content_hash`]) that the
    /// target-side scan/readback controller computed over the *full*
    /// chain during the most recent capture — the checksum trailer of
    /// the readback stream, which arrives intact even when the data
    /// payload does not. A supervision layer compares the image it
    /// received against this value to detect partial readbacks: a
    /// prefix of the chain padded with zeros has the right shape and
    /// validates, but carries the wrong checksum. `0` (the default)
    /// means the target has no trailer and the check is skipped.
    fn capture_checksum(&self) -> u64 {
        0
    }

    /// Injected-fault counters when this target (or a target it wraps)
    /// is a fault injector like [`crate::FaultyTarget`]; `None` for an
    /// honest transport. Lets the engines report injected counts
    /// without downcasting trait objects.
    fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        None
    }

    /// Hands the target a telemetry recorder so it can emit
    /// capture/restore/scan spans and virtual-time histograms onto its
    /// worker's track. The default ignores it (a target is free to stay
    /// silent); decorators forward to the wrapped target. Telemetry is
    /// observe-only — implementations must not let it influence
    /// behavior or virtual time.
    fn attach_recorder(&mut self, _rec: &hardsnap_telemetry::Recorder) {}

    /// Switches activity-proportional (delta) snapshotting on or off.
    /// In delta mode the target tracks which registers and memory words
    /// it dirties, so [`HwTarget::save_snapshot_delta`] can emit a
    /// copy-on-write capture against its last full base instead of a
    /// complete image. The default ignores the request — such a target
    /// simply keeps answering with full captures, which is always
    /// correct (delta mode is purely a cost optimization).
    fn set_delta_snapshots(&mut self, _on: bool) {}

    /// Suspends execution and captures the hardware state as a
    /// [`SnapshotCapture`]: a delta against the target's current base
    /// when delta mode is on and a base exists, a full image otherwise.
    /// Materializing the capture must be bit-identical to what
    /// [`HwTarget::save_snapshot`] would have returned at the same
    /// point. The default simply wraps a full capture, so every target
    /// supports the delta-native driver path.
    ///
    /// # Errors
    ///
    /// As [`HwTarget::save_snapshot`].
    fn save_snapshot_delta(&mut self) -> Result<SnapshotCapture, TargetError> {
        self.save_snapshot()
            .map(|s| SnapshotCapture::Full(Arc::new(s)))
    }

    /// Restores hardware state from an open snapshot *file*, loading
    /// only the sections whose content differs from the live design
    /// where the platform supports it. The file must hold a **full**
    /// image (delta files are resolved against their base by the layer
    /// that owns the chain, e.g. the campaign loader). After the call
    /// the target's state is bit-identical to
    /// [`HwTarget::restore_snapshot`] of the materialized image — lazy
    /// loading is purely a cost optimization, reflected in virtual
    /// time and in the returned [`LazyRestore`] stats.
    ///
    /// The default implementation is the eager fallback: materialize
    /// the whole file and restore it, reporting every section as
    /// loaded. `SimTarget` and `FpgaTarget` override it with sectioned
    /// paths (per-section content-hash comparison; the FPGA charges a
    /// partial-chain shift per dirty scan segment).
    ///
    /// # Errors
    ///
    /// [`TargetError::Unsupported`] for a delta file,
    /// [`TargetError::CorruptSnapshot`] if the file fails validation,
    /// plus everything [`HwTarget::restore_snapshot`] can return.
    fn restore_snapshot_lazy(&mut self, file: &SnapshotFile) -> Result<LazyRestore, TargetError> {
        if file.kind() != ImageKind::Full {
            return Err(TargetError::Unsupported(
                "lazy restore needs a full snapshot file; resolve the delta chain first".into(),
            ));
        }
        let snap = match file
            .materialize()
            .map_err(|e| TargetError::CorruptSnapshot(e.to_string()))?
        {
            PersistedImage::Full(s) => s,
            PersistedImage::Delta { .. } => {
                return Err(TargetError::Unsupported(
                    "lazy restore needs a full snapshot file".into(),
                ))
            }
        };
        let data: Vec<&crate::persist::SectionEntry> = file
            .sections()
            .iter()
            .filter(|s| {
                matches!(
                    s.tag,
                    crate::persist::SectionTag::Regs | crate::persist::SectionTag::Mem
                )
            })
            .collect();
        let bytes: u64 = data.iter().map(|s| s.len).sum();
        self.restore_snapshot(&snap)?;
        Ok(LazyRestore {
            sections_total: data.len(),
            sections_loaded: data.len(),
            bytes_loaded: bytes,
        })
    }
}

// Boxed targets forward the whole contract, so decorators like
// `FaultyTarget` can wrap either a concrete target or the boxed trait
// object that `fork_clean` hands back.
impl<T: HwTarget + ?Sized> HwTarget for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn caps(&self) -> TargetCaps {
        (**self).caps()
    }
    fn design_name(&self) -> &str {
        (**self).design_name()
    }
    fn reset(&mut self) {
        (**self).reset();
    }
    fn step(&mut self, cycles: u64) {
        (**self).step(cycles);
    }
    fn cycle(&self) -> u64 {
        (**self).cycle()
    }
    fn bus_read(&mut self, addr: u32) -> Result<u32, BusError> {
        (**self).bus_read(addr)
    }
    fn bus_write(&mut self, addr: u32, data: u32) -> Result<(), BusError> {
        (**self).bus_write(addr, data)
    }
    fn irq_lines(&mut self) -> u32 {
        (**self).irq_lines()
    }
    fn save_snapshot(&mut self) -> Result<HwSnapshot, TargetError> {
        (**self).save_snapshot()
    }
    fn restore_snapshot(&mut self, snap: &HwSnapshot) -> Result<(), TargetError> {
        (**self).restore_snapshot(snap)
    }
    fn virtual_time_ns(&self) -> u64 {
        (**self).virtual_time_ns()
    }
    fn fork_clean(&self) -> Result<Box<dyn HwTarget>, TargetError> {
        (**self).fork_clean()
    }
    fn snapshot_shape(&self) -> u64 {
        (**self).snapshot_shape()
    }
    fn capture_checksum(&self) -> u64 {
        (**self).capture_checksum()
    }
    fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        (**self).fault_stats()
    }
    fn attach_recorder(&mut self, rec: &hardsnap_telemetry::Recorder) {
        (**self).attach_recorder(rec);
    }
    fn set_delta_snapshots(&mut self, on: bool) {
        (**self).set_delta_snapshots(on);
    }
    fn save_snapshot_delta(&mut self) -> Result<SnapshotCapture, TargetError> {
        (**self).save_snapshot_delta()
    }
    fn restore_snapshot_lazy(&mut self, file: &SnapshotFile) -> Result<LazyRestore, TargetError> {
        (**self).restore_snapshot_lazy(file)
    }
}

/// Transfers the live hardware state from one target to another
/// (the paper's "hardware state forwarding", §III-B): saves on `from`,
/// restores on `to`, and returns the transferred snapshot for
/// bookkeeping.
///
/// # Errors
///
/// Propagates snapshot errors from either side; the designs must match.
pub fn transfer_state(
    from: &mut dyn HwTarget,
    to: &mut dyn HwTarget,
) -> Result<HwSnapshot, TargetError> {
    let snap = from.save_snapshot()?;
    to.restore_snapshot(&snap)?;
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial in-memory target used to test the trait contract and
    /// `transfer_state` without pulling in the simulator crates.
    struct FakeTarget {
        name: String,
        reg: u64,
        cycle: u64,
        vtime: u64,
    }

    impl HwTarget for FakeTarget {
        fn name(&self) -> &str {
            &self.name
        }
        fn caps(&self) -> TargetCaps {
            TargetCaps {
                kind: TargetKind::Simulator,
                full_visibility: true,
                readback: false,
                clock_hz: 1_000_000,
            }
        }
        fn design_name(&self) -> &str {
            "fake"
        }
        fn reset(&mut self) {
            self.reg = 0;
            self.cycle = 0;
        }
        fn step(&mut self, cycles: u64) {
            self.cycle += cycles;
            self.vtime += cycles * 1000;
            self.reg = self.reg.wrapping_add(cycles);
        }
        fn cycle(&self) -> u64 {
            self.cycle
        }
        fn bus_read(&mut self, _addr: u32) -> Result<u32, BusError> {
            Ok(self.reg as u32)
        }
        fn bus_write(&mut self, _addr: u32, data: u32) -> Result<(), BusError> {
            self.reg = data as u64;
            Ok(())
        }
        fn irq_lines(&mut self) -> u32 {
            0
        }
        fn save_snapshot(&mut self) -> Result<HwSnapshot, TargetError> {
            Ok(HwSnapshot {
                design: "fake".into(),
                cycle: self.cycle,
                regs: vec![crate::RegImage {
                    name: "reg".into(),
                    width: 64,
                    bits: self.reg,
                }],
                mems: vec![],
            })
        }
        fn restore_snapshot(&mut self, snap: &HwSnapshot) -> Result<(), TargetError> {
            if snap.design != "fake" {
                return Err(TargetError::DesignMismatch {
                    expected: snap.design.clone(),
                    found: "fake".into(),
                });
            }
            self.reg = snap
                .reg("reg")
                .ok_or_else(|| TargetError::CorruptSnapshot("missing 'reg'".into()))?;
            Ok(())
        }
        fn virtual_time_ns(&self) -> u64 {
            self.vtime
        }
    }

    #[test]
    fn transfer_state_moves_state_across_targets() {
        let mut a = FakeTarget {
            name: "a".into(),
            reg: 0,
            cycle: 0,
            vtime: 0,
        };
        let mut b = FakeTarget {
            name: "b".into(),
            reg: 0,
            cycle: 0,
            vtime: 0,
        };
        a.step(42);
        let snap = transfer_state(&mut a, &mut b).unwrap();
        assert_eq!(snap.reg("reg"), Some(42));
        assert_eq!(b.bus_read(0).unwrap(), 42);
    }

    #[test]
    fn mismatched_design_is_rejected() {
        let mut b = FakeTarget {
            name: "b".into(),
            reg: 0,
            cycle: 0,
            vtime: 0,
        };
        let snap = HwSnapshot {
            design: "other".into(),
            ..Default::default()
        };
        assert!(matches!(
            b.restore_snapshot(&snap),
            Err(TargetError::DesignMismatch { .. })
        ));
    }

    #[test]
    fn default_lazy_restore_is_the_eager_fallback() {
        let mut t = FakeTarget {
            name: "t".into(),
            reg: 0,
            cycle: 0,
            vtime: 0,
        };
        t.step(7);
        let snap = t.save_snapshot().unwrap();
        let file = SnapshotFile::from_bytes(crate::persist::write_full(&snap)).unwrap();
        t.step(5);
        let stats = t.restore_snapshot_lazy(&file).unwrap();
        // The fallback loads everything: one Regs section, no mems.
        assert_eq!(stats.sections_total, 1);
        assert_eq!(stats.sections_loaded, 1);
        assert!(stats.bytes_loaded > 0);
        assert_eq!(t.bus_read(0).unwrap(), 7);
        // A delta file is rejected by the contract.
        let delta = crate::SnapshotDelta::between(&snap, &snap).unwrap();
        let dfile =
            SnapshotFile::from_bytes(crate::persist::write_delta(&snap, &delta, "base")).unwrap();
        assert!(matches!(
            t.restore_snapshot_lazy(&dfile),
            Err(TargetError::Unsupported(_))
        ));
    }

    #[test]
    fn trait_is_object_safe() {
        let mut t = FakeTarget {
            name: "t".into(),
            reg: 0,
            cycle: 0,
            vtime: 0,
        };
        let dt: &mut dyn HwTarget = &mut t;
        dt.step(1);
        assert_eq!(dt.cycle(), 1);
        assert_eq!(dt.caps().kind.to_string(), "simulator");
    }
}
