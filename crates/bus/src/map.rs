//! The firmware-visible memory map of the synthetic SoC.
//!
//! Mirrors a typical Cortex-M style layout: RAM low, peripherals in a
//! dedicated MMIO window. The symbolic virtual machine uses the map to
//! decide which loads/stores stay inside the VM (RAM) and which cross the
//! VM boundary and must be forwarded to the hardware target — the
//! selective-symbolic-execution split of the paper (§III-B).

/// What a region of the address space is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Normal read/write memory, lives inside the VM state.
    Ram,
    /// Read-only memory (firmware image); writes are a detected fault.
    Rom,
    /// Memory-mapped peripheral window, forwarded to the hardware target.
    Mmio,
}

/// A contiguous address region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Region name for diagnostics (`"ram"`, `"uart"`, ...).
    pub name: String,
    /// First byte address.
    pub base: u32,
    /// Size in bytes.
    pub size: u32,
    /// Kind.
    pub kind: RegionKind,
}

impl Region {
    /// True if `addr` falls inside this region.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.size
    }
}

/// An ordered set of non-overlapping regions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoryMap {
    regions: Vec<Region>,
}

/// Default SoC layout constants, shared by firmware, the symbolic VM and
/// the peripheral register maps.
pub mod soc {
    /// RAM base (vector table lives at the bottom).
    pub const RAM_BASE: u32 = 0x0000_0000;
    /// RAM size (64 KiB).
    pub const RAM_SIZE: u32 = 0x0001_0000;
    /// UART register window.
    pub const UART_BASE: u32 = 0x4000_0000;
    /// Timer register window.
    pub const TIMER_BASE: u32 = 0x4000_1000;
    /// SHA-256 accelerator register window.
    pub const SHA_BASE: u32 = 0x4000_2000;
    /// AES-128 accelerator register window.
    pub const AES_BASE: u32 = 0x4000_3000;
    /// Snapshot-controller IP window (FPGA platform, paper §III-C).
    pub const SNAPCTL_BASE: u32 = 0x4000_F000;
    /// Size of each peripheral window.
    pub const PERIPH_SIZE: u32 = 0x1000;
}

impl MemoryMap {
    /// An empty map.
    pub fn new() -> Self {
        MemoryMap::default()
    }

    /// The default synthetic-SoC map used throughout the evaluation:
    /// 64 KiB RAM plus the four corpus peripherals and the snapshot
    /// controller.
    pub fn default_soc() -> Self {
        let mut m = MemoryMap::new();
        m.add(Region {
            name: "ram".into(),
            base: soc::RAM_BASE,
            size: soc::RAM_SIZE,
            kind: RegionKind::Ram,
        })
        .unwrap();
        for (name, base) in [
            ("uart", soc::UART_BASE),
            ("timer", soc::TIMER_BASE),
            ("sha", soc::SHA_BASE),
            ("aes", soc::AES_BASE),
            ("snapctl", soc::SNAPCTL_BASE),
        ] {
            m.add(Region {
                name: name.into(),
                base,
                size: soc::PERIPH_SIZE,
                kind: RegionKind::Mmio,
            })
            .unwrap();
        }
        m
    }

    /// Adds a region.
    ///
    /// # Errors
    ///
    /// Returns a description if the region is empty or overlaps an
    /// existing region.
    pub fn add(&mut self, region: Region) -> Result<(), String> {
        if region.size == 0 {
            return Err(format!("region '{}' is empty", region.name));
        }
        if region.base.checked_add(region.size - 1).is_none() {
            return Err(format!("region '{}' wraps the address space", region.name));
        }
        for r in &self.regions {
            let a0 = region.base as u64;
            let a1 = a0 + region.size as u64;
            let b0 = r.base as u64;
            let b1 = b0 + r.size as u64;
            if a0 < b1 && b0 < a1 {
                return Err(format!("region '{}' overlaps '{}'", region.name, r.name));
            }
        }
        self.regions.push(region);
        Ok(())
    }

    /// Finds the region containing `addr`.
    pub fn lookup(&self, addr: u32) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// Kind of the region containing `addr`, or `None` for unmapped
    /// addresses (an unmapped access is a detected fault).
    pub fn kind_of(&self, addr: u32) -> Option<RegionKind> {
        self.lookup(addr).map(|r| r.kind)
    }

    /// Iterates over the regions in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Region> {
        self.regions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_soc_routes_correctly() {
        let m = MemoryMap::default_soc();
        assert_eq!(m.kind_of(0x0000_1234), Some(RegionKind::Ram));
        assert_eq!(m.kind_of(soc::UART_BASE + 4), Some(RegionKind::Mmio));
        assert_eq!(m.kind_of(soc::AES_BASE), Some(RegionKind::Mmio));
        assert_eq!(m.kind_of(0x2000_0000), None);
        assert_eq!(m.lookup(soc::SHA_BASE).unwrap().name, "sha");
    }

    #[test]
    fn overlap_rejected() {
        let mut m = MemoryMap::new();
        m.add(Region {
            name: "a".into(),
            base: 0,
            size: 0x100,
            kind: RegionKind::Ram,
        })
        .unwrap();
        let e = m
            .add(Region {
                name: "b".into(),
                base: 0xff,
                size: 1,
                kind: RegionKind::Ram,
            })
            .unwrap_err();
        assert!(e.contains("overlaps"));
        // Adjacent is fine.
        m.add(Region {
            name: "c".into(),
            base: 0x100,
            size: 1,
            kind: RegionKind::Mmio,
        })
        .unwrap();
    }

    #[test]
    fn empty_and_wrapping_regions_rejected() {
        let mut m = MemoryMap::new();
        assert!(m
            .add(Region {
                name: "z".into(),
                base: 0,
                size: 0,
                kind: RegionKind::Ram
            })
            .is_err());
        assert!(m
            .add(Region {
                name: "w".into(),
                base: u32::MAX,
                size: 2,
                kind: RegionKind::Ram
            })
            .is_err());
    }

    #[test]
    fn region_boundaries_are_exact() {
        let r = Region {
            name: "r".into(),
            base: 0x100,
            size: 0x10,
            kind: RegionKind::Mmio,
        };
        assert!(!r.contains(0xff));
        assert!(r.contains(0x100));
        assert!(r.contains(0x10f));
        assert!(!r.contains(0x110));
    }
}
